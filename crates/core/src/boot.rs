//! Two-stage verified boot (§5.1).
//!
//! **Stage one** loads only the trusted firmware and the monitor, measuring
//! both into the attestation digest (MRTD). The monitor builds the initial
//! page tables — direct map, monitor windows, IDT, secure stacks — with the
//! protection keys of [`crate::policy`], turns on every pinned hardware
//! protection (WP, SMEP, SMAP, PKS, CET-IBT), and points `IA32_LSTAR` and
//! every IDT vector at its interposers.
//!
//! **Stage two** ([`Cvm::load_kernel`]) byte-scans the kernel image and
//! maps it; [`Cvm::enter_kernel`] then drops every core to the normal
//! (deprivileged) mode.

use crate::config::{ExecConfig, Mode};
use crate::gate::EmcGate;
use crate::monitor::{LoadError, Monitor};
use crate::policy::{self, FrameKind, FrameTable};
use erebor_hw::cpu::{Domain, Machine};
use erebor_hw::fault::Fault;
use erebor_hw::image::{Image, SectionKind};
use erebor_hw::insn::{encode, SensitiveClass, ENDBR64};
use erebor_hw::layout::{self, direct_map};
use erebor_hw::paging::{self, Pte, PteFlags};
use erebor_hw::phys::Region;
use erebor_hw::regs::{s_cet, Cr0, Cr4, Msr};
use erebor_hw::{Frame, VirtAddr, PAGE_SIZE};
use erebor_tdx::TdxModule;

/// Boot-time parameters.
#[derive(Debug, Clone, Copy)]
pub struct BootConfig {
    /// Logical cores (the paper's CVM gets 8 vCPUs).
    pub cores: usize,
    /// Simulated DRAM size in bytes.
    pub dram_bytes: u64,
    /// Protection configuration.
    pub config: ExecConfig,
    /// Determinism seed (hardware root key, monitor RNG).
    pub seed: u64,
    /// Paravisor-enhanced deployment (§10): a trusted paravisor (e.g.
    /// COCONUT-SVSM / OpenHCL) occupies MRTD; Erebor's measurement goes to
    /// RTMR\[0\] and verifiers use the paravisor policy.
    pub paravisor: bool,
}

impl Default for BootConfig {
    fn default() -> BootConfig {
        BootConfig {
            cores: 8,
            dram_bytes: 128 * 1024 * 1024,
            config: ExecConfig::new(Mode::Full),
            seed: 0x45_52_45_42, // "EREB"
            paravisor: false,
        }
    }
}

/// Boot failure.
#[derive(Debug)]
pub enum BootError {
    /// DRAM too small for the fixed regions.
    DramTooSmall,
    /// Hardware fault during construction.
    Fault(Fault),
    /// Stage-two kernel load failure.
    Load(LoadError),
}

impl core::fmt::Display for BootError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BootError::DramTooSmall => write!(f, "DRAM too small for boot layout"),
            BootError::Fault(e) => write!(f, "boot fault: {e}"),
            BootError::Load(e) => write!(f, "kernel load failed: {e}"),
        }
    }
}

impl std::error::Error for BootError {}

impl From<Fault> for BootError {
    fn from(f: Fault) -> BootError {
        BootError::Fault(f)
    }
}

/// The booted confidential virtual machine.
pub struct Cvm {
    /// The hardware.
    pub machine: Machine,
    /// The TDX module and untrusted host.
    pub tdx: TdxModule,
    /// The security monitor (inert in [`Mode::Native`]).
    pub monitor: Monitor,
    /// Kernel entry point after stage two.
    pub kernel_entry: Option<VirtAddr>,
    /// The measured firmware image.
    pub firmware_image: Image,
    /// The measured monitor image.
    pub monitor_image: Image,
}

impl core::fmt::Debug for Cvm {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Cvm")
            .field("mode", &self.monitor.cfg.mode)
            .field("kernel_entry", &self.kernel_entry)
            .finish_non_exhaustive()
    }
}

/// Build the firmware image (stands in for OVMF).
#[must_use]
pub fn firmware_image(seed: u64) -> Image {
    Image::builder("ovmf-firmware")
        .benign_text(
            ".text",
            VirtAddr(0xffff_8000_f000_0000),
            32 * 1024,
            seed ^ 0xf1f1,
        )
        .entry(VirtAddr(0xffff_8000_f000_0000))
        .build()
}

/// Build the monitor image: `endbr64` landing pads at every hardware
/// entry point into the monitor — the EMC entry gate, the syscall
/// interposer (LSTAR target), and the interrupt interposer (IDT gate
/// target) — followed by the monitor's (legitimately privileged) code,
/// which includes real sensitive-instruction encodings.
#[must_use]
pub fn monitor_image() -> Image {
    let mut text = vec![0x90u8; 64 * 1024];
    // Offset 0: the EMC entry gate landing pad.
    text[..4].copy_from_slice(&ENDBR64);
    // Offset 0x100: the syscall interposer LSTAR points at.
    // Offset 0x200: the interrupt interposer every IDT gate points at.
    // With IBT active these are architectural control transfers into the
    // monitor, so each must start with an endbr64 pad (claim C5).
    text[0x100..0x104].copy_from_slice(&ENDBR64);
    text[0x200..0x204].copy_from_slice(&ENDBR64);
    // Sprinkle the privileged instruction encodings the monitor uses.
    let mut off = 0x400;
    for class in SensitiveClass::ALL {
        let enc = encode(class);
        text[off..off + enc.len()].copy_from_slice(&enc);
        off += 0x40;
    }
    Image::builder("erebor-monitor")
        .section(".text", layout::MONITOR_BASE, SectionKind::Text, text)
        .entry(layout::MONITOR_BASE)
        .build()
}

/// Fixed physical layout, in frames, derived from DRAM size.
#[derive(Debug, Clone, Copy)]
pub struct PhysLayout {
    /// Firmware frames.
    pub firmware: Region,
    /// Monitor frames (image, data, stacks, IDT).
    pub monitor: Region,
    /// Reserved contiguous region for confined memory (Linux-CMA analogue).
    pub cma: Region,
    /// Device-shared window (the only frames allowed to become shared).
    pub device: Region,
}

impl PhysLayout {
    /// Compute the layout for `total_frames` of DRAM.
    ///
    /// # Errors
    /// [`BootError::DramTooSmall`] below 32 MiB.
    pub fn for_frames(total_frames: u64) -> Result<PhysLayout, BootError> {
        if total_frames < 8192 {
            return Err(BootError::DramTooSmall);
        }
        Ok(PhysLayout {
            firmware: Region::new(16, 48),
            monitor: Region::new(48, 1024),
            cma: Region::new(total_frames / 2, total_frames / 2 + total_frames / 4),
            device: Region::new(
                total_frames / 2 + total_frames / 4,
                total_frames / 2 + total_frames / 4 + total_frames / 8,
            ),
        })
    }
}

/// Stand-in image bytes for the open-source paravisor (§10) measured into
/// MRTD in paravisor deployments.
pub const PARAVISOR_MEASUREMENT_INPUT: &[u8] = b"coconut-svsm-paravisor-v1";

/// Virtual address of the hardware IDT inside the monitor window.
pub const IDT_VA: VirtAddr = VirtAddr(layout::MONITOR_BASE.0 + 0x0010_0000);
/// Virtual base of the per-core secure stacks.
pub const SECURE_STACK_VA: VirtAddr = VirtAddr(layout::MONITOR_BASE.0 + 0x0020_0000);

/// The 32-byte hardware root seed derived from the boot seed: the key
/// the TDX module's attestation identity grows from. Live migration
/// hands exactly these bytes to the destination (sealed, as the
/// `ROOT_SEED` section) so the imported module re-derives the same
/// signing keys.
#[must_use]
pub fn hw_root_seed(seed: u64) -> [u8; 32] {
    let mut seed32 = [0u8; 32];
    seed32[..8].copy_from_slice(&seed.to_le_bytes());
    erebor_crypto::sha256(&seed32)
}

/// Stage-one boot: firmware + monitor only (see module docs).
///
/// On return, every core is still in the privileged (firmware) state:
/// call [`Cvm::load_kernel`] and then [`Cvm::enter_kernel`].
///
/// # Errors
/// [`BootError`] on layout or construction failures.
pub fn boot_stage1(cfg: BootConfig) -> Result<Cvm, BootError> {
    let mut machine = Machine::new(cfg.cores, cfg.dram_bytes);
    let total = machine.mem.total_frames();
    let lay = PhysLayout::for_frames(total)?;

    // The TDX module accepts all of guest DRAM as private memory.
    let mut tdx = TdxModule::new(hw_root_seed(cfg.seed));
    for f in 0..total {
        tdx.sept.accept_private(Frame(f));
    }

    // Claim fixed regions; reserve the dynamic pools.
    machine
        .mem
        .claim_region(lay.firmware)
        .map_err(|_| BootError::DramTooSmall)?;
    machine
        .mem
        .claim_region(lay.monitor)
        .map_err(|_| BootError::DramTooSmall)?;
    machine.mem.reserve_region(lay.cma);
    machine.mem.reserve_region(lay.device);

    // Measure stage-one images. In a paravisor deployment (§10), MRTD is
    // occupied by the paravisor image and Erebor's chain moves to RTMR\[0\].
    let firmware = firmware_image(cfg.seed);
    let monitor_img = monitor_image();
    if cfg.paravisor {
        tdx.attest.extend_mrtd(PARAVISOR_MEASUREMENT_INPUT);
        tdx.attest.seal_mrtd();
        // Statically infallible: extend_rtmr only errors for an index
        // past the four architectural RTMRs, and 0 is hard-coded here.
        tdx.attest
            .extend_rtmr(0, &firmware.measurement_bytes())
            .ok();
        tdx.attest
            .extend_rtmr(0, &monitor_img.measurement_bytes())
            .ok();
    } else {
        tdx.attest.extend_mrtd(&firmware.measurement_bytes());
        tdx.attest.extend_mrtd(&monitor_img.measurement_bytes());
        tdx.attest.seal_mrtd();
    }

    let mut frames = FrameTable::new(total);
    for f in lay.firmware.start.0..lay.firmware.end.0 {
        // Statically infallible: the table was created empty on the line
        // above, so no frame can already carry a conflicting kind.
        frames.set_kind(Frame(f), FrameKind::Firmware).ok();
    }

    // Kernel root page table.
    let kernel_root = machine
        .mem
        .alloc_frame()
        .map_err(|_| BootError::DramTooSmall)?;
    let mut boot_ptps = vec![kernel_root];

    // Direct map of all physical memory (4 KiB pages; huge pages are
    // disabled, §7). Monitor/firmware frames get the monitor key.
    for f in 0..total {
        let in_monitor = lay.monitor.contains(Frame(f)) || lay.firmware.contains(Frame(f));
        let pkey = if in_monitor {
            policy::PK_MONITOR
        } else {
            policy::PK_DEFAULT
        };
        let flags = PteFlags {
            present: true,
            writable: true,
            nx: true,
            pkey,
            ..PteFlags::default()
        };
        let new = paging::map_raw(
            &mut machine.mem,
            kernel_root,
            direct_map(Frame(f).base()),
            Pte::encode(Frame(f), flags),
            paging::intermediate_for(flags),
        )
        .map_err(|_| BootError::DramTooSmall)?;
        boot_ptps.extend(new);
    }

    // Map the monitor image (RX) into the monitor window.
    let mut next_monitor_frame = lay.monitor.start.0;
    let mut alloc_monitor = |n: u64| -> Region {
        let r = Region::new(next_monitor_frame, next_monitor_frame + n);
        next_monitor_frame += n;
        r
    };
    for section in &monitor_img.sections {
        let pages = section.bytes.len().div_ceil(PAGE_SIZE) as u64;
        let region = alloc_monitor(pages);
        for p in 0..pages {
            let frame = Frame(region.start.0 + p);
            let start = (p as usize) * PAGE_SIZE;
            let end = (start + PAGE_SIZE).min(section.bytes.len());
            machine
                .mem
                .write(frame.base(), &section.bytes[start..end])
                .map_err(|_| BootError::DramTooSmall)?;
            let flags = match section.kind {
                SectionKind::Text => PteFlags::kernel_rx(policy::PK_MONITOR),
                SectionKind::Rodata => PteFlags::kernel_ro(policy::PK_MONITOR),
                SectionKind::Data => PteFlags::kernel_rw(policy::PK_MONITOR),
            };
            let new = paging::map_raw(
                &mut machine.mem,
                kernel_root,
                section.va.add(start as u64),
                Pte::encode(frame, flags),
                paging::intermediate_for(flags),
            )
            .map_err(|_| BootError::DramTooSmall)?;
            boot_ptps.extend(new);
        }
    }

    // Monitor data window: secure stacks (one page per core).
    let stack_region = alloc_monitor(cfg.cores as u64);
    let mut secure_stacks = Vec::with_capacity(cfg.cores);
    for (i, f) in (stack_region.start.0..stack_region.end.0).enumerate() {
        let va = SECURE_STACK_VA.add((i * PAGE_SIZE) as u64);
        let new = paging::map_raw(
            &mut machine.mem,
            kernel_root,
            va,
            Pte::encode(Frame(f), PteFlags::kernel_rw(policy::PK_MONITOR)),
            paging::intermediate_for(PteFlags::kernel_rw(policy::PK_MONITOR)),
        )
        .map_err(|_| BootError::DramTooSmall)?;
        boot_ptps.extend(new);
        secure_stacks.push(va.add(PAGE_SIZE as u64 - 16));
    }

    // Hardware IDT page (PK_IDT: kernel-readable, monitor-writable).
    let idt_region = alloc_monitor(1);
    let idt_frame = Frame(idt_region.start.0);
    let idt_key = if cfg.config.monitor_present() {
        policy::PK_IDT
    } else {
        policy::PK_DEFAULT
    };
    let new = paging::map_raw(
        &mut machine.mem,
        kernel_root,
        IDT_VA,
        Pte::encode(idt_frame, PteFlags::kernel_rw(idt_key)),
        paging::intermediate_for(PteFlags::kernel_rw(idt_key)),
    )
    .map_err(|_| BootError::DramTooSmall)?;
    boot_ptps.extend(new);

    // Tag monitor frames and the boot PTPs; fix their direct-map keys.
    for f in lay.monitor.start.0..lay.monitor.end.0 {
        // Statically infallible: the monitor region is disjoint from the
        // firmware region (checked by `Layout`), so these frames are
        // still untagged.
        frames.set_kind(Frame(f), FrameKind::Monitor).ok();
    }
    frames.set_kind(idt_frame, FrameKind::Idt).ok();
    for p in &boot_ptps {
        // Boot PTPs came from the general pool and default to PK_DEFAULT
        // in the direct map; retag raw (firmware privilege).
        frames.set_kind(*p, FrameKind::Ptp).ok();
        let slot = paging::leaf_slot(&machine.mem, kernel_root, direct_map(p.base()))
            .map_err(|_| BootError::DramTooSmall)?
            .ok_or(BootError::DramTooSmall)?;
        let flags = PteFlags {
            present: true,
            writable: true,
            nx: true,
            pkey: policy::PK_PTP,
            ..PteFlags::default()
        };
        machine
            .mem
            .write_u64(slot, Pte::encode(*p, flags).0)
            .map_err(|_| BootError::DramTooSmall)?;
    }

    // Register the monitor's landing pads: the EMC gate and the two
    // hardware interposers (syscall + interrupt).
    machine.endbr.add_image(&monitor_img);

    // Per-core state: pinned protections on, interposers installed.
    machine.allow_sensitive(Domain::Firmware);
    if cfg.config.monitor_present() {
        machine.allow_sensitive(Domain::Monitor);
    } else {
        // Native CVM: the kernel keeps its privileges.
        machine.allow_sensitive(Domain::Kernel);
    }
    let gate_entry = layout::MONITOR_BASE;
    let syscall_interposer = VirtAddr(layout::MONITOR_BASE.0 + 0x100);
    for cpu in 0..cfg.cores {
        machine.cpus[cpu].cr3 = kernel_root;
        machine.flush_tlb(cpu);
        machine.cpus[cpu].cr0 = Cr0(Cr0::WP | Cr0::PG);
        machine.cpus[cpu].cr4 = Cr4(Cr4::SMEP | Cr4::SMAP | Cr4::PKS | Cr4::CET);
        machine.cpus[cpu].domain = Domain::Firmware;
        let scet = if cfg.config.shadow_stacks {
            s_cet::ENDBR_EN | s_cet::SH_STK_EN
        } else {
            s_cet::ENDBR_EN
        };
        machine.wrmsr(cpu, Msr::SCet, scet)?;
        machine.wrmsr(cpu, Msr::Pkrs, policy::monitor_mode_pkrs().0)?;
        if cfg.config.monitor_present() {
            machine.wrmsr(cpu, Msr::Lstar, syscall_interposer.0)?;
        }
        machine.lidt(cpu, IDT_VA)?;
    }

    let monitor = Monitor::new(
        cfg.config,
        frames,
        EmcGate::new(gate_entry, secure_stacks),
        {
            let mut s = [0u8; 32];
            s[..8].copy_from_slice(&cfg.seed.to_le_bytes());
            s[8] = 0x4d;
            s
        },
        kernel_root,
        IDT_VA,
        lay.cma,
        lay.device,
    );

    let mut cvm = Cvm {
        machine,
        tdx,
        monitor,
        kernel_entry: None,
        firmware_image: firmware,
        monitor_image: monitor_img,
    };

    // Point every IDT vector at the monitor's interrupt interposer
    // (checked writes; boot PKRS grants PK_IDT).
    if cfg.config.monitor_present() {
        let interposer = cvm.monitor.interrupt_interposer;
        for vec in 0..=255u8 {
            cvm.monitor
                .write_idt_entry(&mut cvm.machine, 0, vec, interposer)?;
        }
    }

    Ok(cvm)
}

impl Cvm {
    /// Stage-two boot: verify and load the kernel image (§5.1).
    ///
    /// # Errors
    /// [`BootError::Load`] — in particular when the byte scan rejects the
    /// image.
    pub fn load_kernel(&mut self, image: &Image) -> Result<VirtAddr, BootError> {
        let entry = self
            .monitor
            .load_kernel(&mut self.machine, 0, image)
            .map_err(BootError::Load)?;
        self.kernel_entry = Some(entry);
        Ok(entry)
    }

    /// Drop every core to the deprivileged kernel state: normal-mode PKRS,
    /// kernel code domain. After this, sensitive instructions require an
    /// EMC.
    ///
    /// # Errors
    /// MSR faults.
    pub fn enter_kernel(&mut self) -> Result<(), BootError> {
        let pkrs = if self.monitor.cfg.monitor_present() {
            policy::normal_mode_pkrs().0
        } else {
            policy::monitor_mode_pkrs().0
        };
        for cpu in 0..self.machine.cpus.len() {
            self.machine.wrmsr(cpu, Msr::Pkrs, pkrs)?;
            self.machine.cpus[cpu].domain = Domain::Kernel;
            self.machine.cpus[cpu].ctx.rip = self.kernel_entry.map_or(0, |e| e.0);
        }
        Ok(())
    }

    /// Host/device DMA write into guest memory (attack-surface helper:
    /// succeeds only for frames the guest converted to shared).
    ///
    /// # Errors
    /// [`erebor_tdx::host::HostAccessError`] for private frames.
    pub fn host_dma_write(
        &mut self,
        frame: Frame,
        data: &[u8],
    ) -> Result<(), erebor_tdx::host::HostAccessError> {
        let sept = self.tdx.sept.clone();
        self.tdx
            .host
            .dma_write(&mut self.machine.mem, &sept, frame, data)
    }

    /// Convenience: full boot (stage one + stage two + privilege drop).
    ///
    /// # Errors
    /// Any [`BootError`].
    pub fn boot_all(cfg: BootConfig, kernel_image: &Image) -> Result<Cvm, BootError> {
        let mut cvm = boot_stage1(cfg)?;
        cvm.load_kernel(kernel_image)?;
        cvm.enter_kernel()?;
        Ok(cvm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(mode: Mode) -> BootConfig {
        BootConfig {
            cores: 2,
            dram_bytes: 48 * 1024 * 1024,
            config: ExecConfig::new(mode),
            seed: 7,
            paravisor: false,
        }
    }

    fn benign_kernel() -> Image {
        Image::builder("linux-6.6-erebor")
            .benign_text(".text", layout::KERNEL_BASE, 64 * 1024, 99)
            .section(
                ".data",
                VirtAddr(layout::KERNEL_BASE.0 + 0x0100_0000),
                SectionKind::Data,
                vec![0u8; 8192],
            )
            .entry(layout::KERNEL_BASE)
            .build()
    }

    #[test]
    fn stage1_boots_and_measures() {
        let cvm = boot_stage1(small_cfg(Mode::Full)).unwrap();
        let expect = erebor_tdx::attest::expected_mrtd(&[
            &cvm.firmware_image.measurement_bytes(),
            &cvm.monitor_image.measurement_bytes(),
        ]);
        assert_eq!(cvm.tdx.attest.mrtd(), expect);
    }

    #[test]
    fn benign_kernel_loads_and_enters() {
        let mut cvm = boot_stage1(small_cfg(Mode::Full)).unwrap();
        let entry = cvm.load_kernel(&benign_kernel()).unwrap();
        assert_eq!(entry, layout::KERNEL_BASE);
        cvm.enter_kernel().unwrap();
        assert_eq!(cvm.machine.cpus[0].pkrs(), policy::normal_mode_pkrs());
        assert_eq!(cvm.machine.cpus[0].domain, Domain::Kernel);
    }

    #[test]
    fn malicious_kernel_rejected_at_boot() {
        let mut cvm = boot_stage1(small_cfg(Mode::Full)).unwrap();
        let mut text = vec![0x90u8; 8192];
        let wrmsr = encode(SensitiveClass::Wrmsr);
        text[4000..4000 + wrmsr.len()].copy_from_slice(&wrmsr);
        let evil = Image::builder("evil-kernel")
            .section(".text", layout::KERNEL_BASE, SectionKind::Text, text)
            .entry(layout::KERNEL_BASE)
            .build();
        let err = cvm.load_kernel(&evil).unwrap_err();
        assert!(
            matches!(err, BootError::Load(LoadError::Rejected(_))),
            "{err}"
        );
        assert!(cvm.kernel_entry.is_none());
    }

    #[test]
    fn kernel_cannot_write_monitor_memory_after_entry() {
        let mut cvm = boot_stage1(small_cfg(Mode::Full)).unwrap();
        cvm.load_kernel(&benign_kernel()).unwrap();
        cvm.enter_kernel().unwrap();
        // Monitor text via its VA: PK_MONITOR access-disable.
        let err = cvm.machine.read_u64(0, layout::MONITOR_BASE).unwrap_err();
        assert!(err.is_pf(erebor_hw::fault::PfReason::PksAccessDisabled));
        // And via the direct-map alias of a monitor frame.
        let err = cvm
            .machine
            .read_u64(0, direct_map(Frame(100).base()))
            .unwrap_err();
        assert!(err.is_pf(erebor_hw::fault::PfReason::PksAccessDisabled));
    }

    #[test]
    fn kernel_cannot_execute_sensitive_instructions_after_entry() {
        let mut cvm = boot_stage1(small_cfg(Mode::Full)).unwrap();
        cvm.load_kernel(&benign_kernel()).unwrap();
        cvm.enter_kernel().unwrap();
        let err = cvm.machine.wrmsr(0, Msr::Pkrs, 0).unwrap_err();
        assert!(matches!(err, Fault::UndefinedInstruction(_)));
        let err = cvm.machine.write_cr4(0, 0).unwrap_err();
        assert!(matches!(err, Fault::UndefinedInstruction(_)));
    }

    #[test]
    fn native_mode_kernel_keeps_privileges() {
        let mut cvm = boot_stage1(small_cfg(Mode::Native)).unwrap();
        cvm.load_kernel(&benign_kernel()).unwrap();
        cvm.enter_kernel().unwrap();
        cvm.machine
            .wrmsr(0, Msr::Lstar, layout::KERNEL_BASE.0)
            .unwrap();
        assert_eq!(cvm.machine.cpus[0].msr(Msr::Lstar), layout::KERNEL_BASE.0);
    }

    #[test]
    fn idt_points_at_interposer() {
        let cvm = boot_stage1(small_cfg(Mode::Full)).unwrap();
        let mut machine = cvm.machine;
        let handler = erebor_hw::idt::read_entry(
            &mut machine.mem,
            machine.cpus[0].cr3,
            erebor_hw::idt::Idtr { base: IDT_VA },
            erebor_hw::idt::vector::TIMER,
        )
        .unwrap();
        assert_eq!(handler, cvm.monitor.interrupt_interposer);
    }
}
