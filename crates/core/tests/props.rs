//! Property-based tests for monitor policy structures: the frame table,
//! the kernel-image verifier, and the gate state machine.

use erebor_core::policy::{normal_mode_pkrs, FrameKind, FrameTable};
use erebor_core::scan;
use erebor_hw::image::{Image, SectionKind};
use erebor_hw::insn::{self, SensitiveClass};
use erebor_hw::layout::KERNEL_BASE;
use erebor_hw::Frame;
use erebor_testkit::collection;
use erebor_testkit::prelude::*;

fn arb_kind() -> impl Strategy<Value = FrameKind> {
    prop_oneof![
        Just(FrameKind::KernelData),
        Just(FrameKind::Ptp),
        Just(FrameKind::Monitor),
        Just(FrameKind::Idt),
        Just(FrameKind::KernelCode),
        (0u32..4).prop_map(|s| FrameKind::Confined { sandbox: s }),
        (0u32..4).prop_map(|r| FrameKind::Common { region: r }),
        (0u32..4).prop_map(|a| FrameKind::UserAnon { asid: a }),
    ]
}

proptest! {
    #[test]
    fn frame_table_trusted_kinds_are_sticky(
        first in arb_kind(),
        second in arb_kind(),
    ) {
        let mut t = FrameTable::new(4);
        t.set_kind(Frame(0), first).unwrap();
        let trusted = matches!(
            first,
            FrameKind::Ptp
                | FrameKind::Monitor
                | FrameKind::Idt
                | FrameKind::KernelCode
                | FrameKind::Confined { .. }
                | FrameKind::Common { .. }
        );
        let res = t.set_kind(Frame(0), second);
        if trusted && second != first {
            prop_assert!(res.is_err(), "{first:?} silently became {second:?}");
            prop_assert_eq!(t.kind(Frame(0)), first);
        } else {
            prop_assert!(res.is_ok());
        }
        // Release always resets.
        t.release(Frame(0)).unwrap();
        prop_assert_eq!(t.kind(Frame(0)), FrameKind::Unused);
    }

    #[test]
    fn mapcount_never_underflows(ops in collection::vec(any::<bool>(), 0..64)) {
        let mut t = FrameTable::new(2);
        let mut model: i64 = 0;
        for inc in ops {
            if inc {
                t.inc_map(Frame(1));
                model += 1;
            } else {
                t.dec_map(Frame(1));
                model = (model - 1).max(0);
            }
            prop_assert_eq!(i64::from(t.mapcount(Frame(1))), model);
        }
    }

    #[test]
    fn verifier_accepts_iff_scanner_clean(
        bytes in collection::vec(any::<u8>(), 16..2048),
    ) {
        let img = Image::builder("k")
            .section(".text", KERNEL_BASE, SectionKind::Text, bytes.clone())
            .entry(KERNEL_BASE)
            .build();
        let clean = insn::scan(&bytes).is_empty();
        prop_assert_eq!(scan::verify_image(&img).is_ok(), clean);
    }

    #[test]
    fn patch_verifier_catches_all_straddles(
        prefix_len in 0usize..4,
        class_idx in 0usize..5,
        cut in 1usize..3,
    ) {
        // Split a sensitive encoding across the patch boundary: any split
        // must be rejected in context.
        let class = SensitiveClass::ALL[class_idx];
        let enc = insn::encode(class);
        prop_assume!(cut < enc.len());
        let mut before = vec![0x90u8; prefix_len];
        before.extend_from_slice(&enc[..cut]);
        let patch = enc[cut..].to_vec();
        prop_assert!(
            scan::verify_text_patch(&before, &patch, &[]).is_err(),
            "{class:?} split at {cut} slipped through"
        );
        // The same patch with a NOP-padded prefix may pass only if it is
        // itself clean.
        let alone_ok = insn::scan(&patch).is_empty();
        prop_assert_eq!(
            scan::verify_text_patch(&[0x90; 4], &patch, &[0x90; 4]).is_ok(),
            alone_ok
        );
    }

    #[test]
    fn normal_pkrs_blocks_every_trusted_key(key_extra in 6u8..16) {
        // Keys 1..6 are the monitor's; keys 6..16 are sandbox isolation
        // domains (PKS backend) and must be access-disabled too —
        // confined direct-map aliases carry them. Only key 0 (ordinary
        // kernel data) stays fully accessible.
        let p = normal_mode_pkrs();
        prop_assert!(p.access_disabled(erebor_core::policy::PK_MONITOR));
        prop_assert!(p.write_disabled(erebor_core::policy::PK_PTP));
        prop_assert!(p.write_disabled(erebor_core::policy::PK_KTEXT));
        prop_assert!(p.write_disabled(erebor_core::policy::PK_IDT));
        prop_assert!(!p.access_disabled(0));
        prop_assert!(p.access_disabled(key_extra));
    }
}
