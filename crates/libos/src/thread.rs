//! The LibOS thread pool and userspace synchronization (§6.2 service 3).
//!
//! Threads are created up front via `clone` during initialization; after
//! client data arrives no task-management syscalls remain. Synchronization
//! uses the LibOS's own spinlocks (as the SGX SDK does): busy-waiting costs
//! cycles but never exits the sandbox — the covert-channel-free trade the
//! paper makes explicit.

use crate::api::{Sys, SysError};

/// Cycle cost of one uncontended spinlock acquire/release pair.
pub const SPINLOCK_UNCONTENDED: u64 = 60;
/// Additional busy-wait cycles charged per contending thread (an 8-thread
/// barrier with stragglers burns tens of microseconds; the paper highlights
/// llama.cpp's synchronization as the LibOS-only overhead driver, §9.2).
pub const SPIN_CONTENTION_PER_THREAD: u64 = 5300;

/// The pre-created thread pool.
#[derive(Debug)]
pub struct ThreadPool {
    workers: usize,
    /// Synchronization events performed (for stats).
    pub sync_ops: u64,
    /// Total cycles burned busy-waiting.
    pub spin_cycles: u64,
}

impl ThreadPool {
    /// Pool of `workers` green threads (created via `clone` by the loader).
    #[must_use]
    pub fn new(workers: usize) -> ThreadPool {
        ThreadPool {
            workers: workers.max(1),
            sync_ops: 0,
            spin_cycles: 0,
        }
    }

    /// Number of workers.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run `total_units` of parallelizable work with `sync_points`
    /// synchronization barriers. Work is divided across the pool;
    /// wall-clock cycles are `total/workers` plus spinlock costs.
    ///
    /// # Errors
    /// Propagates kill/fault from the platform.
    pub fn parallel(
        &mut self,
        sys: &mut dyn Sys,
        total_units: u64,
        sync_points: u64,
    ) -> Result<(), SysError> {
        let per_thread = total_units / self.workers as u64;
        sys.compute(per_thread.max(1))?;
        self.synchronize(sys, sync_points)
    }

    /// Charge `n` spinlock synchronization events.
    ///
    /// # Errors
    /// Propagates kill/fault from the platform.
    pub fn synchronize(&mut self, sys: &mut dyn Sys, n: u64) -> Result<(), SysError> {
        if n == 0 {
            return Ok(());
        }
        self.sync_ops += n;
        let contention = (self.workers as u64 - 1) * SPIN_CONTENTION_PER_THREAD;
        let cost = n * (SPINLOCK_UNCONTENDED + contention);
        self.spin_cycles += cost;
        sys.compute(cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct MockSys {
        cycles: u64,
    }

    impl Sys for MockSys {
        fn syscall(&mut self, _nr: u64, _args: [u64; 6]) -> Result<u64, SysError> {
            Ok(0)
        }
        fn touch(&mut self, _va: u64, _write: bool) -> Result<(), SysError> {
            Ok(())
        }
        fn read_mem(&mut self, _va: u64, _buf: &mut [u8]) -> Result<(), SysError> {
            Ok(())
        }
        fn write_mem(&mut self, _va: u64, _data: &[u8]) -> Result<(), SysError> {
            Ok(())
        }
        fn compute(&mut self, units: u64) -> Result<(), SysError> {
            self.cycles += units;
            Ok(())
        }
        fn cpuid(&mut self, _leaf: u32) -> Result<u32, SysError> {
            Ok(0)
        }
        fn cycles(&self) -> u64 {
            self.cycles
        }
    }

    #[test]
    fn parallel_divides_work() {
        let mut sys = MockSys { cycles: 0 };
        let mut pool = ThreadPool::new(8);
        pool.parallel(&mut sys, 8000, 0).unwrap();
        assert_eq!(sys.cycles, 1000);
    }

    #[test]
    fn sync_costs_scale_with_contention() {
        let mut sys1 = MockSys { cycles: 0 };
        let mut solo = ThreadPool::new(1);
        solo.synchronize(&mut sys1, 10).unwrap();
        let mut sys8 = MockSys { cycles: 0 };
        let mut eight = ThreadPool::new(8);
        eight.synchronize(&mut sys8, 10).unwrap();
        assert!(sys8.cycles > sys1.cycles, "contention must cost more");
        assert_eq!(eight.sync_ops, 10);
    }
}
