//! The LibOS userspace heap: serves `malloc`-style allocations from the
//! pre-declared confined window without any runtime exits (§6.2 service 1).

use erebor_hw::PAGE_SIZE;

/// Base user VA of the confined heap window.
pub const CONFINED_HEAP_BASE: u64 = 0x0000_5000_0000;

/// Allocation failure: confined budget exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfHeap;

impl core::fmt::Display for OutOfHeap {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "confined heap exhausted")
    }
}

impl std::error::Error for OutOfHeap {}

/// A simple first-fit free-list allocator over the confined window.
#[derive(Debug)]
pub struct Heap {
    base: u64,
    size: u64,
    /// Sorted free list of `(offset, len)`.
    free: Vec<(u64, u64)>,
    /// High-water mark in bytes.
    pub high_water: u64,
}

impl Heap {
    /// A heap over `pages` pages starting at `base` (the pre-declared
    /// confined window, or an mmap window in the LibOS-only baseline).
    #[must_use]
    pub fn new(base: u64, pages: u64) -> Heap {
        let size = pages * PAGE_SIZE as u64;
        Heap {
            base,
            size,
            free: vec![(0, size)],
            high_water: 0,
        }
    }

    /// Base user VA of the heap window.
    #[must_use]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.size
    }

    /// Bytes currently free.
    #[must_use]
    pub fn free_bytes(&self) -> u64 {
        self.free.iter().map(|(_, l)| l).sum()
    }

    /// Allocate `len` bytes (16-byte aligned). Returns the user VA.
    ///
    /// # Errors
    /// [`OutOfHeap`] when no block fits.
    pub fn alloc(&mut self, len: u64) -> Result<u64, OutOfHeap> {
        let len = len.max(1).next_multiple_of(16);
        for i in 0..self.free.len() {
            let (off, flen) = self.free[i];
            if flen >= len {
                if flen == len {
                    self.free.remove(i);
                } else {
                    self.free[i] = (off + len, flen - len);
                }
                self.high_water = self.high_water.max(off + len);
                return Ok(self.base + off);
            }
        }
        Err(OutOfHeap)
    }

    /// Free a previous allocation of `len` bytes at `va`, coalescing
    /// neighbours.
    ///
    /// # Panics
    /// Debug-asserts the address belongs to the heap.
    pub fn free(&mut self, va: u64, len: u64) {
        let len = len.max(1).next_multiple_of(16);
        debug_assert!(va >= self.base && va + len <= self.base + self.size);
        let off = va - self.base;
        let pos = self.free.partition_point(|(o, _)| *o < off);
        self.free.insert(pos, (off, len));
        // Coalesce.
        let mut i = 0;
        while i + 1 < self.free.len() {
            let (o1, l1) = self.free[i];
            let (o2, l2) = self.free[i + 1];
            if o1 + l1 == o2 {
                self.free[i] = (o1, l1 + l2);
                self.free.remove(i + 1);
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_coalesce() {
        let mut h = Heap::new(CONFINED_HEAP_BASE, 4); // 16 KiB
        let a = h.alloc(4096).unwrap();
        let b = h.alloc(4096).unwrap();
        let c = h.alloc(4096).unwrap();
        assert_eq!(b - a, 4096);
        h.free(a, 4096);
        h.free(c, 4096);
        h.free(b, 4096);
        assert_eq!(h.free_bytes(), h.capacity());
        assert_eq!(h.free.len(), 1, "fully coalesced");
    }

    #[test]
    fn exhaustion() {
        let mut h = Heap::new(CONFINED_HEAP_BASE, 1);
        h.alloc(4096).unwrap();
        assert_eq!(h.alloc(16), Err(OutOfHeap));
    }

    #[test]
    fn alignment() {
        let mut h = Heap::new(CONFINED_HEAP_BASE, 1);
        let a = h.alloc(3).unwrap();
        let b = h.alloc(3).unwrap();
        assert_eq!(a % 16, 0);
        assert_eq!(b - a, 16);
    }

    #[test]
    fn high_water_tracks() {
        let mut h = Heap::new(CONFINED_HEAP_BASE, 4);
        let a = h.alloc(1000).unwrap();
        h.alloc(1000).unwrap();
        h.free(a, 1000);
        assert!(h.high_water >= 2000 - 16);
    }
}
