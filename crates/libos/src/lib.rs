//! # erebor-libos — the sandbox Library OS
//!
//! A Gramine-derived (§7) single-address-space LibOS that emulates the four
//! runtime services of §6.2 *inside* the sandbox boundary:
//!
//! 1. **Heap management** — all memory is pre-declared as confined at
//!    initialization and served from a userspace bump/free-list allocator;
//!    no `brk`/`mmap` exits at runtime.
//! 2. **In-memory stateless filesystem** — files preloaded before client
//!    data arrives; temporary files live in confined memory.
//! 3. **Multi-tasking** — a fixed pool of green threads created up front
//!    (`clone` during init), synchronized with userspace spinlocks (no
//!    `futex` exits after data install).
//! 4. **Client data communication** — the reserved-fd `ioctl` channel to
//!    the monitor (§6.3).
//!
//! Programs implement [`ServiceProgram`] and interact with the platform
//! through the [`Sys`] trait, which the `erebor` facade implements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod api;
pub mod fs;
pub mod heap;
pub mod manifest;
pub mod os;
pub mod thread;

pub use api::{Sys, SysError};
pub use manifest::{CommonSpec, Manifest};
pub use os::{LibOs, LibOsError, ServiceProgram};
