//! The system interface a sandboxed (or native) program sees.
//!
//! The [`Sys`] trait is the LibOS's window onto the simulated platform: it
//! issues real `syscall` transitions, performs user-mode memory accesses
//! (which may page-fault and exit), charges computation cycles, and lets
//! the platform deliver timer interrupts at quantum boundaries.

/// Errors surfaced to user code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SysError {
    /// The monitor killed the sandbox (policy violation).
    Killed(&'static str),
    /// An unrecoverable memory fault (segfault analogue).
    Fault,
    /// A syscall returned a Linux errno.
    Errno(i64),
}

impl core::fmt::Display for SysError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SysError::Killed(why) => write!(f, "sandbox killed: {why}"),
            SysError::Fault => write!(f, "memory fault"),
            SysError::Errno(e) => write!(f, "errno {e}"),
        }
    }
}

impl std::error::Error for SysError {}

/// The platform interface for user-mode execution.
pub trait Sys {
    /// Execute a `syscall` instruction with the Linux register convention.
    /// Returns `rax`.
    ///
    /// # Errors
    /// [`SysError::Killed`] if the monitor terminated the sandbox;
    /// [`SysError::Errno`] for kernel errors.
    fn syscall(&mut self, nr: u64, args: [u64; 6]) -> Result<u64, SysError>;

    /// A user-mode data access at `va` (drives demand paging: may exit via
    /// `#PF` and return only after the fault is serviced).
    ///
    /// # Errors
    /// [`SysError::Fault`] for unrecoverable faults, [`SysError::Killed`]
    /// if the fault killed the sandbox.
    fn touch(&mut self, va: u64, write: bool) -> Result<(), SysError>;

    /// Read user memory contents (after faulting pages in).
    ///
    /// # Errors
    /// As [`Sys::touch`].
    fn read_mem(&mut self, va: u64, buf: &mut [u8]) -> Result<(), SysError>;

    /// Write user memory contents (after faulting pages in).
    ///
    /// # Errors
    /// As [`Sys::touch`].
    fn write_mem(&mut self, va: u64, data: &[u8]) -> Result<(), SysError>;

    /// Charge `units` of computation (ALU work) and give the platform a
    /// chance to deliver due timer/device interrupts.
    ///
    /// # Errors
    /// [`SysError::Killed`] if an interposed exit killed the sandbox.
    fn compute(&mut self, units: u64) -> Result<(), SysError>;

    /// Execute a `cpuid` (causes a `#VE` under TDX; the monitor caches the
    /// host's answer for sandboxes, §6.2). Returns `eax`.
    ///
    /// # Errors
    /// [`SysError::Killed`] on policy violations.
    fn cpuid(&mut self, leaf: u32) -> Result<u32, SysError>;

    /// Current simulated cycle counter (for workload self-timing).
    fn cycles(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(SysError::Killed("syscall").to_string().contains("killed"));
        assert!(SysError::Errno(-2).to_string().contains("errno"));
    }
}
