//! The LibOS manifest: everything the loader must set up *before* client
//! data can arrive (confined budget, preloaded files, common regions,
//! thread pool size).

/// A common (shared, eventually read-only) region the program needs.
#[derive(Debug, Clone)]
pub struct CommonSpec {
    /// Name (for program lookup, e.g. "model", "database").
    pub name: String,
    /// Physical pages backing the simulated window.
    pub pages: u64,
    /// Declared logical size in bytes (Table 6 "Com." column).
    pub logical_bytes: u64,
}

/// The manifest.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Program name.
    pub name: String,
    /// Confined heap pages to declare up front (the hard budget of §6.1
    /// comes from the service provider; the loader declares within it).
    pub heap_pages: u64,
    /// Declared logical confined size in bytes (Table 6 "Conf.").
    pub logical_confined_bytes: u64,
    /// Maximum green threads (pre-created at init, §6.2).
    pub max_threads: usize,
    /// Files preloaded into the in-memory FS.
    pub preload_files: Vec<(String, Vec<u8>)>,
    /// Common regions to create (or attach, if they already exist).
    pub commons: Vec<CommonSpec>,
}

impl Manifest {
    /// A minimal manifest.
    #[must_use]
    pub fn new(name: &str, heap_pages: u64) -> Manifest {
        Manifest {
            name: name.to_string(),
            heap_pages,
            logical_confined_bytes: heap_pages * erebor_hw::PAGE_SIZE as u64,
            max_threads: 1,
            preload_files: Vec::new(),
            commons: Vec::new(),
        }
    }

    /// Builder: set thread-pool size.
    #[must_use]
    pub fn threads(mut self, n: usize) -> Manifest {
        self.max_threads = n.max(1);
        self
    }

    /// Builder: preload a file.
    #[must_use]
    pub fn preload(mut self, path: &str, contents: Vec<u8>) -> Manifest {
        self.preload_files.push((path.to_string(), contents));
        self
    }

    /// Builder: request a common region.
    #[must_use]
    pub fn common(mut self, name: &str, pages: u64, logical_bytes: u64) -> Manifest {
        self.commons.push(CommonSpec {
            name: name.to_string(),
            pages,
            logical_bytes,
        });
        self
    }

    /// Builder: declared logical confined size.
    #[must_use]
    pub fn logical_confined(mut self, bytes: u64) -> Manifest {
        self.logical_confined_bytes = bytes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let m = Manifest::new("llama", 128)
            .threads(8)
            .preload("/model/config.json", b"{}".to_vec())
            .common("model", 64, 4 << 30);
        assert_eq!(m.max_threads, 8);
        assert_eq!(m.preload_files.len(), 1);
        assert_eq!(m.commons[0].logical_bytes, 4 << 30);
    }

    #[test]
    fn threads_minimum_one() {
        assert_eq!(Manifest::new("x", 1).threads(0).max_threads, 1);
    }
}
