//! The in-memory stateless filesystem (§6.2 service 2).
//!
//! Files are preloaded before client data arrives; afterwards the sandbox
//! operates statelessly, creating only temporary in-memory files whose
//! bytes live in confined memory (the LibOS charges confined-heap space
//! for them).

use std::collections::BTreeMap;

/// Filesystem error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsError {
    /// No such file.
    NotFound,
    /// The preload phase is over (filesystem is sealed stateless).
    Sealed,
}

impl core::fmt::Display for FsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FsError::NotFound => write!(f, "file not found"),
            FsError::Sealed => write!(f, "filesystem sealed (preload phase over)"),
        }
    }
}

impl std::error::Error for FsError {}

/// The stateless in-memory FS.
#[derive(Debug, Default)]
pub struct MemFs {
    preloaded: BTreeMap<String, Vec<u8>>,
    temp: BTreeMap<String, Vec<u8>>,
    sealed: bool,
}

impl MemFs {
    /// Empty filesystem in the preload phase.
    #[must_use]
    pub fn new() -> MemFs {
        MemFs::default()
    }

    /// Preload a file (loader only).
    ///
    /// # Errors
    /// [`FsError::Sealed`] after the preload phase.
    pub fn preload(&mut self, path: &str, contents: Vec<u8>) -> Result<(), FsError> {
        if self.sealed {
            return Err(FsError::Sealed);
        }
        self.preloaded.insert(path.to_string(), contents);
        Ok(())
    }

    /// End the preload phase (called when client data is installed).
    pub fn seal(&mut self) {
        self.sealed = true;
    }

    /// Whether preloading is over.
    #[must_use]
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// Read a file (preloaded or temporary).
    ///
    /// # Errors
    /// [`FsError::NotFound`].
    pub fn read(&self, path: &str) -> Result<&[u8], FsError> {
        self.temp
            .get(path)
            .or_else(|| self.preloaded.get(path))
            .map(Vec::as_slice)
            .ok_or(FsError::NotFound)
    }

    /// Create or overwrite a *temporary* file (always allowed; temp files
    /// are confined-memory state that dies with the session).
    pub fn write_temp(&mut self, path: &str, contents: Vec<u8>) {
        self.temp.insert(path.to_string(), contents);
    }

    /// Bytes held in temporary files (charged against confined memory).
    #[must_use]
    pub fn temp_bytes(&self) -> u64 {
        self.temp.values().map(|v| v.len() as u64).sum()
    }

    /// Wipe all temporary state (session teardown).
    pub fn clear_temp(&mut self) {
        self.temp.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preload_then_seal() {
        let mut fs = MemFs::new();
        fs.preload("/lib/libc.so", vec![1, 2, 3]).unwrap();
        fs.seal();
        assert_eq!(fs.preload("/late", vec![]), Err(FsError::Sealed));
        assert_eq!(fs.read("/lib/libc.so").unwrap(), &[1, 2, 3]);
    }

    #[test]
    fn temp_files_shadow_and_clear() {
        let mut fs = MemFs::new();
        fs.preload("/cfg", b"orig".to_vec()).unwrap();
        fs.seal();
        fs.write_temp("/cfg", b"new!".to_vec());
        assert_eq!(fs.read("/cfg").unwrap(), b"new!");
        assert_eq!(fs.temp_bytes(), 4);
        fs.clear_temp();
        assert_eq!(fs.read("/cfg").unwrap(), b"orig");
    }

    #[test]
    fn missing_file() {
        let fs = MemFs::new();
        assert_eq!(fs.read("/nope"), Err(FsError::NotFound));
    }
}
