//! The LibOS core: loader, runtime services, and the program interface.

use crate::api::{Sys, SysError};
use crate::fs::MemFs;
use crate::heap::{Heap, CONFINED_HEAP_BASE};
use crate::manifest::Manifest;
use crate::thread::ThreadPool;
use erebor_core::monitor::{EREBOR_IO_FD, IOCTL_INPUT, IOCTL_OUTPUT};
use erebor_hw::PAGE_SIZE;
use erebor_kernel::kernel::erebor_ioctl;
use erebor_kernel::syscall::nr;
use std::collections::BTreeMap;

/// Base user VA where common regions are attached, spaced 1 GiB apart.
pub const COMMON_BASE: u64 = 0x0000_0001_0000_0000;

/// Registry of already-created common regions, shared across sandboxes of
/// the same service (name → monitor region id). Owned by the service
/// provider's deployment tooling.
pub type CommonRegistry = BTreeMap<String, u32>;

/// A LibOS-visible common region.
#[derive(Debug, Clone)]
pub struct CommonHandle {
    /// Monitor region id.
    pub region: u32,
    /// Base user VA in this sandbox.
    pub base: u64,
    /// Pages in the physical window.
    pub pages: u64,
}

/// LibOS failure.
#[derive(Debug)]
pub enum LibOsError {
    /// Underlying platform/sandbox error.
    Sys(SysError),
    /// Confined heap exhausted.
    OutOfHeap,
    /// Unknown common region name.
    NoSuchCommon(String),
}

impl From<SysError> for LibOsError {
    fn from(e: SysError) -> LibOsError {
        LibOsError::Sys(e)
    }
}

impl core::fmt::Display for LibOsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LibOsError::Sys(e) => write!(f, "{e}"),
            LibOsError::OutOfHeap => write!(f, "confined heap exhausted"),
            LibOsError::NoSuchCommon(n) => write!(f, "no common region named {n}"),
        }
    }
}

impl std::error::Error for LibOsError {}

/// A service program the provider deploys into EREBOR-SANDBOX.
pub trait ServiceProgram {
    /// Program name (for tables/logs).
    fn name(&self) -> &str;

    /// The manifest the loader sets up.
    fn manifest(&self) -> Manifest;

    /// Pre-data initialization: populate common regions, warm caches.
    /// Runs while the sandbox is still in `Setup`.
    ///
    /// # Errors
    /// Propagates platform errors.
    fn init(&mut self, os: &mut LibOs, sys: &mut dyn Sys) -> Result<(), SysError> {
        let _ = (os, sys);
        Ok(())
    }

    /// Process one client request (after data install): the request bytes
    /// arrived through the monitor channel; the returned bytes go back the
    /// same way.
    ///
    /// # Errors
    /// Propagates platform errors.
    fn serve(
        &mut self,
        os: &mut LibOs,
        sys: &mut dyn Sys,
        request: &[u8],
    ) -> Result<Vec<u8>, SysError>;
}

/// How the LibOS exchanges client data.
#[derive(Debug)]
enum IoChannel {
    /// The monitor's reserved-fd ioctl channel (§6.3).
    Monitor {
        /// Staging buffer in confined memory.
        buf: u64,
        /// Buffer capacity.
        cap: u64,
    },
    /// The DebugFS-emulated channel of the LibOS-only baseline (artifact
    /// parity; unprotected).
    Debug {
        /// fd of `/sys/kernel/debug/encos-IO-emulate/in`.
        fd_in: u64,
        /// fd of `/sys/kernel/debug/encos-IO-emulate/out`.
        fd_out: u64,
        /// Staging buffer.
        buf: u64,
        /// Buffer capacity.
        cap: u64,
    },
}

/// The LibOS instance inside one sandbox.
#[derive(Debug)]
pub struct LibOs {
    /// The manifest it was loaded with.
    pub manifest: Manifest,
    /// Confined-heap allocator.
    pub heap: Heap,
    /// In-memory stateless FS.
    pub fs: MemFs,
    /// Green-thread pool.
    pub pool: ThreadPool,
    /// Attached common regions by name.
    pub commons: BTreeMap<String, CommonHandle>,
    io: IoChannel,
    fd_table: BTreeMap<u64, OpenFile>,
    next_fd: u64,
}

/// An open LibOS file (emulated entirely in userspace — no exits).
#[derive(Debug, Clone)]
struct OpenFile {
    path: String,
    offset: usize,
}

/// Default I/O staging buffer capacity (confined memory).
const IO_BUF_CAP: u64 = 256 * 1024;

impl LibOs {
    /// The loader (§7): declare all confined memory through the
    /// `/dev/erebor` driver, create/attach common regions, preload files,
    /// and pre-create the thread pool — everything that must happen before
    /// client data arrives.
    ///
    /// # Errors
    /// Propagates driver/EMC refusals.
    pub fn load(
        manifest: Manifest,
        registry: &mut CommonRegistry,
        sys: &mut dyn Sys,
        use_driver: bool,
    ) -> Result<LibOs, LibOsError> {
        let heap_pages = manifest.heap_pages + IO_BUF_CAP.div_ceil(PAGE_SIZE as u64);
        let mut commons = BTreeMap::new();
        let (heap_base, io) = if use_driver {
            // 1a. Declare and pin the confined heap through /dev/erebor.
            sys_ioctl(
                sys,
                erebor_ioctl::DECLARE_CONFINED,
                [CONFINED_HEAP_BASE, heap_pages, 0, 0],
            )?;
            // 2a. Common regions: create once per service, attach per
            // sandbox.
            for (i, spec) in manifest.commons.iter().enumerate() {
                let region = match registry.get(&spec.name) {
                    Some(id) => *id,
                    None => {
                        let id = sys_ioctl(
                            sys,
                            erebor_ioctl::CREATE_COMMON,
                            [spec.pages, spec.logical_bytes, 0, 0],
                        )?;
                        registry.insert(spec.name.clone(), id as u32);
                        id as u32
                    }
                };
                let base = COMMON_BASE + ((i as u64) << 30);
                sys_ioctl(
                    sys,
                    erebor_ioctl::ATTACH_COMMON,
                    [u64::from(region), base, 0, 0],
                )?;
                commons.insert(
                    spec.name.clone(),
                    CommonHandle {
                        region,
                        base,
                        pages: spec.pages,
                    },
                );
            }
            let io_buf = CONFINED_HEAP_BASE + manifest.heap_pages * PAGE_SIZE as u64;
            (
                CONFINED_HEAP_BASE,
                IoChannel::Monitor {
                    buf: io_buf,
                    cap: IO_BUF_CAP,
                },
            )
        } else {
            // LibOS-only baseline (normal CVM, §9): plain mmap windows and
            // the DebugFS-emulated data channel. "Shared" regions are
            // process-private — each instance replicates them (§9.2's
            // memory comparison).
            let heap_base = sys
                .syscall(nr::MMAP, [0, heap_pages * PAGE_SIZE as u64, 3, 0, 0, 0])
                .map_err(LibOsError::Sys)?;
            for spec in &manifest.commons {
                let base = sys
                    .syscall(nr::MMAP, [0, spec.pages * PAGE_SIZE as u64, 3, 0, 0, 0])
                    .map_err(LibOsError::Sys)?;
                commons.insert(
                    spec.name.clone(),
                    CommonHandle {
                        region: 0,
                        base,
                        pages: spec.pages,
                    },
                );
            }
            // Open the emulated channel endpoints.
            let scratch = sys
                .syscall(nr::MMAP, [0, PAGE_SIZE as u64, 3, 0, 0, 0])
                .map_err(LibOsError::Sys)?;
            let open_path = |sys: &mut dyn Sys, path: &str| -> Result<u64, LibOsError> {
                sys.write_mem(scratch, path.as_bytes())
                    .map_err(LibOsError::Sys)?;
                sys.syscall(nr::OPEN, [scratch, path.len() as u64, 0, 0, 0, 0])
                    .map_err(LibOsError::Sys)
            };
            let fd_in = open_path(sys, erebor_kernel::vfs::DEBUG_IN)?;
            let fd_out = open_path(sys, erebor_kernel::vfs::DEBUG_OUT)?;
            let io_buf = heap_base + manifest.heap_pages * PAGE_SIZE as u64;
            (
                heap_base,
                IoChannel::Debug {
                    fd_in,
                    fd_out,
                    buf: io_buf,
                    cap: IO_BUF_CAP,
                },
            )
        };
        let mut heap = Heap::new(heap_base, manifest.heap_pages);

        // 3. Preload files.
        let mut fs = MemFs::new();
        for (path, contents) in &manifest.preload_files {
            sys.compute(contents.len() as u64 / 8 + 1)
                .map_err(LibOsError::Sys)?;
            fs.preload(path, contents.clone()).ok();
        }

        // 4. Pre-create the thread pool (clone syscalls, init-time only).
        for _ in 1..manifest.max_threads {
            sys.syscall(nr::CLONE, [0; 6]).map_err(LibOsError::Sys)?;
        }
        let pool = ThreadPool::new(manifest.max_threads);

        // Touch the heap pages once: confined memory is pinned and mapped
        // eagerly (Gramine also pre-allocates), so this is part of the
        // paper's *initialization* overhead (Table 6), not the runtime path.
        let mut page = heap_base;
        let end = heap_base + heap_pages * PAGE_SIZE as u64;
        while page < end {
            sys.touch(page, true).map_err(LibOsError::Sys)?;
            page += PAGE_SIZE as u64;
        }

        let _ = &mut heap;
        Ok(LibOs {
            manifest,
            heap,
            fs,
            pool,
            commons,
            io,
            fd_table: BTreeMap::new(),
            next_fd: 3,
        })
    }

    /// Base user VA of the heap window.
    #[must_use]
    pub fn heap_base(&self) -> u64 {
        self.heap.base()
    }

    // ----- POSIX-style file API (Gramine-class emulation, §6.2) --------
    //
    // Opens, reads and writes are served from the in-memory stateless FS
    // without leaving the sandbox; a small compute charge models the
    // userspace emulation work.

    /// `open(2)`: open a preloaded or temporary file.
    ///
    /// # Errors
    /// [`LibOsError`] if the path does not exist (and `create` is false).
    pub fn open(&mut self, sys: &mut dyn Sys, path: &str, create: bool) -> Result<u64, LibOsError> {
        sys.compute(120).map_err(LibOsError::Sys)?;
        if self.fs.read(path).is_err() {
            if !create {
                return Err(LibOsError::Sys(SysError::Errno(-2)));
            }
            self.fs.write_temp(path, Vec::new());
        }
        let fd = self.next_fd;
        self.next_fd += 1;
        self.fd_table.insert(
            fd,
            OpenFile {
                path: path.to_string(),
                offset: 0,
            },
        );
        Ok(fd)
    }

    /// `read(2)`: read from the file cursor into `buf`; returns bytes read.
    ///
    /// # Errors
    /// [`LibOsError`] on bad descriptors.
    pub fn read(
        &mut self,
        sys: &mut dyn Sys,
        fd: u64,
        buf: &mut [u8],
    ) -> Result<usize, LibOsError> {
        sys.compute(60 + buf.len() as u64 / 8)
            .map_err(LibOsError::Sys)?;
        let file = self
            .fd_table
            .get_mut(&fd)
            .ok_or(LibOsError::Sys(SysError::Errno(-9)))?;
        let contents = self
            .fs
            .read(&file.path)
            .map_err(|_| LibOsError::Sys(SysError::Errno(-2)))?;
        let start = file.offset.min(contents.len());
        let n = buf.len().min(contents.len() - start);
        buf[..n].copy_from_slice(&contents[start..start + n]);
        file.offset += n;
        Ok(n)
    }

    /// `write(2)`: append/overwrite at the cursor (temporary files only —
    /// the FS is stateless after preload, §6.2).
    ///
    /// # Errors
    /// [`LibOsError`] on bad descriptors.
    pub fn write(&mut self, sys: &mut dyn Sys, fd: u64, data: &[u8]) -> Result<usize, LibOsError> {
        sys.compute(60 + data.len() as u64 / 8)
            .map_err(LibOsError::Sys)?;
        let file = self
            .fd_table
            .get_mut(&fd)
            .ok_or(LibOsError::Sys(SysError::Errno(-9)))?;
        let mut contents = self
            .fs
            .read(&file.path)
            .map(<[u8]>::to_vec)
            .unwrap_or_default();
        if contents.len() < file.offset + data.len() {
            contents.resize(file.offset + data.len(), 0);
        }
        contents[file.offset..file.offset + data.len()].copy_from_slice(data);
        file.offset += data.len();
        self.fs.write_temp(&file.path, contents);
        Ok(data.len())
    }

    /// `lseek(2)`: set the cursor.
    ///
    /// # Errors
    /// [`LibOsError`] on bad descriptors.
    pub fn lseek(&mut self, fd: u64, offset: usize) -> Result<(), LibOsError> {
        self.fd_table
            .get_mut(&fd)
            .ok_or(LibOsError::Sys(SysError::Errno(-9)))?
            .offset = offset;
        Ok(())
    }

    /// `close(2)`.
    ///
    /// # Errors
    /// [`LibOsError`] on bad descriptors.
    pub fn close(&mut self, fd: u64) -> Result<(), LibOsError> {
        self.fd_table
            .remove(&fd)
            .map(|_| ())
            .ok_or(LibOsError::Sys(SysError::Errno(-9)))
    }

    /// Allocate confined memory.
    ///
    /// # Errors
    /// [`LibOsError::OutOfHeap`].
    pub fn malloc(&mut self, len: u64) -> Result<u64, LibOsError> {
        self.heap.alloc(len).map_err(|_| LibOsError::OutOfHeap)
    }

    /// Free confined memory.
    pub fn mfree(&mut self, va: u64, len: u64) {
        self.heap.free(va, len);
    }

    /// Handle to a common region.
    ///
    /// # Errors
    /// [`LibOsError::NoSuchCommon`].
    pub fn common(&self, name: &str) -> Result<CommonHandle, LibOsError> {
        self.commons
            .get(name)
            .cloned()
            .ok_or_else(|| LibOsError::NoSuchCommon(name.to_string()))
    }

    /// Populate a common region before sealing: writes a deterministic
    /// pattern across every page (model weights / database load). Each
    /// first-touch demand-maps the page through a `#PF` exit.
    ///
    /// # Errors
    /// Platform errors (e.g. writes after seal kill the sandbox).
    pub fn populate_common(&mut self, sys: &mut dyn Sys, name: &str) -> Result<(), LibOsError> {
        let h = self.common(name)?;
        for p in 0..h.pages {
            let va = h.base + p * PAGE_SIZE as u64;
            let stamp = (p ^ 0x5eed).to_le_bytes();
            sys.write_mem(va, &stamp).map_err(LibOsError::Sys)?;
            // Deserialization/parse work per page of the shared instance
            // (model weights, database records) — identical natively.
            sys.compute(3_500).map_err(LibOsError::Sys)?;
        }
        Ok(())
    }

    /// Read (and fault in) one common page; returns its 8-byte stamp.
    ///
    /// # Errors
    /// Platform errors.
    pub fn read_common_page(
        &mut self,
        sys: &mut dyn Sys,
        name: &str,
        page: u64,
    ) -> Result<[u8; 8], LibOsError> {
        let h = self.common(name)?;
        let va = h.base + (page % h.pages) * PAGE_SIZE as u64;
        let mut buf = [0u8; 8];
        sys.read_mem(va, &mut buf).map_err(LibOsError::Sys)?;
        Ok(buf)
    }

    /// Receive the next client request through the monitor channel
    /// (the `INPUT` ioctl on the reserved fd, §6.3).
    ///
    /// # Errors
    /// Platform errors / kill.
    pub fn input(&mut self, sys: &mut dyn Sys) -> Result<Vec<u8>, LibOsError> {
        let (buf, n) = match self.io {
            IoChannel::Monitor { buf, cap } => {
                let n = sys
                    .syscall(nr::IOCTL, [EREBOR_IO_FD, IOCTL_INPUT, buf, cap, 0, 0])
                    .map_err(LibOsError::Sys)?;
                (buf, n)
            }
            IoChannel::Debug {
                fd_in, buf, cap, ..
            } => {
                let n = sys
                    .syscall(nr::READ, [fd_in, buf, cap, 0, 0, 0])
                    .map_err(LibOsError::Sys)?;
                (buf, n)
            }
        };
        let mut data = vec![0u8; n as usize];
        sys.read_mem(buf, &mut data).map_err(LibOsError::Sys)?;
        Ok(data)
    }

    /// Send result bytes back through the monitor channel (the `OUTPUT`
    /// ioctl: the monitor pads, seals and queues them for the proxy).
    ///
    /// # Errors
    /// Platform errors / kill.
    pub fn output(&mut self, sys: &mut dyn Sys, data: &[u8]) -> Result<(), LibOsError> {
        match self.io {
            IoChannel::Monitor { buf, cap } => {
                let len = (data.len() as u64).min(cap);
                sys.write_mem(buf, &data[..len as usize])
                    .map_err(LibOsError::Sys)?;
                sys.syscall(nr::IOCTL, [EREBOR_IO_FD, IOCTL_OUTPUT, buf, len, 0, 0])
                    .map_err(LibOsError::Sys)?;
            }
            IoChannel::Debug {
                fd_out, buf, cap, ..
            } => {
                let len = (data.len() as u64).min(cap);
                sys.write_mem(buf, &data[..len as usize])
                    .map_err(LibOsError::Sys)?;
                sys.syscall(nr::WRITE, [fd_out, buf, len, 0, 0, 0])
                    .map_err(LibOsError::Sys)?;
            }
        }
        Ok(())
    }
}

/// Serialise a [`CommonRegistry`] for migration. The registry is the
/// service provider's name → region-id map; the destination must keep it
/// so post-migration sandboxes attach the *existing* regions instead of
/// re-creating them.
#[must_use]
pub fn export_registry(registry: &CommonRegistry) -> Vec<u8> {
    let mut w = erebor_wire::WireWriter::new();
    w.seq(registry.len());
    for (name, region) in registry {
        w.str(name);
        w.u32(*region);
    }
    w.finish()
}

/// Rebuild a [`CommonRegistry`] from [`export_registry`] bytes.
///
/// # Errors
/// [`erebor_wire::WireError`] on truncation, duplicate names, or trailing
/// bytes.
pub fn import_registry(bytes: &[u8]) -> Result<CommonRegistry, erebor_wire::WireError> {
    let mut r = erebor_wire::WireReader::new(bytes);
    let n = r.seq(5)?;
    let mut registry = CommonRegistry::new();
    for _ in 0..n {
        let name = r.str()?.to_string();
        let region = r.u32()?;
        if registry.insert(name, region).is_some() {
            return Err(erebor_wire::WireError::BadValue {
                what: "duplicate registry name",
            });
        }
    }
    r.finish()?;
    Ok(registry)
}

fn sys_ioctl(sys: &mut dyn Sys, req: u64, extra: [u64; 4]) -> Result<u64, LibOsError> {
    sys.syscall(
        nr::IOCTL,
        [EREBOR_IO_FD, req, extra[0], extra[1], extra[2], extra[3]],
    )
    .map_err(LibOsError::Sys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_base_spacing() {
        // Regions must not overlap at 1 GiB spacing for reasonable sizes.
        let r0 = COMMON_BASE;
        let r1 = COMMON_BASE + (1u64 << 30);
        assert!(r1 - r0 >= (1 << 30));
    }

    #[test]
    fn registry_roundtrips_byte_exact() -> Result<(), erebor_wire::WireError> {
        let mut reg = CommonRegistry::new();
        reg.insert("model".to_string(), 1);
        reg.insert("embeddings".to_string(), 2);
        let bytes = export_registry(&reg);
        let back = import_registry(&bytes)?;
        assert_eq!(back, reg);
        assert_eq!(export_registry(&back), bytes);
        for cut in 0..bytes.len() {
            assert!(import_registry(&bytes[..cut]).is_err());
        }
        Ok(())
    }
}
