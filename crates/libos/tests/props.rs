//! Property-based tests for the LibOS: the confined-heap allocator and the
//! stateless filesystem.

use erebor_libos::fs::MemFs;
use erebor_libos::heap::{Heap, CONFINED_HEAP_BASE};
use erebor_testkit::collection;
use erebor_testkit::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Alloc(u64),
    FreeNth(usize),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    collection::vec(
        prop_oneof![
            (1u64..5000).prop_map(Op::Alloc),
            (0usize..32).prop_map(Op::FreeNth),
        ],
        0..128,
    )
}

proptest! {
    #[test]
    fn heap_allocations_never_overlap_and_stay_in_bounds(ops in arb_ops()) {
        let pages = 64u64;
        let mut heap = Heap::new(CONFINED_HEAP_BASE, pages);
        let cap = heap.capacity();
        let mut live: Vec<(u64, u64)> = Vec::new();
        for op in ops {
            match op {
                Op::Alloc(len) => {
                    if let Ok(va) = heap.alloc(len) {
                        let aligned = len.max(1).next_multiple_of(16);
                        prop_assert!(va >= CONFINED_HEAP_BASE);
                        prop_assert!(va + aligned <= CONFINED_HEAP_BASE + cap);
                        for (ova, olen) in &live {
                            prop_assert!(
                                va + aligned <= *ova || va >= ova + olen,
                                "overlap: [{va:#x}+{aligned}] vs [{ova:#x}+{olen}]"
                            );
                        }
                        live.push((va, aligned));
                    }
                }
                Op::FreeNth(i) => {
                    if !live.is_empty() {
                        let (va, len) = live.swap_remove(i % live.len());
                        heap.free(va, len);
                    }
                }
            }
        }
        // Conservation: free + live == capacity.
        let live_total: u64 = live.iter().map(|(_, l)| l).sum();
        prop_assert_eq!(heap.free_bytes() + live_total, cap);
    }

    #[test]
    fn heap_full_free_restores_one_block(lens in collection::vec(1u64..3000, 1..32)) {
        let mut heap = Heap::new(CONFINED_HEAP_BASE, 64);
        let mut live = Vec::new();
        for len in &lens {
            if let Ok(va) = heap.alloc(*len) {
                live.push((va, len.max(&1).next_multiple_of(16)));
            }
        }
        for (va, len) in live {
            heap.free(va, len);
        }
        prop_assert_eq!(heap.free_bytes(), heap.capacity());
        // And the next max-size alloc succeeds (no fragmentation left).
        prop_assert!(heap.alloc(heap.capacity()).is_ok());
    }

    #[test]
    fn memfs_temp_shadows_and_restores(
        path in "[a-z/]{1,16}",
        orig in collection::vec(any::<u8>(), 0..128),
        shadow in collection::vec(any::<u8>(), 0..128),
    ) {
        let mut fs = MemFs::new();
        fs.preload(&path, orig.clone()).unwrap();
        fs.seal();
        fs.write_temp(&path, shadow.clone());
        prop_assert_eq!(fs.read(&path).unwrap(), &shadow[..]);
        fs.clear_temp();
        prop_assert_eq!(fs.read(&path).unwrap(), &orig[..]);
    }

    #[test]
    fn memfs_temp_accounting(
        files in collection::btree_map(
            "[a-z]{1,8}",
            collection::vec(any::<u8>(), 0..64),
            0..16,
        ),
    ) {
        let mut fs = MemFs::new();
        fs.seal();
        let mut expect = 0u64;
        for (path, contents) in &files {
            expect += contents.len() as u64;
            fs.write_temp(path, contents.clone());
        }
        prop_assert_eq!(fs.temp_bytes(), expect);
    }
}
