//! TLB transparency property: for any page tables, register states, and
//! interleaving of accesses with register writes and invalidations, a
//! machine with the TLB enabled and one with it disabled produce the same
//! verdict (allow, or the exact same fault) for every access, and end with
//! byte-identical page tables (A/D bits included).
//!
//! Software PTE stores without invalidation are deliberately *excluded*
//! from the op alphabet: staleness after a raw PTE write is architectural
//! behaviour the TLB is supposed to exhibit (see the shootdown tests), not
//! a divergence bug.
//!
//! Reproducible via `EREBOR_PT_SEED` like every other property test.

use erebor_hw::cpu::{Domain, Machine};
use erebor_hw::fault::AccessKind;
use erebor_hw::paging::{self, Pte, PteFlags};
use erebor_hw::regs::{Cr0, Cr4, Msr, PkrsPerms, Rflags};
use erebor_hw::{CpuMode, VirtAddr};
use erebor_testkit::collection;
use erebor_testkit::prelude::*;

/// The fixed VA pool ops index into: two user-range and two kernel-range
/// pages that get mapped with random flags, plus two that stay unmapped.
const VAS: [u64; 6] = [
    0x40_0000,
    0x41_0000,
    0xffff_8000_0000_0000,
    0xffff_8000_0004_0000,
    0x7f00_0000,
    0xffff_8000_0100_0000,
];

fn arb_flags() -> impl Strategy<Value = PteFlags> {
    (
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        0u8..16,
    )
        .prop_map(|(writable, user, dirty, nx, pkey)| PteFlags {
            present: true,
            writable,
            user,
            accessed: false,
            dirty,
            nx,
            pkey,
        })
}

fn build(flags: &[PteFlags]) -> Machine {
    let mut m = Machine::new(2, 32 * 1024 * 1024);
    let root = m.mem.alloc_frame().unwrap();
    for (va, f) in VAS.iter().zip(flags) {
        let frame = m.mem.alloc_frame().unwrap();
        paging::map_raw(
            &mut m.mem,
            root,
            VirtAddr(*va),
            Pte::encode(frame, *f),
            paging::intermediate_for(*f),
        )
        .unwrap();
    }
    for c in &mut m.cpus {
        c.cr3 = root;
        c.cr0 = Cr0(Cr0::WP | Cr0::PG);
        c.cr4 = Cr4(Cr4::SMEP | Cr4::SMAP | Cr4::PKS);
        c.domain = Domain::Monitor;
    }
    m.allow_sensitive(Domain::Monitor);
    m
}

/// Apply one op to a machine; returns the access verdict if the op was an
/// access (faults compare with `==`, so reasons must match exactly).
fn step(m: &mut Machine, op: (u8, u8, u8, u32)) -> Option<Result<(), erebor_hw::Fault>> {
    let (sel, va_idx, kind_idx, seed) = op;
    let va = VirtAddr(VAS[va_idx as usize % VAS.len()] + u64::from(seed) % 4096);
    let kind = [AccessKind::Read, AccessKind::Write, AccessKind::Execute][kind_idx as usize % 3];
    match sel % 8 {
        0 | 1 | 2 => return Some(m.probe(0, va, kind)),
        3 => {
            // Random PKRS — only meaningful (and legal) in supervisor mode.
            if m.cpus[0].mode == CpuMode::Supervisor {
                m.wrmsr(0, Msr::Pkrs, u64::from(seed)).unwrap();
            }
        }
        4 => {
            let wp = m.cpus[0].cr0 .0 ^ Cr0::WP;
            m.cpus[0].cr0 = Cr0(wp);
        }
        5 => {
            let bits = [Cr4::SMEP, Cr4::SMAP, Cr4::PKS][seed as usize % 3];
            m.cpus[0].cr4 = Cr4(m.cpus[0].cr4 .0 ^ bits);
        }
        6 => {
            let c = &mut m.cpus[0];
            match seed % 3 {
                0 => c.ctx.rflags ^= Rflags::AC,
                1 => {
                    c.mode = if c.mode == CpuMode::User {
                        CpuMode::Supervisor
                    } else {
                        CpuMode::User
                    }
                }
                _ => {
                    // Reload CR3 (flushes the TLB when enabled).
                    if c.mode == CpuMode::Supervisor {
                        let root = c.cr3;
                        m.write_cr3(0, root).unwrap();
                    }
                }
            }
        }
        _ => {
            if m.cpus[0].mode == CpuMode::Supervisor {
                m.invalidate_page(0, va).unwrap();
            }
        }
    }
    None
}

proptest! {
    #[test]
    fn tlb_on_and_off_agree_on_every_verdict(
        flags in collection::vec(arb_flags(), 4..=4),
        ops in collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u32>()), 1..80),
    ) {
        let mut on = build(&flags);
        let mut off = build(&flags);
        off.tlb_enabled = false;
        prop_assert!(on.tlb_enabled);
        let mut allowed = 0u64;
        for (i, op) in ops.iter().enumerate() {
            let a = step(&mut on, *op);
            let b = step(&mut off, *op);
            if matches!(a, Some(Ok(()))) {
                allowed += 1;
            }
            prop_assert_eq!(a, b, "verdict diverged at op {} ({:?})", i, op);
        }
        // Page tables (A/D bits included) must end byte-identical: the
        // TLB's dirty-promotion walk is the only path that may skip table
        // stores, and it must not lose any.
        let root = on.cpus[0].cr3;
        for va in VAS {
            let l_on = paging::lookup_raw(&on.mem, root, VirtAddr(va)).unwrap();
            let l_off = paging::lookup_raw(&off.mem, root, VirtAddr(va)).unwrap();
            prop_assert_eq!(l_on, l_off, "PTE state diverged at {va:#x}");
        }
        // Sanity: every allowed access went through the TLB path on the
        // enabled machine (hit or counted miss); the disabled one never
        // touched it.
        prop_assert_eq!(on.stats.tlb_hits + on.stats.tlb_misses, allowed);
        prop_assert_eq!(off.stats.tlb_hits + off.stats.tlb_misses, 0);
    }
}
