//! Property-based tests for the hardware substrate: paging encode/decode,
//! physical-memory round trips, allocator invariants, the
//! sensitive-instruction scanner, and MMU permission monotonicity.

use erebor_hw::fault::AccessKind;
use erebor_hw::insn;
use erebor_hw::mmu::{self, MmuEnv};
use erebor_hw::paging::{self, Pte, PteFlags};
use erebor_hw::phys::{PhysAddr, PhysMemory};
use erebor_hw::regs::{Cr0, Cr4, PkrsPerms, Rflags};
use erebor_hw::{CpuMode, Frame, VirtAddr, PAGE_SIZE};
use erebor_testkit::collection;
use erebor_testkit::prelude::*;

fn arb_flags() -> impl Strategy<Value = PteFlags> {
    (
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        0u8..16,
    )
        .prop_map(|(present, writable, user, dirty, nx, pkey)| PteFlags {
            present,
            writable,
            user,
            accessed: false,
            dirty,
            nx,
            pkey,
        })
}

fn arb_canonical_user_va() -> impl Strategy<Value = VirtAddr> {
    (0x40_0000u64..0x0000_7fff_ffff_f000).prop_map(|v| VirtAddr(v & !0xfff))
}

proptest! {
    // Frame numbers top out at 2^28 (1 TiB of DRAM): PA bits 51:40 are
    // the TME-MK key-ID field, the same PA-space trade real MKTME makes.
    #[test]
    fn pte_encode_decode_roundtrip(frame in 0u64..(1 << 28), flags in arb_flags(), keyid in 0u16..4096) {
        let pte = Pte::encode(Frame(frame), flags).with_keyid(keyid);
        prop_assert_eq!(pte.frame(), Frame(frame));
        prop_assert_eq!(pte.flags(), flags);
        prop_assert_eq!(pte.keyid(), keyid);
    }

    #[test]
    fn pte_read_only_preserves_everything_but_w(frame in 0u64..(1 << 28), flags in arb_flags(), keyid in 0u16..4096) {
        let pte = Pte::encode(Frame(frame), flags).with_keyid(keyid).read_only();
        prop_assert!(!pte.writable());
        prop_assert_eq!(pte.frame(), Frame(frame));
        prop_assert_eq!(pte.nx(), flags.nx);
        prop_assert_eq!(pte.pkey(), flags.pkey);
        prop_assert_eq!(pte.user(), flags.user);
        prop_assert_eq!(pte.keyid(), keyid);
    }

    #[test]
    fn phys_write_read_roundtrip(
        offset in 0u64..(1 << 20),
        data in collection::vec(any::<u8>(), 1..2000),
    ) {
        let mut mem = PhysMemory::new(4 << 20);
        mem.write(PhysAddr(offset), &data).unwrap();
        let mut back = vec![0u8; data.len()];
        mem.read(PhysAddr(offset), &mut back).unwrap();
        prop_assert_eq!(back, data);
    }

    #[test]
    fn allocator_never_hands_out_duplicates(n in 1usize..200) {
        let mut mem = PhysMemory::new(1 << 20); // 256 frames
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..n {
            match mem.alloc_frame() {
                Ok(f) => prop_assert!(seen.insert(f.0), "duplicate frame {f:?}"),
                Err(_) => break,
            }
        }
    }

    #[test]
    fn allocator_free_makes_reusable(ops in collection::vec(any::<bool>(), 1..300)) {
        let mut mem = PhysMemory::new(64 * PAGE_SIZE as u64);
        let mut live: Vec<Frame> = Vec::new();
        for alloc in ops {
            if alloc || live.is_empty() {
                if let Ok(f) = mem.alloc_frame() {
                    prop_assert!(!live.contains(&f));
                    live.push(f);
                }
            } else {
                let f = live.swap_remove(live.len() / 2);
                mem.free_frame(f).unwrap();
                prop_assert!(!mem.is_allocated(f));
            }
        }
        prop_assert_eq!(mem.allocated_frames(), live.len() as u64);
    }

    #[test]
    fn neutralize_always_converges_clean(bytes in collection::vec(any::<u8>(), 0..4096)) {
        let mut b = bytes;
        insn::neutralize(&mut b);
        prop_assert!(insn::scan(&b).is_empty());
    }

    #[test]
    fn scanner_finds_injections_anywhere(
        filler in collection::vec(any::<u8>(), 64..1024),
        class_idx in 0usize..5,
        pos_frac in 0.0f64..1.0,
    ) {
        let class = insn::SensitiveClass::ALL[class_idx];
        let mut bytes = filler;
        insn::neutralize(&mut bytes);
        let enc = insn::encode(class);
        let pos = ((bytes.len() - enc.len()) as f64 * pos_frac) as usize;
        bytes[pos..pos + enc.len()].copy_from_slice(&enc);
        let findings = insn::scan(&bytes);
        prop_assert!(
            findings.iter().any(|f| f.offset == pos && f.class == class),
            "injected {class:?} at {pos} not found"
        );
    }

    #[test]
    fn mapped_translation_resolves_to_target(
        va in arb_canonical_user_va(),
        offset in 0u64..PAGE_SIZE as u64,
    ) {
        let mut mem = PhysMemory::new(16 << 20);
        let root = mem.alloc_frame().unwrap();
        let target = mem.alloc_frame().unwrap();
        let flags = PteFlags::user_rw();
        paging::map_raw(&mut mem, root, va, Pte::encode(target, flags), paging::intermediate_for(flags)).unwrap();
        let env = MmuEnv {
            root,
            cr0: Cr0(Cr0::WP | Cr0::PG),
            cr4: Cr4(Cr4::SMEP | Cr4::SMAP | Cr4::PKS),
            mode: CpuMode::User,
            rflags: Rflags(0),
            pkrs: PkrsPerms::GRANT_ALL,
        };
        let t = mmu::translate(&mut mem, &env, va.add(offset), AccessKind::Read).unwrap();
        prop_assert_eq!(t.pa.0, target.base().0 + offset);
    }

    #[test]
    fn permissions_monotone_under_pkrs_restriction(
        va in arb_canonical_user_va(),
        key in 0u8..16,
    ) {
        // Any access allowed under a restricted PKRS is also allowed under
        // GRANT_ALL (restriction never *grants*).
        let kva = VirtAddr(0xffff_8000_0000_0000 | (va.0 & 0x0000_000f_ffff_f000));
        let mut mem = PhysMemory::new(16 << 20);
        let root = mem.alloc_frame().unwrap();
        let target = mem.alloc_frame().unwrap();
        let flags = PteFlags::kernel_rw(key);
        paging::map_raw(&mut mem, root, kva, Pte::encode(target, flags), paging::intermediate_for(flags)).unwrap();
        let mk_env = |pkrs: PkrsPerms| MmuEnv {
            root,
            cr0: Cr0(Cr0::WP | Cr0::PG),
            cr4: Cr4(Cr4::PKS),
            mode: CpuMode::Supervisor,
            rflags: Rflags(0),
            pkrs,
        };
        for access in [AccessKind::Read, AccessKind::Write] {
            let restricted = mk_env(PkrsPerms::GRANT_ALL.with_access_disabled(key));
            let granted = mk_env(PkrsPerms::GRANT_ALL);
            let r = mmu::translate(&mut mem, &restricted.clone(), kva, access).is_ok();
            let g = mmu::translate(&mut mem, &granted, kva, access).is_ok();
            prop_assert!(!r || g, "restricted allowed but granted denied?");
            prop_assert!(!r, "AD key must deny data access");
        }
    }

    #[test]
    fn collect_ptps_matches_mapping_count(
        vas in collection::btree_set(arb_canonical_user_va(), 1..32),
    ) {
        let mut mem = PhysMemory::new(64 << 20);
        let root = mem.alloc_frame().unwrap();
        let mut data_frames = std::collections::BTreeSet::new();
        for va in &vas {
            let f = mem.alloc_frame().unwrap();
            data_frames.insert(f);
            let flags = PteFlags::user_ro();
            paging::map_raw(&mut mem, root, *va, Pte::encode(f, flags), paging::intermediate_for(flags)).unwrap();
        }
        let ptps = paging::collect_ptps(&mem, root).unwrap();
        // No data frame is ever classified as a PTP, and the root is.
        prop_assert!(ptps.contains(&root));
        for f in &data_frames {
            prop_assert!(!ptps.contains(f));
        }
        // Every mapping still resolves.
        for va in &vas {
            prop_assert!(paging::lookup_raw(&mem, root, *va).unwrap().is_some());
        }
    }
}
