//! The interrupt descriptor table.
//!
//! The IDT lives in simulated guest memory: each of the 256 vectors is a
//! 16-byte entry whose first 8 bytes are the handler virtual address.
//! `lidt` (a sensitive instruction, Table 2) points the CPU at the table;
//! hardware *delivery* reads entries with physical accesses that bypass
//! permission checks, so protecting the IDT reduces to (a) controlling who
//! may execute `lidt` and (b) mapping the table's pages read-only to the
//! kernel — exactly the monitor's policy in §5.2/§6.2.

use crate::fault::Fault;
use crate::paging::lookup_raw;
use crate::phys::{Frame, PhysAddr, PhysMemory};
use crate::VirtAddr;

/// Bytes per IDT entry.
pub const ENTRY_SIZE: u64 = 16;
/// Number of vectors.
pub const VECTORS: usize = 256;

/// Well-known vectors used by the platform.
pub mod vector {
    /// Page fault.
    pub const PF: u8 = 14;
    /// General protection.
    pub const GP: u8 = 13;
    /// Control protection (CET).
    pub const CP: u8 = 21;
    /// Virtualization exception (TDX).
    pub const VE: u8 = 20;
    /// Invalid opcode.
    pub const UD: u8 = 6;
    /// APIC timer interrupt.
    pub const TIMER: u8 = 32;
    /// Inter-processor interrupt used by the OS.
    pub const IPI: u8 = 33;
    /// External (virtio) device interrupt.
    pub const DEVICE: u8 = 34;
}

/// The IDTR register: base virtual address of the in-memory table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Idtr {
    /// Table base (virtual).
    pub base: VirtAddr,
}

/// Write the handler address for `vec` into the in-memory IDT.
///
/// This is a *software* store in real hardware; callers that model software
/// writes must instead store through the MMU-checked CPU path. This raw
/// helper exists for the monitor's boot-time construction, before the table
/// is sealed read-only.
///
/// # Errors
/// Fails if the table's page is unmapped in `root`.
pub fn write_entry_raw(
    mem: &mut PhysMemory,
    root: Frame,
    idtr: Idtr,
    vec: u8,
    handler: VirtAddr,
) -> Result<(), Fault> {
    let slot = entry_pa(mem, root, idtr, vec)?;
    mem.write_u64(slot, handler.0)
        .map_err(|_| Fault::Unrecoverable("IDT write left DRAM"))?;
    Ok(())
}

/// Hardware interrupt delivery: read the handler address for `vec`.
///
/// Bypasses permission checks (hardware walk), but the table must be
/// *mapped* — an unmapped IDT is an unrecoverable condition.
///
/// # Errors
/// [`Fault::Unrecoverable`] if the IDT page is not mapped.
pub fn read_entry(
    mem: &mut PhysMemory,
    root: Frame,
    idtr: Idtr,
    vec: u8,
) -> Result<VirtAddr, Fault> {
    let slot = entry_pa(mem, root, idtr, vec)?;
    let h = mem
        .read_u64(slot)
        .map_err(|_| Fault::Unrecoverable("IDT read left DRAM"))?;
    Ok(VirtAddr(h))
}

fn entry_pa(mem: &PhysMemory, root: Frame, idtr: Idtr, vec: u8) -> Result<PhysAddr, Fault> {
    let va = idtr.base.add(u64::from(vec) * ENTRY_SIZE);
    let leaf = lookup_raw(mem, root, va)
        .map_err(|_| Fault::Unrecoverable("IDT walk left DRAM"))?
        .ok_or(Fault::Unrecoverable("IDT page not mapped"))?;
    Ok(PhysAddr(leaf.frame().base().0 + va.page_offset()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paging::{map_raw, Pte, PteFlags};

    #[test]
    fn write_then_deliver() {
        let mut mem = PhysMemory::new(16 * 1024 * 1024);
        let root = mem.alloc_frame().unwrap();
        let idt_frame = mem.alloc_frame().unwrap();
        let base = VirtAddr(0xffff_8000_0010_0000);
        map_raw(
            &mut mem,
            root,
            base,
            Pte::encode(idt_frame, PteFlags::kernel_ro(0)),
            PteFlags::kernel_rw(0),
        )
        .unwrap();
        let idtr = Idtr { base };
        write_entry_raw(
            &mut mem,
            root,
            idtr,
            vector::PF,
            VirtAddr(0xffff_8000_0000_4242),
        )
        .unwrap();
        let h = read_entry(&mut mem, root, idtr, vector::PF).unwrap();
        assert_eq!(h, VirtAddr(0xffff_8000_0000_4242));
        // Unwritten vectors read as zero.
        assert_eq!(
            read_entry(&mut mem, root, idtr, vector::TIMER).unwrap(),
            VirtAddr(0)
        );
    }

    #[test]
    fn unmapped_idt_is_unrecoverable() {
        let mut mem = PhysMemory::new(16 * 1024 * 1024);
        let root = mem.alloc_frame().unwrap();
        let idtr = Idtr {
            base: VirtAddr(0xffff_8000_0010_0000),
        };
        assert!(matches!(
            read_entry(&mut mem, root, idtr, 0),
            Err(Fault::Unrecoverable(_))
        ));
    }
}
