//! Hardware fault and exception types.
//!
//! All simulated hardware checks report failures through [`Fault`]. Faults
//! carry enough structure for upper layers (monitor / kernel) to dispatch on
//! vector and for tests to assert on the precise denial reason.

use crate::VirtAddr;

/// The kind of memory access that was attempted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Execute,
}

impl AccessKind {
    /// Whether this access is a data access (read or write).
    #[must_use]
    pub fn is_data(self) -> bool {
        matches!(self, AccessKind::Read | AccessKind::Write)
    }
}

/// The precise reason a page-level permission check failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PfReason {
    /// A page-table entry on the walk path was not present.
    NotPresent,
    /// Write to a non-writable mapping (leaf or intermediate `RW=0`).
    NotWritable,
    /// Instruction fetch from a no-execute mapping.
    NoExecute,
    /// User-mode access to a supervisor mapping.
    UserAccessToSupervisor,
    /// Supervisor instruction fetch from a user page while `CR4.SMEP` set.
    Smep,
    /// Supervisor data access to a user page while `CR4.SMAP` set and
    /// `RFLAGS.AC` clear.
    Smap,
    /// Supervisor protection-key *access-disable* denial (PKS).
    PksAccessDisabled,
    /// Supervisor protection-key *write-disable* denial (PKS).
    PksWriteDisabled,
    /// TME-MK keyed-memory denial: the mapping's key-ID does not match
    /// the key programmed for the target frame (the simulated analogue
    /// of decrypting under the wrong tweak key).
    KeyMismatch,
    /// Non-canonical virtual address.
    NonCanonical,
}

/// A simulated hardware fault / exception.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// `#PF` — page fault, with faulting address, access kind and reason.
    PageFault {
        /// Faulting virtual address.
        va: VirtAddr,
        /// The access that faulted.
        access: AccessKind,
        /// Why the hardware denied it.
        reason: PfReason,
    },
    /// `#GP` — general protection fault (privileged operation from the wrong
    /// mode, malformed descriptor, ...). Carries a static description.
    GeneralProtection(&'static str),
    /// `#CP` — control protection fault raised by CET (missing `endbr64` at
    /// an indirect-branch target, or a shadow-stack return mismatch).
    ControlProtection(CpReason),
    /// `#UD` — invalid/undefined opcode. In this model it is raised when a
    /// code domain attempts to execute an instruction its verified image
    /// does not contain.
    UndefinedInstruction(&'static str),
    /// `#VE` — virtualization exception injected by the TDX module for
    /// synchronous guest exits (see `erebor-tdx`).
    VirtualizationException(VeReason),
    /// `#DF`-like unrecoverable condition in the simulator.
    Unrecoverable(&'static str),
}

/// Why CET raised `#CP`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpReason {
    /// Indirect branch landed on an instruction that is not `endbr64`.
    MissingEndbranch,
    /// `ret` target did not match the shadow-stack record.
    ShadowStackMismatch,
    /// Shadow-stack token was busy (already active on another core).
    TokenBusy,
}

/// Why the TDX module injected `#VE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VeReason {
    /// Guest executed `cpuid`; the host must emulate it.
    Cpuid,
    /// Guest accessed an MSR the host emulates.
    MsrAccess,
    /// Guest touched an un-accepted / host-managed GPA.
    EptViolation,
    /// Guest executed an I/O or MMIO instruction.
    Mmio,
    /// Guest executed `hlt`.
    Halt,
}

impl Fault {
    /// The interrupt vector this fault is delivered on (x86 numbering).
    #[must_use]
    pub fn vector(&self) -> u8 {
        match self {
            Fault::PageFault { .. } => 14,
            Fault::GeneralProtection(_) => 13,
            Fault::ControlProtection(_) => 21,
            Fault::UndefinedInstruction(_) => 6,
            Fault::VirtualizationException(_) => 20,
            Fault::Unrecoverable(_) => 8,
        }
    }

    /// Convenience: whether this is a page fault with the given reason.
    #[must_use]
    pub fn is_pf(&self, want: PfReason) -> bool {
        matches!(self, Fault::PageFault { reason, .. } if *reason == want)
    }
}

impl core::fmt::Display for Fault {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Fault::PageFault { va, access, reason } => {
                write!(f, "#PF at {va} ({access:?}, {reason:?})")
            }
            Fault::GeneralProtection(why) => write!(f, "#GP: {why}"),
            Fault::ControlProtection(r) => write!(f, "#CP: {r:?}"),
            Fault::UndefinedInstruction(why) => write!(f, "#UD: {why}"),
            Fault::VirtualizationException(r) => write!(f, "#VE: {r:?}"),
            Fault::Unrecoverable(why) => write!(f, "unrecoverable: {why}"),
        }
    }
}

impl std::error::Error for Fault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_vectors_match_x86() {
        assert_eq!(
            Fault::PageFault {
                va: VirtAddr(0),
                access: AccessKind::Read,
                reason: PfReason::NotPresent
            }
            .vector(),
            14
        );
        assert_eq!(Fault::GeneralProtection("x").vector(), 13);
        assert_eq!(
            Fault::ControlProtection(CpReason::MissingEndbranch).vector(),
            21
        );
        assert_eq!(Fault::VirtualizationException(VeReason::Cpuid).vector(), 20);
    }

    #[test]
    fn is_pf_matches_reason() {
        let f = Fault::PageFault {
            va: VirtAddr(0x1000),
            access: AccessKind::Write,
            reason: PfReason::PksWriteDisabled,
        };
        assert!(f.is_pf(PfReason::PksWriteDisabled));
        assert!(!f.is_pf(PfReason::NotPresent));
    }

    #[test]
    fn access_kind_data() {
        assert!(AccessKind::Read.is_data());
        assert!(AccessKind::Write.is_data());
        assert!(!AccessKind::Execute.is_data());
    }
}
