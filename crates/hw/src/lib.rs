//! # erebor-hw — simulated hardware substrate
//!
//! A deterministic software model of the hardware that the Erebor paper
//! (EuroSys'25) relies on: an x86-64-style multi-core CPU with control and
//! model-specific registers, a 4-level MMU whose page tables live in
//! simulated physical frames, supervisor protection keys (PKS), SMEP/SMAP,
//! Control-flow Enforcement Technology (IBT + shadow stacks), an interrupt
//! descriptor table, user-interrupt state, and the byte encodings of the
//! paper's *sensitive instructions* (Table 2).
//!
//! The simulator enforces, on **every** simulated access, exactly the checks
//! the real hardware would perform. Security arguments in the paper are
//! arguments about which accesses and transitions hardware permits; attack
//! and defense tests in this reproduction exercise those same checks.
//!
//! Nothing in this crate knows about TDX, the monitor, the kernel or the
//! LibOS — those are layered in sibling crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cet;
pub mod core_handle;
pub mod cpu;
pub mod cycles;
pub mod decision;
pub mod fault;
pub mod idt;
pub mod image;
pub mod inject;
pub mod insn;
pub mod isolation;
pub mod layout;
pub mod migrate;
pub mod mmu;
pub mod native;
pub mod paging;
pub mod phys;
pub mod regs;
pub mod tlb;

pub use core_handle::CoreHandle;
pub use cpu::{BatchOp, BatchOutcome, Cpu, CpuMode};
pub use cycles::{Costs, CycleCounter};
pub use decision::{CachedCtx, Decision, DecisionCache, FastpathStats};
pub use fault::{AccessKind, Fault, PfReason};
pub use inject::{CoreView, InjectionPoint, Injector, InjectorHandle};
pub use isolation::{Backend, BackendKind, DomainId, FrameTag, IsolationBackend, IsolationError};
pub use paging::{Pte, PteFlags};
// `PhysMemory` is deliberately NOT re-exported: raw DRAM access is
// privileged, and requiring the full `erebor_hw::phys::PhysMemory` path
// keeps every reach greppable and attributable (the privilege auditor's
// pub-leak rule enforces this, DESIGN.md §14).
pub use phys::{Frame, PhysAddr, PAGE_SHIFT, PAGE_SIZE};
pub use regs::{Cr0, Cr4, Msr, PkrsPerms, Rflags};
pub use tlb::{HwStats, Tlb};

/// A canonical 64-bit virtual address.
///
/// The simulator uses 48-bit canonical addressing (sign-extended), matching
/// 4-level x86-64 paging.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtAddr(pub u64);

impl VirtAddr {
    /// Returns the address rounded down to the containing page boundary.
    #[must_use]
    pub fn page_base(self) -> VirtAddr {
        VirtAddr(self.0 & !((PAGE_SIZE as u64) - 1))
    }

    /// Byte offset within the containing page.
    #[must_use]
    pub fn page_offset(self) -> u64 {
        self.0 & ((PAGE_SIZE as u64) - 1)
    }

    /// Whether the address is canonical for 48-bit addressing.
    #[must_use]
    pub fn is_canonical(self) -> bool {
        let upper = self.0 >> 47;
        upper == 0 || upper == (1 << 17) - 1
    }

    /// Index into the page-table at level `level` (4 = PML4 .. 1 = PT).
    #[must_use]
    pub fn table_index(self, level: u8) -> usize {
        debug_assert!((1..=4).contains(&level));
        ((self.0 >> (12 + 9 * (u64::from(level) - 1))) & 0x1ff) as usize
    }

    /// Add a byte offset, wrapping (addresses are plain u64 in the model).
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, off: u64) -> VirtAddr {
        VirtAddr(self.0.wrapping_add(off))
    }
}

impl core::fmt::Debug for VirtAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "VirtAddr({:#x})", self.0)
    }
}

impl core::fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virt_addr_page_math() {
        let v = VirtAddr(0x1234_5678);
        assert_eq!(v.page_base().0, 0x1234_5000);
        assert_eq!(v.page_offset(), 0x678);
    }

    #[test]
    fn virt_addr_canonical() {
        assert!(VirtAddr(0x0000_7fff_ffff_ffff).is_canonical());
        assert!(VirtAddr(0xffff_8000_0000_0000).is_canonical());
        assert!(!VirtAddr(0x0000_8000_0000_0000).is_canonical());
        assert!(!VirtAddr(0x1234_0000_0000_0000).is_canonical());
    }

    #[test]
    fn virt_addr_table_indices() {
        // VA with distinct indices at each level.
        let va = VirtAddr((3 << 39) | (5 << 30) | (7 << 21) | (9 << 12) | 0x42);
        assert_eq!(va.table_index(4), 3);
        assert_eq!(va.table_index(3), 5);
        assert_eq!(va.table_index(2), 7);
        assert_eq!(va.table_index(1), 9);
    }
}
