//! 4-level page tables stored in simulated physical frames.
//!
//! Page-table pages (PTPs) are ordinary frames of simulated DRAM: walking
//! reads them through [`PhysMemory`], and *software* updates them through
//! ordinary (MMU-checked) stores. That property is what lets the monitor
//! enforce the Nested-Kernel PTP write-protection policy of §5.2 — the
//! deprivileged kernel's direct-map stores to PTP frames hit the PKS check
//! like any other store.
//!
//! This module provides the PTE encoding and *raw* table construction
//! helpers used by boot firmware and by the MMU walker itself. They bypass
//! permission checks by design; runtime software must go through
//! [`crate::cpu::Cpu`] store operations instead.

use crate::phys::{Frame, PhysAddr, PhysError, PhysMemory};
use crate::VirtAddr;

/// Architectural flag bits of a page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PteFlags {
    /// Present.
    pub present: bool,
    /// Writable.
    pub writable: bool,
    /// User-accessible (`U/S = 1`).
    pub user: bool,
    /// Accessed (set by the walker).
    pub accessed: bool,
    /// Dirty (set by the walker on writes).
    pub dirty: bool,
    /// No-execute.
    pub nx: bool,
    /// 4-bit supervisor protection key (PKS domain).
    pub pkey: u8,
}

impl PteFlags {
    /// Kernel read-write data mapping.
    #[must_use]
    pub fn kernel_rw(pkey: u8) -> PteFlags {
        PteFlags {
            present: true,
            writable: true,
            nx: true,
            pkey,
            ..PteFlags::default()
        }
    }

    /// Kernel read-only mapping.
    #[must_use]
    pub fn kernel_ro(pkey: u8) -> PteFlags {
        PteFlags {
            present: true,
            nx: true,
            pkey,
            ..PteFlags::default()
        }
    }

    /// Kernel executable (read-only) mapping — W⊕X.
    #[must_use]
    pub fn kernel_rx(pkey: u8) -> PteFlags {
        PteFlags {
            present: true,
            pkey,
            ..PteFlags::default()
        }
    }

    /// User read-write data mapping.
    #[must_use]
    pub fn user_rw() -> PteFlags {
        PteFlags {
            present: true,
            writable: true,
            user: true,
            nx: true,
            ..PteFlags::default()
        }
    }

    /// User read-only mapping.
    #[must_use]
    pub fn user_ro() -> PteFlags {
        PteFlags {
            present: true,
            user: true,
            nx: true,
            ..PteFlags::default()
        }
    }

    /// User executable (read-only) mapping.
    #[must_use]
    pub fn user_rx() -> PteFlags {
        PteFlags {
            present: true,
            user: true,
            ..PteFlags::default()
        }
    }
}

/// A raw 64-bit page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pte(pub u64);

impl Pte {
    const PRESENT: u64 = 1 << 0;
    const WRITABLE: u64 = 1 << 1;
    const USER: u64 = 1 << 2;
    const ACCESSED: u64 = 1 << 5;
    const DIRTY: u64 = 1 << 6;
    /// PA bits 39:12. The model's DRAM tops out well below 1 TiB, so
    /// the high PA bits 51:40 are repurposed as the TME-MK key-ID field
    /// — exactly how the hardware steals physical-address bits for
    /// MKTME key-IDs.
    const FRAME_MASK: u64 = 0x0000_00ff_ffff_f000;
    /// 12-bit TME-MK key-ID in PA bits 51:40 (0 = untagged).
    const KEYID_SHIFT: u64 = 40;
    const KEYID_MASK: u64 = 0xfff;
    const PKEY_SHIFT: u64 = 59;
    const NX: u64 = 1 << 63;

    /// Encode an entry from a frame and flags.
    #[must_use]
    pub fn encode(frame: Frame, flags: PteFlags) -> Pte {
        let mut v = (frame.0 << 12) & Self::FRAME_MASK;
        if flags.present {
            v |= Self::PRESENT;
        }
        if flags.writable {
            v |= Self::WRITABLE;
        }
        if flags.user {
            v |= Self::USER;
        }
        if flags.accessed {
            v |= Self::ACCESSED;
        }
        if flags.dirty {
            v |= Self::DIRTY;
        }
        if flags.nx {
            v |= Self::NX;
        }
        v |= u64::from(flags.pkey & 0xf) << Self::PKEY_SHIFT;
        Pte(v)
    }

    /// The not-present entry.
    #[must_use]
    pub fn empty() -> Pte {
        Pte(0)
    }

    /// Whether the entry is present.
    #[must_use]
    pub fn present(self) -> bool {
        self.0 & Self::PRESENT != 0
    }

    /// Whether the entry is writable.
    #[must_use]
    pub fn writable(self) -> bool {
        self.0 & Self::WRITABLE != 0
    }

    /// Whether the entry is user-accessible.
    #[must_use]
    pub fn user(self) -> bool {
        self.0 & Self::USER != 0
    }

    /// Whether the entry is dirty.
    #[must_use]
    pub fn dirty(self) -> bool {
        self.0 & Self::DIRTY != 0
    }

    /// Whether the entry is no-execute.
    #[must_use]
    pub fn nx(self) -> bool {
        self.0 & Self::NX != 0
    }

    /// The supervisor protection key.
    #[must_use]
    pub fn pkey(self) -> u8 {
        ((self.0 >> Self::PKEY_SHIFT) & 0xf) as u8
    }

    /// The TME-MK key-ID carried in high PA bits (0 = untagged).
    #[must_use]
    pub fn keyid(self) -> u16 {
        ((self.0 >> Self::KEYID_SHIFT) & Self::KEYID_MASK) as u16
    }

    /// Copy with the TME-MK key-ID set (low 12 bits of `keyid`).
    #[must_use]
    pub fn with_keyid(self, keyid: u16) -> Pte {
        let v = self.0 & !(Self::KEYID_MASK << Self::KEYID_SHIFT);
        Pte(v | (u64::from(keyid) & Self::KEYID_MASK) << Self::KEYID_SHIFT)
    }

    /// Target frame.
    #[must_use]
    pub fn frame(self) -> Frame {
        Frame((self.0 & Self::FRAME_MASK) >> 12)
    }

    /// Decoded flag view.
    #[must_use]
    pub fn flags(self) -> PteFlags {
        PteFlags {
            present: self.present(),
            writable: self.writable(),
            user: self.user(),
            accessed: self.0 & Self::ACCESSED != 0,
            dirty: self.dirty(),
            nx: self.nx(),
            pkey: self.pkey(),
        }
    }

    /// Copy with accessed/dirty bits set.
    #[must_use]
    pub fn with_ad(self, dirty: bool) -> Pte {
        let mut v = self.0 | Self::ACCESSED;
        if dirty {
            v |= Self::DIRTY;
        }
        Pte(v)
    }

    /// Copy with the writable bit cleared (used when the monitor seals
    /// common memory read-only, §6.1).
    #[must_use]
    pub fn read_only(self) -> Pte {
        Pte(self.0 & !Self::WRITABLE)
    }
}

/// Conventional intermediate-level flags for a mapping whose leaf flags are
/// `leaf`: present, writable, and user-visible iff the leaf is (x86 requires
/// `U/S = 1` along the entire walk path for a user-accessible page).
#[must_use]
pub fn intermediate_for(leaf: PteFlags) -> PteFlags {
    PteFlags {
        present: true,
        writable: true,
        user: leaf.user,
        ..PteFlags::default()
    }
}

/// Physical address of the PTE slot for `va` at `level` within table `tbl`.
#[must_use]
pub fn pte_slot(tbl: Frame, va: VirtAddr, level: u8) -> PhysAddr {
    PhysAddr(tbl.base().0 + (va.table_index(level) * 8) as u64)
}

/// Raw (unchecked) page-table construction: walk down from `root`, creating
/// intermediate tables with `intermediate_flags` as needed, and install
/// `pte` at the leaf slot for `va`.
///
/// Returns the list of newly allocated PTP frames so callers (the monitor)
/// can tag and protect them.
///
/// # Errors
/// Propagates physical-memory allocation failures.
pub fn map_raw(
    mem: &mut PhysMemory,
    root: Frame,
    va: VirtAddr,
    pte: Pte,
    intermediate_flags: PteFlags,
) -> Result<Vec<Frame>, PhysError> {
    let mut new_ptps = Vec::new();
    let mut tbl = root;
    for level in (2..=4u8).rev() {
        let slot = pte_slot(tbl, va, level);
        let entry = Pte(mem.read_u64(slot)?);
        if entry.present() {
            tbl = entry.frame();
        } else {
            let f = mem.alloc_frame()?;
            mem.write_u64(slot, Pte::encode(f, intermediate_flags).0)?;
            new_ptps.push(f);
            tbl = f;
        }
    }
    mem.write_u64(pte_slot(tbl, va, 1), pte.0)?;
    Ok(new_ptps)
}

/// Raw (unchecked) leaf lookup: returns the leaf PTE for `va`, or `None` if
/// any level is not present.
///
/// # Errors
/// Propagates physical-memory range errors.
pub fn lookup_raw(mem: &PhysMemory, root: Frame, va: VirtAddr) -> Result<Option<Pte>, PhysError> {
    let mut tbl = root;
    for level in (2..=4u8).rev() {
        let entry = Pte(mem.read_u64(pte_slot(tbl, va, level))?);
        if !entry.present() {
            return Ok(None);
        }
        tbl = entry.frame();
    }
    let leaf = Pte(mem.read_u64(pte_slot(tbl, va, 1))?);
    Ok(if leaf.present() { Some(leaf) } else { None })
}

/// Physical address of the *leaf PTE slot* for `va`, or `None` if the walk
/// path is incomplete. Used by the monitor to locate entries it must edit.
///
/// # Errors
/// Propagates physical-memory range errors.
pub fn leaf_slot(
    mem: &PhysMemory,
    root: Frame,
    va: VirtAddr,
) -> Result<Option<PhysAddr>, PhysError> {
    let mut tbl = root;
    for level in (2..=4u8).rev() {
        let entry = Pte(mem.read_u64(pte_slot(tbl, va, level))?);
        if !entry.present() {
            return Ok(None);
        }
        tbl = entry.frame();
    }
    Ok(Some(pte_slot(tbl, va, 1)))
}

/// Enumerate the PTP frames (all levels, including the root) reachable from
/// `root`. Used by the monitor to apply the PTP protection key.
///
/// # Errors
/// Propagates physical-memory range errors.
pub fn collect_ptps(mem: &PhysMemory, root: Frame) -> Result<Vec<Frame>, PhysError> {
    let mut out = vec![root];
    let mut stack = vec![(root, 4u8)];
    while let Some((tbl, level)) = stack.pop() {
        for idx in 0..512usize {
            let entry = Pte(mem.read_u64(PhysAddr(tbl.base().0 + (idx * 8) as u64))?);
            if entry.present() && level > 1 {
                out.push(entry.frame());
                if level > 2 {
                    stack.push((entry.frame(), level - 1));
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> PhysMemory {
        PhysMemory::new(64 * 1024 * 1024)
    }

    #[test]
    fn pte_encode_decode_roundtrip() {
        let flags = PteFlags {
            present: true,
            writable: true,
            user: false,
            accessed: false,
            dirty: false,
            nx: true,
            pkey: 9,
        };
        let pte = Pte::encode(Frame(0x1234), flags);
        assert!(pte.present() && pte.writable() && pte.nx());
        assert_eq!(pte.pkey(), 9);
        assert_eq!(pte.frame(), Frame(0x1234));
        assert_eq!(pte.flags(), flags);
    }

    #[test]
    fn keyid_roundtrip_and_frame_isolation() {
        let pte = Pte::encode(Frame(0x1234), PteFlags::kernel_rw(1)).with_keyid(0xabc);
        assert_eq!(pte.keyid(), 0xabc);
        assert_eq!(pte.frame(), Frame(0x1234), "key-ID must not corrupt the PA");
        assert_eq!(pte.pkey(), 1);
        assert!(pte.present() && pte.writable() && pte.nx());
        // Re-tagging replaces, truncates to 12 bits, and 0 clears.
        assert_eq!(pte.with_keyid(0x1fff).keyid(), 0xfff);
        assert_eq!(pte.with_keyid(0).keyid(), 0);
        assert_eq!(Pte::encode(Frame(7), PteFlags::user_rw()).keyid(), 0);
    }

    #[test]
    fn map_then_lookup() {
        let mut m = mem();
        let root = m.alloc_frame().unwrap();
        let target = m.alloc_frame().unwrap();
        let va = VirtAddr(0x0000_7f12_3456_7000);
        let ptps = map_raw(
            &mut m,
            root,
            va,
            Pte::encode(target, PteFlags::user_rw()),
            PteFlags::kernel_rw(0),
        )
        .unwrap();
        assert_eq!(ptps.len(), 3, "three intermediate levels created");
        let leaf = lookup_raw(&m, root, va).unwrap().unwrap();
        assert_eq!(leaf.frame(), target);
        assert!(leaf.user() && leaf.writable());
        assert_eq!(lookup_raw(&m, root, VirtAddr(0x1000)).unwrap(), None);
    }

    #[test]
    fn map_reuses_intermediate_tables() {
        let mut m = mem();
        let root = m.alloc_frame().unwrap();
        let t1 = m.alloc_frame().unwrap();
        let t2 = m.alloc_frame().unwrap();
        let ptps1 = map_raw(
            &mut m,
            root,
            VirtAddr(0x40_0000),
            Pte::encode(t1, PteFlags::user_ro()),
            PteFlags::kernel_rw(0),
        )
        .unwrap();
        let ptps2 = map_raw(
            &mut m,
            root,
            VirtAddr(0x40_1000),
            Pte::encode(t2, PteFlags::user_ro()),
            PteFlags::kernel_rw(0),
        )
        .unwrap();
        assert_eq!(ptps1.len(), 3);
        assert_eq!(ptps2.len(), 0, "same PT path reused");
    }

    #[test]
    fn collect_ptps_finds_all_levels() {
        let mut m = mem();
        let root = m.alloc_frame().unwrap();
        let t = m.alloc_frame().unwrap();
        map_raw(
            &mut m,
            root,
            VirtAddr(0x40_0000),
            Pte::encode(t, PteFlags::user_rw()),
            PteFlags::kernel_rw(0),
        )
        .unwrap();
        let ptps = collect_ptps(&m, root).unwrap();
        assert_eq!(ptps.len(), 4, "root + 3 intermediates");
        assert!(!ptps.contains(&t), "leaf data frame is not a PTP");
    }

    #[test]
    fn leaf_slot_addresses_the_leaf() {
        let mut m = mem();
        let root = m.alloc_frame().unwrap();
        let t = m.alloc_frame().unwrap();
        let va = VirtAddr(0x40_0000);
        map_raw(
            &mut m,
            root,
            va,
            Pte::encode(t, PteFlags::user_rw()),
            PteFlags::kernel_rw(0),
        )
        .unwrap();
        let slot = leaf_slot(&m, root, va).unwrap().unwrap();
        let pte = Pte(m.read_u64(slot).unwrap());
        assert_eq!(pte.frame(), t);
    }

    #[test]
    fn read_only_seal_clears_w() {
        let pte = Pte::encode(Frame(1), PteFlags::user_rw());
        assert!(pte.writable());
        assert!(!pte.read_only().writable());
        assert!(pte.read_only().present());
    }
}
