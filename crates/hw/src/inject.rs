//! Deterministic fault injection for chaos testing.
//!
//! The simulator's architectural choke points — privileged register
//! writes, control transfers, TLB shootdown IPIs, frame allocation, and
//! the `tdcall` boundary — consult an optional [`Injector`] before (or
//! while) performing their effect. A test installs an injector through
//! [`crate::cpu::Machine::set_injector`]; production paths run with none
//! installed and pay nothing beyond an `Option` check.
//!
//! The injector is deliberately blind: it receives only the
//! [`InjectionPoint`] (and, for preemptions, a [`CoreView`] snapshot), so
//! it cannot mutate machine state directly. Everything it can do — fault
//! a `wrmsr`, drop a shootdown IPI, fail an allocation — is something the
//! environment (hardware, a malicious host, memory pressure) can do to
//! Erebor on a real TDX machine. Determinism is the caller's contract:
//! drive all decisions from a seeded RNG and a replay with the same seed
//! reproduces the identical event sequence.

use crate::cpu::{CpuMode, Domain};
use crate::fault::Fault;
use crate::regs::Msr;
use std::sync::{Arc, Mutex};

/// An instrumented location where an adversarial event may be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectionPoint {
    /// A `wrmsr` on `cpu` to `msr`, about to take effect.
    Wrmsr {
        /// Executing core.
        cpu: usize,
        /// Target MSR.
        msr: Msr,
    },
    /// A control-register write (`reg` ∈ {0, 3, 4}) on `cpu`.
    WriteCr {
        /// Executing core.
        cpu: usize,
        /// Control register number.
        reg: u8,
    },
    /// An indirect `call`/`jmp` (IBT-checked) on `cpu`.
    IndirectBranch {
        /// Executing core.
        cpu: usize,
    },
    /// A direct `call`/`jmp`/`ret` on `cpu`.
    DirectBranch {
        /// Executing core.
        cpu: usize,
    },
    /// The EMC entry gate's preemption window (after the gate is armed,
    /// before the PKRS grant lands).
    GateEnter {
        /// Executing core.
        cpu: usize,
    },
    /// The EMC exit gate's preemption window (before the PKRS revoke).
    GateExit {
        /// Executing core.
        cpu: usize,
    },
    /// A frame allocation in physical memory.
    AllocFrame,
    /// A `tdcall` about to dispatch on `cpu`.
    Tdcall {
        /// Executing core.
        cpu: usize,
    },
}

impl InjectionPoint {
    /// Stable snake_case identifier (recorded in the trace buffer when
    /// the injector fires here).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            InjectionPoint::Wrmsr { .. } => "wrmsr",
            InjectionPoint::WriteCr { .. } => "write_cr",
            InjectionPoint::IndirectBranch { .. } => "indirect_branch",
            InjectionPoint::DirectBranch { .. } => "direct_branch",
            InjectionPoint::GateEnter { .. } => "gate_enter",
            InjectionPoint::GateExit { .. } => "gate_exit",
            InjectionPoint::AllocFrame => "alloc_frame",
            InjectionPoint::Tdcall { .. } => "tdcall",
        }
    }

    /// The executing core, where the point has one ([`None`] for
    /// allocation, which is machine-global).
    #[must_use]
    pub fn cpu(self) -> Option<usize> {
        match self {
            InjectionPoint::Wrmsr { cpu, .. }
            | InjectionPoint::WriteCr { cpu, .. }
            | InjectionPoint::IndirectBranch { cpu }
            | InjectionPoint::DirectBranch { cpu }
            | InjectionPoint::GateEnter { cpu }
            | InjectionPoint::GateExit { cpu }
            | InjectionPoint::Tdcall { cpu } => Some(cpu),
            InjectionPoint::AllocFrame => None,
        }
    }
}

/// Read-only snapshot of a core handed to
/// [`Injector::observe_preemption`] — what a kernel interrupt handler
/// preempting at that moment would architecturally see.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreView {
    /// Core id.
    pub cpu: usize,
    /// Hardware privilege mode.
    pub mode: CpuMode,
    /// Code-provenance domain.
    pub domain: Domain,
    /// Raw `IA32_PKRS` value.
    pub pkrs: u64,
}

/// The fault-injection policy. Every method has a no-op default so an
/// injector only overrides the events it cares about.
pub trait Injector: Send {
    /// Fault the operation at `point` instead of performing it.
    fn inject_fault(&mut self, _point: InjectionPoint) -> Option<Fault> {
        None
    }

    /// Deliver an interrupt inside the window at `point` (only gate
    /// windows consult this).
    fn preempt(&mut self, _point: InjectionPoint) -> bool {
        false
    }

    /// Lose the shootdown IPI from `initiator` to `target` (the remote
    /// core keeps its stale entries; the machine records the staleness in
    /// [`crate::cpu::Machine::pending_shootdowns`]).
    fn drop_shootdown_ipi(&mut self, _initiator: usize, _target: usize) -> bool {
        false
    }

    /// Deliver a spurious (unrequested) shootdown to `cpu` — a harmless
    /// full flush that invariants must tolerate.
    fn spurious_shootdown(&mut self, _cpu: usize) -> bool {
        false
    }

    /// Fail the current frame allocation with `OutOfMemory`.
    fn fail_alloc(&mut self) -> bool {
        false
    }

    /// Have the untrusted host refuse / revert the in-flight `MapGPA`
    /// conversion (TDX `TDX_OPERAND_BUSY`-style contention).
    fn host_sept_flip(&mut self) -> bool {
        false
    }

    /// Raw completion status to fail the current `tdcall` with, `None`
    /// to let the leaf run.
    fn tdcall_status(&mut self, _cpu: usize) -> Option<u64> {
        None
    }

    /// Observe the kernel-visible core state during an injected gate
    /// preemption (invariant checkers record violations here).
    fn observe_preemption(&mut self, _view: CoreView) {}
}

/// Shared handle to an installed injector. The machine and its physical
/// memory each hold a clone; `Mutex` keeps the handle `Sync` so `Machine`
/// stays `Send`.
pub type InjectorHandle = Arc<Mutex<dyn Injector>>;

/// Wrap an injector into a handle.
pub fn handle<I: Injector + 'static>(injector: I) -> InjectorHandle {
    Arc::new(Mutex::new(injector))
}

/// Lock an injector handle, recovering from poisoning.
///
/// An injector that panicked (e.g. an invariant `assert!` inside a chaos
/// checker) poisons its mutex; the simulated hardware must keep running
/// — a real machine does not halt because an observer crashed — so we
/// take the inner guard rather than propagating the panic.
pub fn lock(h: &InjectorHandle) -> std::sync::MutexGuard<'_, dyn Injector + 'static> {
    h.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;
    impl Injector for Nop {}

    #[test]
    fn defaults_are_inert() {
        let mut n = Nop;
        assert!(n.inject_fault(InjectionPoint::AllocFrame).is_none());
        assert!(!n.preempt(InjectionPoint::GateEnter { cpu: 0 }));
        assert!(!n.drop_shootdown_ipi(0, 1));
        assert!(!n.spurious_shootdown(0));
        assert!(!n.fail_alloc());
        assert!(!n.host_sept_flip());
        assert!(n.tdcall_status(0).is_none());
    }

    #[test]
    fn handle_is_shareable() {
        let h = handle(Nop);
        let h2 = h.clone();
        assert!(h2.lock().unwrap().tdcall_status(0).is_none());
    }
}
