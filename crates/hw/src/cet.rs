//! Control-flow Enforcement Technology: indirect-branch tracking (IBT) and
//! hardware shadow stacks (SST), per §2.2.
//!
//! IBT: at an indirect `call`/`jmp` target the hardware requires the first
//! instruction to be `endbr64`; otherwise `#CP`. The simulator keeps the set
//! of landing-pad addresses loaded from verified images.
//!
//! SST: per-logical-core shadow stacks with activation tokens. `call`
//! pushes the return address; `ret` verifies it. Kernel shadow-stack pages
//! are non-writable-but-dirty in the page tables (enforced by the monitor's
//! mapping policy, not here).

use crate::fault::{CpReason, Fault};
use crate::VirtAddr;
use std::collections::BTreeSet;

/// Machine-wide registry of `endbr64` landing pads, populated from images
/// at load time.
#[derive(Debug, Default, Clone)]
pub struct EndbrRegistry {
    targets: BTreeSet<u64>,
}

impl EndbrRegistry {
    /// New, empty registry.
    #[must_use]
    pub fn new() -> EndbrRegistry {
        EndbrRegistry::default()
    }

    /// Register a landing pad.
    pub fn add(&mut self, va: VirtAddr) {
        self.targets.insert(va.0);
    }

    /// Register all landing pads of an image.
    pub fn add_image(&mut self, image: &crate::image::Image) {
        for va in image.endbr_targets() {
            self.add(va);
        }
    }

    /// Whether `va` is a valid indirect-branch target.
    #[must_use]
    pub fn is_target(&self, va: VirtAddr) -> bool {
        self.targets.contains(&va.0)
    }

    /// Number of registered pads.
    #[must_use]
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// All registered landing pads, ascending (migration export).
    pub fn targets(&self) -> impl Iterator<Item = u64> + '_ {
        self.targets.iter().copied()
    }
}

/// A hardware shadow stack with a busy token.
///
/// The token models CET's supervisor shadow-stack tokens: a stack can be
/// active on at most one logical core at a time (§2.2).
#[derive(Debug, Clone)]
pub struct ShadowStack {
    /// Base virtual address of the stack window (for diagnostics).
    pub base: VirtAddr,
    frames: Vec<u64>,
    active_on: Option<usize>,
}

impl ShadowStack {
    /// Create an inactive shadow stack at `base`.
    #[must_use]
    pub fn new(base: VirtAddr) -> ShadowStack {
        ShadowStack {
            base,
            frames: Vec::new(),
            active_on: None,
        }
    }

    /// Activate on logical core `core`; fails with `#CP` if the token is
    /// already held by another core.
    ///
    /// # Errors
    /// [`Fault::ControlProtection`] with [`CpReason::TokenBusy`].
    pub fn activate(&mut self, core: usize) -> Result<(), Fault> {
        match self.active_on {
            Some(c) if c != core => Err(Fault::ControlProtection(CpReason::TokenBusy)),
            _ => {
                self.active_on = Some(core);
                Ok(())
            }
        }
    }

    /// Release the token.
    pub fn deactivate(&mut self) {
        self.active_on = None;
    }

    /// Push a return address at `call` (or exception delivery).
    pub fn push(&mut self, ret: VirtAddr) {
        self.frames.push(ret.0);
    }

    /// Verify and pop at `ret`/`iret`.
    ///
    /// # Errors
    /// [`Fault::ControlProtection`] with [`CpReason::ShadowStackMismatch`]
    /// if `actual` does not match the recorded return address (or the stack
    /// is empty — an underflow is also a mismatch).
    pub fn pop(&mut self, actual: VirtAddr) -> Result<(), Fault> {
        match self.frames.pop() {
            Some(expect) if expect == actual.0 => Ok(()),
            _ => Err(Fault::ControlProtection(CpReason::ShadowStackMismatch)),
        }
    }

    /// Current depth.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Raw migration parts: base, recorded return addresses (bottom
    /// first), and the core holding the busy token, if any.
    #[must_use]
    pub fn to_parts(&self) -> (VirtAddr, &[u64], Option<usize>) {
        (self.base, &self.frames, self.active_on)
    }

    /// Rebuild from [`ShadowStack::to_parts`] output.
    #[must_use]
    pub fn from_parts(base: VirtAddr, frames: Vec<u64>, active_on: Option<usize>) -> ShadowStack {
        ShadowStack {
            base,
            frames,
            active_on,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_membership() {
        let mut reg = EndbrRegistry::new();
        reg.add(VirtAddr(0x1000));
        assert!(reg.is_target(VirtAddr(0x1000)));
        assert!(!reg.is_target(VirtAddr(0x1004)));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn shadow_stack_balanced_calls() {
        let mut ss = ShadowStack::new(VirtAddr(0xffff_a100_0000_0000));
        ss.push(VirtAddr(0x100));
        ss.push(VirtAddr(0x200));
        assert_eq!(ss.depth(), 2);
        ss.pop(VirtAddr(0x200)).unwrap();
        ss.pop(VirtAddr(0x100)).unwrap();
    }

    #[test]
    fn shadow_stack_detects_rop() {
        let mut ss = ShadowStack::new(VirtAddr(0));
        ss.push(VirtAddr(0x100));
        let err = ss.pop(VirtAddr(0xdead)).unwrap_err();
        assert_eq!(err, Fault::ControlProtection(CpReason::ShadowStackMismatch));
    }

    #[test]
    fn shadow_stack_underflow_is_mismatch() {
        let mut ss = ShadowStack::new(VirtAddr(0));
        assert!(ss.pop(VirtAddr(0)).is_err());
    }

    #[test]
    fn token_exclusive_activation() {
        let mut ss = ShadowStack::new(VirtAddr(0));
        ss.activate(0).unwrap();
        assert_eq!(
            ss.activate(1).unwrap_err(),
            Fault::ControlProtection(CpReason::TokenBusy)
        );
        ss.activate(0).unwrap(); // re-activation on same core is fine
        ss.deactivate();
        ss.activate(1).unwrap();
    }
}
