//! Simulated physical memory: frames, a frame allocator with reserved
//! regions, and byte-addressed DRAM backing.
//!
//! Frames are 4 KiB (the paper's prototype disables huge pages, §7, so the
//! simulator only models 4 KiB mappings). Backing storage is allocated
//! lazily so a multi-GiB simulated machine is cheap to construct.

use crate::inject::InjectorHandle;
use std::collections::BTreeMap;

/// Page size in bytes (4 KiB; huge pages are disabled per paper §7).
pub const PAGE_SIZE: usize = 4096;
/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u64 = 12;

/// A physical byte address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// The frame containing this address.
    #[must_use]
    pub fn frame(self) -> Frame {
        Frame(self.0 >> PAGE_SHIFT)
    }

    /// Byte offset within the containing frame.
    #[must_use]
    pub fn frame_offset(self) -> usize {
        (self.0 & (PAGE_SIZE as u64 - 1)) as usize
    }
}

impl core::fmt::Debug for PhysAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "PhysAddr({:#x})", self.0)
    }
}

/// A physical frame number (address >> 12).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Frame(pub u64);

impl Frame {
    /// Base physical address of the frame.
    #[must_use]
    pub fn base(self) -> PhysAddr {
        PhysAddr(self.0 << PAGE_SHIFT)
    }
}

impl core::fmt::Debug for Frame {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Frame({:#x})", self.0)
    }
}

/// Errors from physical-memory operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhysError {
    /// Address beyond the configured DRAM size.
    OutOfRange(PhysAddr),
    /// No free frames remain in the requested region.
    OutOfMemory,
    /// Frame was not allocated (double free / free of reserved frame).
    NotAllocated(Frame),
    /// Frame is already allocated.
    AlreadyAllocated(Frame),
}

impl core::fmt::Display for PhysError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PhysError::OutOfRange(pa) => write!(f, "physical address {pa:?} out of range"),
            PhysError::OutOfMemory => write!(f, "out of physical memory"),
            PhysError::NotAllocated(fr) => write!(f, "{fr:?} not allocated"),
            PhysError::AlreadyAllocated(fr) => write!(f, "{fr:?} already allocated"),
        }
    }
}

impl std::error::Error for PhysError {}

/// A named contiguous region of physical memory.
///
/// The platform reserves regions at boot: monitor image, the contiguous
/// region backing sandbox confined memory (the paper uses Linux CMA, §7),
/// and the device-shared window that may be converted to CVM-shared memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First frame of the region (inclusive).
    pub start: Frame,
    /// One past the last frame (exclusive).
    pub end: Frame,
}

impl Region {
    /// Construct a region from frame numbers.
    #[must_use]
    pub fn new(start: u64, end: u64) -> Region {
        assert!(start <= end, "region start must not exceed end");
        Region {
            start: Frame(start),
            end: Frame(end),
        }
    }

    /// Number of frames in the region.
    #[must_use]
    pub fn frames(&self) -> u64 {
        self.end.0 - self.start.0
    }

    /// Whether the region contains `frame`.
    #[must_use]
    pub fn contains(&self, frame: Frame) -> bool {
        frame >= self.start && frame < self.end
    }
}

/// Simulated DRAM plus a first-fit frame allocator.
///
/// Backing pages are allocated lazily on first write; reads of untouched
/// memory return zeroes, matching freshly-scrubbed CVM memory.
pub struct PhysMemory {
    total_frames: u64,
    pages: BTreeMap<u64, Box<[u8; PAGE_SIZE]>>,
    allocated: Vec<bool>,
    reserved: Vec<Region>,
    next_hint: u64,
    injector: Option<InjectorHandle>,
}

impl PhysMemory {
    /// Create simulated DRAM of `bytes` bytes (rounded down to frames).
    ///
    /// # Panics
    /// Panics if `bytes` is smaller than one page.
    #[must_use]
    pub fn new(bytes: u64) -> PhysMemory {
        let total_frames = bytes >> PAGE_SHIFT;
        assert!(total_frames > 0, "need at least one frame of DRAM");
        PhysMemory {
            total_frames,
            pages: BTreeMap::new(),
            allocated: vec![false; total_frames as usize],
            reserved: Vec::new(),
            next_hint: 0,
            injector: None,
        }
    }

    /// Install a chaos injector for allocation-failure injection
    /// (normally via [`crate::cpu::Machine::set_injector`]).
    pub fn set_injector(&mut self, injector: InjectorHandle) {
        self.injector = Some(injector);
    }

    /// Remove any installed injector.
    pub fn clear_injector(&mut self) {
        self.injector = None;
    }

    fn alloc_injected(&self) -> bool {
        self.injector
            .as_ref()
            .is_some_and(|h| crate::inject::lock(h).fail_alloc())
    }

    /// Reserve a region: [`PhysMemory::alloc_frame`] will skip it, but
    /// [`PhysMemory::alloc_frame_in`] targeting the region still works.
    /// Used for the CMA confined pool and the device-shared window.
    pub fn reserve_region(&mut self, region: Region) {
        self.reserved.push(region);
    }

    fn is_reserved(&self, frame: Frame) -> bool {
        self.reserved.iter().any(|r| r.contains(frame))
    }

    /// Total number of frames.
    #[must_use]
    pub fn total_frames(&self) -> u64 {
        self.total_frames
    }

    /// Number of currently allocated frames.
    #[must_use]
    pub fn allocated_frames(&self) -> u64 {
        self.allocated.iter().filter(|a| **a).count() as u64
    }

    fn check(&self, pa: PhysAddr, len: usize) -> Result<(), PhysError> {
        let end =
            pa.0.checked_add(len as u64)
                .ok_or(PhysError::OutOfRange(pa))?;
        if end > self.total_frames << PAGE_SHIFT {
            return Err(PhysError::OutOfRange(pa));
        }
        Ok(())
    }

    /// Allocate one free frame anywhere in DRAM.
    pub fn alloc_frame(&mut self) -> Result<Frame, PhysError> {
        if self.alloc_injected() {
            return Err(PhysError::OutOfMemory);
        }
        let n = self.total_frames;
        for i in 0..n {
            let idx = (self.next_hint + i) % n;
            if !self.allocated[idx as usize] && !self.is_reserved(Frame(idx)) {
                self.allocated[idx as usize] = true;
                self.next_hint = (idx + 1) % n;
                return Ok(Frame(idx));
            }
        }
        Err(PhysError::OutOfMemory)
    }

    /// Allocate one free frame inside `region`.
    pub fn alloc_frame_in(&mut self, region: Region) -> Result<Frame, PhysError> {
        if self.alloc_injected() {
            return Err(PhysError::OutOfMemory);
        }
        for f in region.start.0..region.end.0 {
            if f >= self.total_frames {
                break;
            }
            if !self.allocated[f as usize] {
                self.allocated[f as usize] = true;
                return Ok(Frame(f));
            }
        }
        Err(PhysError::OutOfMemory)
    }

    /// Mark a specific frame allocated (used when reserving fixed regions).
    pub fn claim_frame(&mut self, frame: Frame) -> Result<(), PhysError> {
        if frame.0 >= self.total_frames {
            return Err(PhysError::OutOfRange(frame.base()));
        }
        if self.allocated[frame.0 as usize] {
            return Err(PhysError::AlreadyAllocated(frame));
        }
        self.allocated[frame.0 as usize] = true;
        Ok(())
    }

    /// Claim every frame of `region`.
    pub fn claim_region(&mut self, region: Region) -> Result<(), PhysError> {
        for f in region.start.0..region.end.0 {
            self.claim_frame(Frame(f))?;
        }
        Ok(())
    }

    /// Free a previously allocated frame and scrub its contents.
    pub fn free_frame(&mut self, frame: Frame) -> Result<(), PhysError> {
        if frame.0 >= self.total_frames {
            return Err(PhysError::OutOfRange(frame.base()));
        }
        if !self.allocated[frame.0 as usize] {
            return Err(PhysError::NotAllocated(frame));
        }
        self.allocated[frame.0 as usize] = false;
        self.pages.remove(&frame.0);
        Ok(())
    }

    /// Whether the frame is currently allocated.
    #[must_use]
    pub fn is_allocated(&self, frame: Frame) -> bool {
        frame.0 < self.total_frames && self.allocated[frame.0 as usize]
    }

    /// Zero an entire frame (used by the monitor's teardown scrubbing).
    pub fn zero_frame(&mut self, frame: Frame) -> Result<(), PhysError> {
        self.check(frame.base(), PAGE_SIZE)?;
        self.pages.remove(&frame.0);
        Ok(())
    }

    /// Read `buf.len()` bytes starting at `pa`. May cross frame boundaries.
    pub fn read(&self, pa: PhysAddr, buf: &mut [u8]) -> Result<(), PhysError> {
        self.check(pa, buf.len())?;
        let mut addr = pa.0;
        let mut done = 0usize;
        while done < buf.len() {
            let frame = addr >> PAGE_SHIFT;
            let off = (addr & (PAGE_SIZE as u64 - 1)) as usize;
            let chunk = (PAGE_SIZE - off).min(buf.len() - done);
            match self.pages.get(&frame) {
                Some(page) => buf[done..done + chunk].copy_from_slice(&page[off..off + chunk]),
                None => buf[done..done + chunk].fill(0),
            }
            addr += chunk as u64;
            done += chunk;
        }
        Ok(())
    }

    /// Write `buf` starting at `pa`. May cross frame boundaries.
    pub fn write(&mut self, pa: PhysAddr, buf: &[u8]) -> Result<(), PhysError> {
        self.check(pa, buf.len())?;
        let mut addr = pa.0;
        let mut done = 0usize;
        while done < buf.len() {
            let frame = addr >> PAGE_SHIFT;
            let off = (addr & (PAGE_SIZE as u64 - 1)) as usize;
            let chunk = (PAGE_SIZE - off).min(buf.len() - done);
            let page = self
                .pages
                .entry(frame)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            page[off..off + chunk].copy_from_slice(&buf[done..done + chunk]);
            addr += chunk as u64;
            done += chunk;
        }
        Ok(())
    }

    /// Read a little-endian u64.
    pub fn read_u64(&self, pa: PhysAddr) -> Result<u64, PhysError> {
        let mut b = [0u8; 8];
        self.read(pa, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Write a little-endian u64.
    pub fn write_u64(&mut self, pa: PhysAddr, v: u64) -> Result<(), PhysError> {
        self.write(pa, &v.to_le_bytes())
    }
}

impl core::fmt::Debug for PhysMemory {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PhysMemory")
            .field("total_frames", &self.total_frames)
            .field("resident_pages", &self.pages.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazily_backed_reads_are_zero() {
        let mem = PhysMemory::new(1 << 20);
        let mut b = [0xffu8; 16];
        mem.read(PhysAddr(0x2000), &mut b).unwrap();
        assert_eq!(b, [0u8; 16]);
    }

    #[test]
    fn write_read_roundtrip_across_frames() {
        let mut mem = PhysMemory::new(1 << 20);
        let data: Vec<u8> = (0..9000).map(|i| (i % 251) as u8).collect();
        mem.write(PhysAddr(0xff0), &data).unwrap();
        let mut back = vec![0u8; data.len()];
        mem.read(PhysAddr(0xff0), &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut mem = PhysMemory::new(PAGE_SIZE as u64);
        assert!(mem.write(PhysAddr(PAGE_SIZE as u64 - 4), &[0; 8]).is_err());
        assert_eq!(mem.write(PhysAddr(0), &[0; 8]), Ok(()));
    }

    #[test]
    fn alloc_free_cycle() {
        let mut mem = PhysMemory::new(4 * PAGE_SIZE as u64);
        let a = mem.alloc_frame().unwrap();
        let b = mem.alloc_frame().unwrap();
        assert_ne!(a, b);
        assert!(mem.is_allocated(a));
        mem.free_frame(a).unwrap();
        assert!(!mem.is_allocated(a));
        assert_eq!(mem.free_frame(a), Err(PhysError::NotAllocated(a)));
    }

    #[test]
    fn alloc_exhaustion() {
        let mut mem = PhysMemory::new(2 * PAGE_SIZE as u64);
        mem.alloc_frame().unwrap();
        mem.alloc_frame().unwrap();
        assert_eq!(mem.alloc_frame(), Err(PhysError::OutOfMemory));
    }

    #[test]
    fn free_scrubs_contents() {
        let mut mem = PhysMemory::new(4 * PAGE_SIZE as u64);
        let f = mem.alloc_frame().unwrap();
        mem.write(f.base(), b"secret").unwrap();
        mem.free_frame(f).unwrap();
        mem.claim_frame(f).unwrap();
        let mut b = [0u8; 6];
        mem.read(f.base(), &mut b).unwrap();
        assert_eq!(&b, &[0u8; 6], "freed frame must be scrubbed");
    }

    #[test]
    fn region_alloc_respects_bounds() {
        let mut mem = PhysMemory::new(16 * PAGE_SIZE as u64);
        let region = Region::new(4, 6);
        let f1 = mem.alloc_frame_in(region).unwrap();
        let f2 = mem.alloc_frame_in(region).unwrap();
        assert!(region.contains(f1) && region.contains(f2));
        assert_eq!(mem.alloc_frame_in(region), Err(PhysError::OutOfMemory));
    }

    #[test]
    fn claim_region_conflicts() {
        let mut mem = PhysMemory::new(16 * PAGE_SIZE as u64);
        mem.claim_region(Region::new(0, 4)).unwrap();
        assert_eq!(
            mem.claim_region(Region::new(3, 5)),
            Err(PhysError::AlreadyAllocated(Frame(3)))
        );
    }
}
