//! Simulated physical memory: frames, a frame allocator with reserved
//! regions, and byte-addressed DRAM backing.
//!
//! Frames are 4 KiB (the paper's prototype disables huge pages, §7, so the
//! simulator only models 4 KiB mappings). Backing storage is allocated
//! lazily so a multi-GiB simulated machine is cheap to construct.
//!
//! The allocator keeps a two-level free bitmap (one bit per frame, one
//! summary bit per 64-frame word) so first-fit allocation is amortized
//! O(1) at fleet scale, while producing *exactly* the frame order of the
//! original linear scan. `fast_scan = false` ablates back to the literal
//! per-frame probe loop (same results, seed-shaped cost) so the fleet
//! bench can measure what the bitmap buys.

use crate::inject::InjectorHandle;
use erebor_wire::{WireError, WireReader, WireWriter};
use std::collections::{BTreeMap, BTreeSet};

/// Page size in bytes (4 KiB; huge pages are disabled per paper §7).
pub const PAGE_SIZE: usize = 4096;
/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u64 = 12;

/// A physical byte address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// The frame containing this address.
    #[must_use]
    pub fn frame(self) -> Frame {
        Frame(self.0 >> PAGE_SHIFT)
    }

    /// Byte offset within the containing frame.
    #[must_use]
    pub fn frame_offset(self) -> usize {
        (self.0 & (PAGE_SIZE as u64 - 1)) as usize
    }
}

impl core::fmt::Debug for PhysAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "PhysAddr({:#x})", self.0)
    }
}

/// A physical frame number (address >> 12).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Frame(pub u64);

impl Frame {
    /// Base physical address of the frame.
    #[must_use]
    pub fn base(self) -> PhysAddr {
        PhysAddr(self.0 << PAGE_SHIFT)
    }
}

impl core::fmt::Debug for Frame {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Frame({:#x})", self.0)
    }
}

/// Errors from physical-memory operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhysError {
    /// Address beyond the configured DRAM size.
    OutOfRange(PhysAddr),
    /// No free frames remain in the requested region.
    OutOfMemory,
    /// Frame was not allocated (double free / free of reserved frame).
    NotAllocated(Frame),
    /// Frame is already allocated.
    AlreadyAllocated(Frame),
}

impl core::fmt::Display for PhysError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PhysError::OutOfRange(pa) => write!(f, "physical address {pa:?} out of range"),
            PhysError::OutOfMemory => write!(f, "out of physical memory"),
            PhysError::NotAllocated(fr) => write!(f, "{fr:?} not allocated"),
            PhysError::AlreadyAllocated(fr) => write!(f, "{fr:?} already allocated"),
        }
    }
}

impl std::error::Error for PhysError {}

/// A named contiguous region of physical memory.
///
/// The platform reserves regions at boot: monitor image, the contiguous
/// region backing sandbox confined memory (the paper uses Linux CMA, §7),
/// and the device-shared window that may be converted to CVM-shared memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First frame of the region (inclusive).
    pub start: Frame,
    /// One past the last frame (exclusive).
    pub end: Frame,
}

impl Region {
    /// Construct a region from frame numbers.
    #[must_use]
    pub fn new(start: u64, end: u64) -> Region {
        assert!(start <= end, "region start must not exceed end");
        Region {
            start: Frame(start),
            end: Frame(end),
        }
    }

    /// Number of frames in the region.
    #[must_use]
    pub fn frames(&self) -> u64 {
        self.end.0 - self.start.0
    }

    /// Whether the region contains `frame`.
    #[must_use]
    pub fn contains(&self, frame: Frame) -> bool {
        frame >= self.start && frame < self.end
    }
}

/// Host-side scan-work counters for the frame allocator.
///
/// These describe the *simulator's own* search effort — not simulated
/// cycles — so they live outside every snapshot/trace structure and may
/// differ between a bitmap-scan and an ablated linear-scan run without
/// breaking determinism suites. The fleet bench asserts the bitmap path
/// keeps `words_scanned` within a fixed budget where the linear path's
/// `frames_scanned` explodes quadratically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Successful frame allocations (either path).
    pub allocs: u64,
    /// Per-frame probes performed by the ablated linear scan.
    pub frames_scanned: u64,
    /// Bitmap words (frame words + summary words) examined by the fast
    /// scan.
    pub words_scanned: u64,
}

const WORD_BITS: u64 = 64;

/// Simulated DRAM plus a first-fit frame allocator.
///
/// Backing pages are allocated lazily on first write; reads of untouched
/// memory return zeroes, matching freshly-scrubbed CVM memory.
pub struct PhysMemory {
    total_frames: u64,
    pages: BTreeMap<u64, Box<[u8; PAGE_SIZE]>>,
    /// Free bitmap: bit set ⇔ frame is NOT allocated. Bits past
    /// `total_frames` in the last word stay clear so scans cannot
    /// overrun DRAM.
    free: Vec<u64>,
    /// Summary: bit `w % 64` of word `w / 64` set ⇔ `free[w] != 0`.
    free_summary: Vec<u64>,
    /// Reserved bitmap: bit set ⇔ frame is inside a reserved region
    /// (mirrors `reserved`, which stays authoritative for membership
    /// semantics).
    reserved_mask: Vec<u64>,
    /// Summary over `free & !reserved_mask` (the generic-alloc view).
    avail_summary: Vec<u64>,
    allocated_count: u64,
    reserved: Vec<Region>,
    next_hint: u64,
    injector: Option<InjectorHandle>,
    /// TME-MK key programming (the PCONFIG analogue): frame → key-ID.
    /// Sparse — absent means key-ID 0 (untagged). A mapping whose PTE
    /// key-ID disagrees with this table faults on the walk.
    frame_keys: BTreeMap<u64, u16>,
    /// When false, allocation falls back to the original per-frame
    /// linear probe loop (identical results, pre-bitmap cost shape).
    pub fast_scan: bool,
    /// Host-side scan-work counters (not part of any snapshot).
    pub alloc_stats: AllocStats,
    /// Frames whose contents changed since the last
    /// [`PhysMemory::take_dirty`] drain. Only maintained while
    /// `dirty_tracking` is on (the migration pre-copy window), so the
    /// hot write path costs one branch otherwise.
    dirty: BTreeSet<u64>,
    /// Whether the dirty ledger is being maintained.
    dirty_tracking: bool,
}

impl PhysMemory {
    /// Create simulated DRAM of `bytes` bytes (rounded down to frames).
    ///
    /// # Panics
    /// Panics if `bytes` is smaller than one page.
    #[must_use]
    pub fn new(bytes: u64) -> PhysMemory {
        let total_frames = bytes >> PAGE_SHIFT;
        assert!(total_frames > 0, "need at least one frame of DRAM");
        let words = total_frames.div_ceil(WORD_BITS) as usize;
        let summary_words = (words as u64).div_ceil(WORD_BITS) as usize;
        let mut free = vec![!0u64; words];
        let tail = total_frames % WORD_BITS;
        if tail != 0 {
            free[words - 1] = (1u64 << tail) - 1;
        }
        let mut mem = PhysMemory {
            total_frames,
            pages: BTreeMap::new(),
            free,
            free_summary: vec![0; summary_words],
            reserved_mask: vec![0; words],
            avail_summary: vec![0; summary_words],
            allocated_count: 0,
            reserved: Vec::new(),
            next_hint: 0,
            injector: None,
            frame_keys: BTreeMap::new(),
            fast_scan: true,
            alloc_stats: AllocStats::default(),
            dirty: BTreeSet::new(),
            dirty_tracking: false,
        };
        for w in 0..words {
            mem.refresh_summaries(w);
        }
        mem
    }

    /// Install a chaos injector for allocation-failure injection
    /// (normally via [`crate::cpu::Machine::set_injector`]).
    pub fn set_injector(&mut self, injector: InjectorHandle) {
        self.injector = Some(injector);
    }

    /// Remove any installed injector.
    pub fn clear_injector(&mut self) {
        self.injector = None;
    }

    fn alloc_injected(&self) -> bool {
        self.injector
            .as_ref()
            .is_some_and(|h| crate::inject::lock(h).fail_alloc())
    }

    /// Reserve a region: [`PhysMemory::alloc_frame`] will skip it, but
    /// [`PhysMemory::alloc_frame_in`] targeting the region still works.
    /// Used for the CMA confined pool and the device-shared window.
    pub fn reserve_region(&mut self, region: Region) {
        self.reserved.push(region);
        let end = region.end.0.min(self.total_frames);
        let mut f = region.start.0.min(end);
        while f < end {
            let w = (f / WORD_BITS) as usize;
            let bit = f % WORD_BITS;
            // Fill this word's covered span in one mask.
            let span = (WORD_BITS - bit).min(end - f);
            let mask = if span == WORD_BITS {
                !0u64
            } else {
                ((1u64 << span) - 1) << bit
            };
            self.reserved_mask[w] |= mask;
            self.refresh_summaries(w);
            f += span;
        }
    }

    fn is_reserved(&self, frame: Frame) -> bool {
        self.reserved.iter().any(|r| r.contains(frame))
    }

    /// Total number of frames.
    #[must_use]
    pub fn total_frames(&self) -> u64 {
        self.total_frames
    }

    /// Number of currently allocated frames (O(1): a maintained counter).
    #[must_use]
    pub fn allocated_frames(&self) -> u64 {
        self.allocated_count
    }

    fn check(&self, pa: PhysAddr, len: usize) -> Result<(), PhysError> {
        let end =
            pa.0.checked_add(len as u64)
                .ok_or(PhysError::OutOfRange(pa))?;
        if end > self.total_frames << PAGE_SHIFT {
            return Err(PhysError::OutOfRange(pa));
        }
        Ok(())
    }

    #[inline]
    fn frame_free(&self, idx: u64) -> bool {
        self.free[(idx / WORD_BITS) as usize] >> (idx % WORD_BITS) & 1 != 0
    }

    /// Re-derive both summary bits for frame word `w`.
    fn refresh_summaries(&mut self, w: usize) {
        let (sw, sbit) = (w / WORD_BITS as usize, (w % WORD_BITS as usize) as u64);
        if self.free[w] != 0 {
            self.free_summary[sw] |= 1 << sbit;
        } else {
            self.free_summary[sw] &= !(1 << sbit);
        }
        if self.free[w] & !self.reserved_mask[w] != 0 {
            self.avail_summary[sw] |= 1 << sbit;
        } else {
            self.avail_summary[sw] &= !(1 << sbit);
        }
    }

    #[inline]
    fn mark_allocated(&mut self, idx: u64) {
        let w = (idx / WORD_BITS) as usize;
        self.free[w] &= !(1 << (idx % WORD_BITS));
        self.refresh_summaries(w);
        self.allocated_count += 1;
    }

    #[inline]
    fn mark_free(&mut self, idx: u64) {
        let w = (idx / WORD_BITS) as usize;
        self.free[w] |= 1 << (idx % WORD_BITS);
        self.refresh_summaries(w);
        self.allocated_count -= 1;
    }

    /// First frame `>= start` and `< end` whose bit is set in `view of
    /// free`, using the chosen summary to skip empty words. `reserved`
    /// selects the generic-alloc view (`free & !reserved_mask`).
    fn scan_range(&mut self, start: u64, end: u64, skip_reserved: bool) -> Option<u64> {
        if start >= end {
            return None;
        }
        let word_of = |f: u64| (f / WORD_BITS) as usize;
        let view = |m: &PhysMemory, w: usize| {
            if skip_reserved {
                m.free[w] & !m.reserved_mask[w]
            } else {
                m.free[w]
            }
        };
        let summary = |m: &PhysMemory, sw: usize| {
            if skip_reserved {
                m.avail_summary[sw]
            } else {
                m.free_summary[sw]
            }
        };
        let first_word = word_of(start);
        let last_word = word_of(end - 1);

        // Partial first word.
        self.alloc_stats.words_scanned = self.alloc_stats.words_scanned.saturating_add(1);
        let mask = !0u64 << (start % WORD_BITS);
        let cand = view(self, first_word) & mask;
        if cand != 0 {
            let idx = first_word as u64 * WORD_BITS + u64::from(cand.trailing_zeros());
            if idx < end {
                return Some(idx);
            }
            return None; // first set bit already past `end`
        }
        // Full words, hopping via the summary.
        let mut w = first_word + 1;
        while w <= last_word {
            let sw = w / WORD_BITS as usize;
            self.alloc_stats.words_scanned = self.alloc_stats.words_scanned.saturating_add(1);
            let smask = !0u64 << (w % WORD_BITS as usize);
            let scand = summary(self, sw) & smask;
            if scand == 0 {
                // No candidate word in this summary span; skip it whole.
                w = (sw + 1) * WORD_BITS as usize;
                continue;
            }
            let cw = sw * WORD_BITS as usize + scand.trailing_zeros() as usize;
            if cw > last_word {
                return None;
            }
            self.alloc_stats.words_scanned = self.alloc_stats.words_scanned.saturating_add(1);
            let cand = view(self, cw);
            debug_assert!(cand != 0, "summary bit set on empty word");
            let idx = cw as u64 * WORD_BITS + u64::from(cand.trailing_zeros());
            if idx < end {
                return Some(idx);
            }
            return None;
        }
        None
    }

    /// Allocate one free frame anywhere in DRAM.
    pub fn alloc_frame(&mut self) -> Result<Frame, PhysError> {
        if self.alloc_injected() {
            return Err(PhysError::OutOfMemory);
        }
        let n = self.total_frames;
        if self.fast_scan {
            // First-fit from the hint with wraparound, exactly the
            // linear scan's circular visit order.
            let found = self
                .scan_range(self.next_hint, n, true)
                .or_else(|| self.scan_range(0, self.next_hint, true));
            if let Some(idx) = found {
                self.mark_allocated(idx);
                self.next_hint = (idx + 1) % n;
                self.alloc_stats.allocs = self.alloc_stats.allocs.saturating_add(1);
                return Ok(Frame(idx));
            }
            return Err(PhysError::OutOfMemory);
        }
        for i in 0..n {
            let idx = (self.next_hint + i) % n;
            self.alloc_stats.frames_scanned = self.alloc_stats.frames_scanned.saturating_add(1);
            if self.frame_free(idx) && !self.is_reserved(Frame(idx)) {
                self.mark_allocated(idx);
                self.next_hint = (idx + 1) % n;
                self.alloc_stats.allocs = self.alloc_stats.allocs.saturating_add(1);
                return Ok(Frame(idx));
            }
        }
        Err(PhysError::OutOfMemory)
    }

    /// Allocate one free frame inside `region`.
    pub fn alloc_frame_in(&mut self, region: Region) -> Result<Frame, PhysError> {
        if self.alloc_injected() {
            return Err(PhysError::OutOfMemory);
        }
        let end = region.end.0.min(self.total_frames);
        if self.fast_scan {
            if let Some(idx) = self.scan_range(region.start.0, end, false) {
                self.mark_allocated(idx);
                self.alloc_stats.allocs = self.alloc_stats.allocs.saturating_add(1);
                return Ok(Frame(idx));
            }
            return Err(PhysError::OutOfMemory);
        }
        for f in region.start.0..end {
            self.alloc_stats.frames_scanned = self.alloc_stats.frames_scanned.saturating_add(1);
            if self.frame_free(f) {
                self.mark_allocated(f);
                self.alloc_stats.allocs = self.alloc_stats.allocs.saturating_add(1);
                return Ok(Frame(f));
            }
        }
        Err(PhysError::OutOfMemory)
    }

    /// Arena path for sandbox boot: allocate `count` frames inside
    /// `region` in first-fit order, carrying the scan cursor across
    /// frames so a batch costs one pass instead of `count` rescans.
    ///
    /// Identical to `count` successive [`PhysMemory::alloc_frame_in`]
    /// calls in every observable way: same frames in the same order,
    /// same per-frame injected-failure consultation, and on failure the
    /// earlier frames of the batch stay allocated (the caller's teardown
    /// path owns them, exactly as with the loop it replaces).
    ///
    /// # Errors
    /// `OutOfMemory` when the region exhausts mid-batch or an injected
    /// allocation failure fires.
    pub fn alloc_frames_in(
        &mut self,
        region: Region,
        count: u64,
        out: &mut Vec<Frame>,
    ) -> Result<(), PhysError> {
        if !self.fast_scan {
            for _ in 0..count {
                out.push(self.alloc_frame_in(region)?);
            }
            return Ok(());
        }
        let end = region.end.0.min(self.total_frames);
        let mut cursor = region.start.0;
        for _ in 0..count {
            if self.alloc_injected() {
                return Err(PhysError::OutOfMemory);
            }
            let idx = self
                .scan_range(cursor, end, false)
                .ok_or(PhysError::OutOfMemory)?;
            self.mark_allocated(idx);
            self.alloc_stats.allocs = self.alloc_stats.allocs.saturating_add(1);
            out.push(Frame(idx));
            cursor = idx + 1;
        }
        Ok(())
    }

    /// Mark a specific frame allocated (used when reserving fixed regions).
    pub(crate) fn claim_frame(&mut self, frame: Frame) -> Result<(), PhysError> {
        if frame.0 >= self.total_frames {
            return Err(PhysError::OutOfRange(frame.base()));
        }
        if !self.frame_free(frame.0) {
            return Err(PhysError::AlreadyAllocated(frame));
        }
        self.mark_allocated(frame.0);
        Ok(())
    }

    /// Claim every frame of `region`.
    pub fn claim_region(&mut self, region: Region) -> Result<(), PhysError> {
        for f in region.start.0..region.end.0 {
            self.claim_frame(Frame(f))?;
        }
        Ok(())
    }

    /// Free a previously allocated frame and scrub its contents. Any
    /// TME-MK key programmed for the frame is revoked with it — a stale
    /// key must never survive into the frame's next owner.
    pub fn free_frame(&mut self, frame: Frame) -> Result<(), PhysError> {
        if frame.0 >= self.total_frames {
            return Err(PhysError::OutOfRange(frame.base()));
        }
        if self.frame_free(frame.0) {
            return Err(PhysError::NotAllocated(frame));
        }
        self.mark_free(frame.0);
        self.pages.remove(&frame.0);
        self.frame_keys.remove(&frame.0);
        self.mark_dirty(frame.0);
        Ok(())
    }

    /// Program the TME-MK key for a frame (the PCONFIG analogue).
    /// Key-ID 0 clears the entry back to "untagged". Like real PCONFIG,
    /// this does not flush translations — callers owe the same shootdown
    /// discipline as any permission revocation.
    pub fn set_frame_key(&mut self, frame: Frame, keyid: u16) {
        if keyid == 0 {
            self.frame_keys.remove(&frame.0);
        } else {
            self.frame_keys.insert(frame.0, keyid);
        }
        self.mark_dirty(frame.0);
    }

    /// The TME-MK key currently programmed for a frame (0 = untagged).
    #[must_use]
    pub fn frame_key(&self, frame: Frame) -> u16 {
        self.frame_keys.get(&frame.0).copied().unwrap_or(0)
    }

    /// Number of frames with a non-zero key programmed.
    #[must_use]
    pub fn keyed_frames(&self) -> usize {
        self.frame_keys.len()
    }

    /// Whether the frame is currently allocated.
    #[must_use]
    pub fn is_allocated(&self, frame: Frame) -> bool {
        frame.0 < self.total_frames && !self.frame_free(frame.0)
    }

    /// Zero an entire frame (used by the monitor's teardown scrubbing).
    pub fn zero_frame(&mut self, frame: Frame) -> Result<(), PhysError> {
        self.check(frame.base(), PAGE_SIZE)?;
        self.pages.remove(&frame.0);
        self.mark_dirty(frame.0);
        Ok(())
    }

    /// Read `buf.len()` bytes starting at `pa`. May cross frame boundaries.
    pub fn read(&self, pa: PhysAddr, buf: &mut [u8]) -> Result<(), PhysError> {
        self.check(pa, buf.len())?;
        let mut addr = pa.0;
        let mut done = 0usize;
        while done < buf.len() {
            let frame = addr >> PAGE_SHIFT;
            let off = (addr & (PAGE_SIZE as u64 - 1)) as usize;
            let chunk = (PAGE_SIZE - off).min(buf.len() - done);
            match self.pages.get(&frame) {
                Some(page) => buf[done..done + chunk].copy_from_slice(&page[off..off + chunk]),
                None => buf[done..done + chunk].fill(0),
            }
            addr += chunk as u64;
            done += chunk;
        }
        Ok(())
    }

    /// Write `buf` starting at `pa`. May cross frame boundaries.
    pub fn write(&mut self, pa: PhysAddr, buf: &[u8]) -> Result<(), PhysError> {
        self.check(pa, buf.len())?;
        let mut addr = pa.0;
        let mut done = 0usize;
        while done < buf.len() {
            let frame = addr >> PAGE_SHIFT;
            let off = (addr & (PAGE_SIZE as u64 - 1)) as usize;
            let chunk = (PAGE_SIZE - off).min(buf.len() - done);
            let page = self
                .pages
                .entry(frame)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            page[off..off + chunk].copy_from_slice(&buf[done..done + chunk]);
            self.mark_dirty(frame);
            addr += chunk as u64;
            done += chunk;
        }
        Ok(())
    }

    #[inline]
    fn mark_dirty(&mut self, frame: u64) {
        if self.dirty_tracking {
            self.dirty.insert(frame);
        }
    }

    // ----- dirty tracking + migration export ---------------------------

    /// Switch the dirty-page ledger on or off. Turning it on clears any
    /// previous ledger (a migration pre-copy starts from a full sweep, so
    /// older dirt is already covered).
    pub fn set_dirty_tracking(&mut self, on: bool) {
        self.dirty_tracking = on;
        self.dirty.clear();
    }

    /// Whether the dirty ledger is being maintained.
    #[must_use]
    pub fn dirty_tracking(&self) -> bool {
        self.dirty_tracking
    }

    /// Frames dirtied since the last drain (ledger size).
    #[must_use]
    pub fn dirty_count(&self) -> usize {
        self.dirty.len()
    }

    /// Drain the dirty ledger, returning the dirtied frame numbers in
    /// ascending order. Subsequent writes start a fresh ledger.
    pub fn take_dirty(&mut self) -> Vec<u64> {
        core::mem::take(&mut self.dirty).into_iter().collect()
    }

    /// Every resident (materialized, non-zero-backed) page, in ascending
    /// frame order — the migration pre-copy sweep. Pages never written
    /// read as zeroes on both ends, so only resident pages transfer.
    pub fn resident_pages(&self) -> impl Iterator<Item = (u64, &[u8; PAGE_SIZE])> + '_ {
        self.pages.iter().map(|(f, p)| (*f, &**p))
    }

    /// The resident page backing `frame`, if any.
    #[must_use]
    pub fn page_if_resident(&self, frame: u64) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.get(&frame).map(|p| &**p)
    }

    /// Serialize everything **except** page contents: DRAM geometry,
    /// allocator bitmap + hint, reserved regions, TME-MK frame keys and
    /// the scan-mode flag. Page contents travel separately as per-frame
    /// migration records so the pre-copy loop can resend only dirty ones.
    #[must_use]
    pub fn export_meta(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u64(self.total_frames);
        w.bool(self.fast_scan);
        w.u64(self.next_hint);
        w.seq(self.free.len());
        for word in &self.free {
            w.u64(*word);
        }
        w.seq(self.reserved.len());
        for r in &self.reserved {
            w.u64(r.start.0);
            w.u64(r.end.0);
        }
        w.seq(self.frame_keys.len());
        for (f, k) in &self.frame_keys {
            w.u64(*f);
            w.u16(*k);
        }
        w.finish()
    }

    /// Rebuild a memory from [`PhysMemory::export_meta`] bytes plus the
    /// staged page set. Summaries, the reserved mask and the allocated
    /// count are re-derived; host-side `alloc_stats` start at zero on the
    /// destination (they describe simulator scan work, not architecture).
    ///
    /// # Errors
    /// [`WireError`] on any truncation, trailing bytes, geometry
    /// mismatch, out-of-range frame, or wrongly-sized page.
    pub fn from_export(meta: &[u8], pages: &[(u64, Vec<u8>)]) -> Result<PhysMemory, WireError> {
        let mut r = WireReader::new(meta);
        let total_frames = r.u64()?;
        if total_frames == 0 || total_frames > (1 << 40) {
            return Err(WireError::BadValue {
                what: "total_frames",
            });
        }
        let fast_scan = r.bool()?;
        let next_hint = r.u64()?;
        if next_hint >= total_frames {
            return Err(WireError::BadValue { what: "next_hint" });
        }
        let mut mem = PhysMemory::new(total_frames << PAGE_SHIFT);
        mem.fast_scan = fast_scan;
        mem.next_hint = next_hint;
        let nwords = r.seq(8)?;
        if nwords != mem.free.len() {
            return Err(WireError::BadValue { what: "free words" });
        }
        let mut free = Vec::with_capacity(nwords);
        for _ in 0..nwords {
            free.push(r.u64()?);
        }
        // Bits past the last real frame must stay clear.
        let tail = total_frames % WORD_BITS;
        if tail != 0 && free[nwords - 1] & !((1u64 << tail) - 1) != 0 {
            return Err(WireError::BadValue { what: "free tail" });
        }
        let nregions = r.seq(16)?;
        for _ in 0..nregions {
            let start = r.u64()?;
            let end = r.u64()?;
            if start > end {
                return Err(WireError::BadValue { what: "region" });
            }
            mem.reserve_region(Region::new(start, end));
        }
        let nkeys = r.seq(10)?;
        for _ in 0..nkeys {
            let f = r.u64()?;
            let k = r.u16()?;
            if f >= total_frames || k == 0 {
                return Err(WireError::BadValue { what: "frame key" });
            }
            mem.frame_keys.insert(f, k);
        }
        r.finish()?;
        // Install the allocator bitmap last and re-derive everything that
        // hangs off it.
        let free_bits: u64 = free.iter().map(|w| u64::from(w.count_ones())).sum();
        mem.free = free;
        mem.allocated_count = total_frames - free_bits;
        for w in 0..mem.free.len() {
            mem.refresh_summaries(w);
        }
        for (frame, bytes) in pages {
            if *frame >= total_frames {
                return Err(WireError::BadValue { what: "page frame" });
            }
            if bytes.len() != PAGE_SIZE {
                return Err(WireError::BadValue { what: "page size" });
            }
            let mut boxed = Box::new([0u8; PAGE_SIZE]);
            boxed.copy_from_slice(bytes);
            mem.pages.insert(*frame, boxed);
        }
        Ok(mem)
    }

    /// Read a little-endian u64.
    pub fn read_u64(&self, pa: PhysAddr) -> Result<u64, PhysError> {
        let mut b = [0u8; 8];
        self.read(pa, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Write a little-endian u64.
    pub fn write_u64(&mut self, pa: PhysAddr, v: u64) -> Result<(), PhysError> {
        self.write(pa, &v.to_le_bytes())
    }
}

impl core::fmt::Debug for PhysMemory {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PhysMemory")
            .field("total_frames", &self.total_frames)
            .field("resident_pages", &self.pages.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazily_backed_reads_are_zero() {
        let mem = PhysMemory::new(1 << 20);
        let mut b = [0xffu8; 16];
        mem.read(PhysAddr(0x2000), &mut b).unwrap();
        assert_eq!(b, [0u8; 16]);
    }

    #[test]
    fn write_read_roundtrip_across_frames() {
        let mut mem = PhysMemory::new(1 << 20);
        let data: Vec<u8> = (0..9000).map(|i| (i % 251) as u8).collect();
        mem.write(PhysAddr(0xff0), &data).unwrap();
        let mut back = vec![0u8; data.len()];
        mem.read(PhysAddr(0xff0), &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut mem = PhysMemory::new(PAGE_SIZE as u64);
        assert!(mem.write(PhysAddr(PAGE_SIZE as u64 - 4), &[0; 8]).is_err());
        assert_eq!(mem.write(PhysAddr(0), &[0; 8]), Ok(()));
    }

    #[test]
    fn alloc_free_cycle() {
        let mut mem = PhysMemory::new(4 * PAGE_SIZE as u64);
        let a = mem.alloc_frame().unwrap();
        let b = mem.alloc_frame().unwrap();
        assert_ne!(a, b);
        assert!(mem.is_allocated(a));
        mem.free_frame(a).unwrap();
        assert!(!mem.is_allocated(a));
        assert_eq!(mem.free_frame(a), Err(PhysError::NotAllocated(a)));
    }

    #[test]
    fn alloc_exhaustion() {
        let mut mem = PhysMemory::new(2 * PAGE_SIZE as u64);
        mem.alloc_frame().unwrap();
        mem.alloc_frame().unwrap();
        assert_eq!(mem.alloc_frame(), Err(PhysError::OutOfMemory));
    }

    #[test]
    fn free_scrubs_contents() {
        let mut mem = PhysMemory::new(4 * PAGE_SIZE as u64);
        let f = mem.alloc_frame().unwrap();
        mem.write(f.base(), b"secret").unwrap();
        mem.free_frame(f).unwrap();
        mem.claim_frame(f).unwrap();
        let mut b = [0u8; 6];
        mem.read(f.base(), &mut b).unwrap();
        assert_eq!(&b, &[0u8; 6], "freed frame must be scrubbed");
    }

    #[test]
    fn frame_keys_default_zero_set_clear_and_revoke_on_free() {
        let mut mem = PhysMemory::new(8 * PAGE_SIZE as u64);
        let f = mem.alloc_frame().unwrap();
        assert_eq!(mem.frame_key(f), 0);
        mem.set_frame_key(f, 777);
        assert_eq!(mem.frame_key(f), 777);
        assert_eq!(mem.keyed_frames(), 1);
        mem.set_frame_key(f, 0);
        assert_eq!(mem.keyed_frames(), 0, "key-ID 0 clears the entry");
        mem.set_frame_key(f, 42);
        mem.free_frame(f).unwrap();
        assert_eq!(mem.frame_key(f), 0, "free must revoke the key");
        assert_eq!(mem.keyed_frames(), 0);
    }

    #[test]
    fn region_alloc_respects_bounds() {
        let mut mem = PhysMemory::new(16 * PAGE_SIZE as u64);
        let region = Region::new(4, 6);
        let f1 = mem.alloc_frame_in(region).unwrap();
        let f2 = mem.alloc_frame_in(region).unwrap();
        assert!(region.contains(f1) && region.contains(f2));
        assert_eq!(mem.alloc_frame_in(region), Err(PhysError::OutOfMemory));
    }

    #[test]
    fn claim_region_conflicts() {
        let mut mem = PhysMemory::new(16 * PAGE_SIZE as u64);
        mem.claim_region(Region::new(0, 4)).unwrap();
        assert_eq!(
            mem.claim_region(Region::new(3, 5)),
            Err(PhysError::AlreadyAllocated(Frame(3)))
        );
    }

    /// Deterministic xorshift for the equivalence drills below.
    fn xorshift(s: &mut u64) -> u64 {
        *s ^= *s << 13;
        *s ^= *s >> 7;
        *s ^= *s << 17;
        *s
    }

    /// The bitmap scan and the ablated linear scan must hand out the
    /// exact same frames in the exact same order across a randomized
    /// alloc/free/claim/reserve workout — the fast path is pure
    /// acceleration, never a policy change.
    #[test]
    fn fast_and_linear_scans_are_frame_identical() {
        for seed in [3u64, 0x5eed, 0xdead_beef] {
            let mut fast = PhysMemory::new(4096 * PAGE_SIZE as u64);
            let mut slow = PhysMemory::new(4096 * PAGE_SIZE as u64);
            slow.fast_scan = false;
            fast.reserve_region(Region::new(100, 300));
            slow.reserve_region(Region::new(100, 300));
            let cma = Region::new(1000, 2000);
            let mut live: Vec<Frame> = Vec::new();
            let mut s = seed;
            for _ in 0..4000 {
                match xorshift(&mut s) % 5 {
                    0 | 1 => {
                        let a = fast.alloc_frame();
                        let b = slow.alloc_frame();
                        assert_eq!(a, b);
                        if let Ok(f) = a {
                            live.push(f);
                        }
                    }
                    2 => {
                        let a = fast.alloc_frame_in(cma);
                        let b = slow.alloc_frame_in(cma);
                        assert_eq!(a, b);
                        if let Ok(f) = a {
                            live.push(f);
                        }
                    }
                    3 => {
                        let n = xorshift(&mut s) % 8;
                        let mut av = Vec::new();
                        let mut bv = Vec::new();
                        let a = fast.alloc_frames_in(cma, n, &mut av);
                        let b = slow.alloc_frames_in(cma, n, &mut bv);
                        assert_eq!(a, b);
                        assert_eq!(av, bv);
                        live.extend(av);
                    }
                    _ => {
                        if !live.is_empty() {
                            let i = (xorshift(&mut s) as usize) % live.len();
                            let f = live.swap_remove(i);
                            assert_eq!(fast.free_frame(f), slow.free_frame(f));
                        }
                    }
                }
                assert_eq!(fast.allocated_frames(), slow.allocated_frames());
            }
            // Exhaustive agreement at the end: every frame's state matches.
            for f in 0..fast.total_frames() {
                assert_eq!(
                    fast.is_allocated(Frame(f)),
                    slow.is_allocated(Frame(f)),
                    "frame {f} diverged (seed {seed:#x})"
                );
            }
        }
    }

    /// The arena path must equal a loop of single allocations, including
    /// the partial-batch state left behind by region exhaustion.
    #[test]
    fn arena_batch_equals_single_alloc_loop() {
        let region = Region::new(8, 20);
        let mut batched = PhysMemory::new(64 * PAGE_SIZE as u64);
        let mut looped = PhysMemory::new(64 * PAGE_SIZE as u64);
        // Pre-fragment both the same way.
        for m in [&mut batched, &mut looped] {
            for f in [9u64, 12, 13, 17] {
                m.claim_frame(Frame(f)).unwrap();
            }
        }
        let mut got = Vec::new();
        let err = batched.alloc_frames_in(region, 20, &mut got).unwrap_err();
        assert_eq!(err, PhysError::OutOfMemory);
        let mut expect = Vec::new();
        loop {
            match looped.alloc_frame_in(region) {
                Ok(f) => expect.push(f),
                Err(e) => {
                    assert_eq!(e, PhysError::OutOfMemory);
                    break;
                }
            }
        }
        assert_eq!(got, expect, "partial batch must match the loop's frames");
        for f in 0..batched.total_frames() {
            assert_eq!(
                batched.is_allocated(Frame(f)),
                looped.is_allocated(Frame(f))
            );
        }
    }

    /// O(1) claim: allocating 100k frames must stay within a fixed
    /// scan-work budget on the bitmap path (a handful of words per
    /// alloc), while the ablated path's per-frame probes blow through it
    /// — the deterministic core of the fleet bench's perf-meta assert.
    #[test]
    fn bitmap_alloc_100k_stays_in_scan_budget() {
        let mut mem = PhysMemory::new(200_000 * PAGE_SIZE as u64);
        for _ in 0..100_000 {
            mem.alloc_frame().unwrap();
        }
        let budget = 4 * 100_000;
        assert!(
            mem.alloc_stats.words_scanned <= budget,
            "bitmap path scanned {} words for 100k allocs (budget {budget})",
            mem.alloc_stats.words_scanned
        );
        assert_eq!(mem.alloc_stats.frames_scanned, 0, "fast path must not probe per frame");

        // Red counterpart: the ablated region scan pays a quadratic
        // number of per-frame probes for a small fraction of the work.
        let mut abl = PhysMemory::new(200_000 * PAGE_SIZE as u64);
        abl.fast_scan = false;
        let region = Region::new(0, 200_000);
        for _ in 0..2_000 {
            abl.alloc_frame_in(region).unwrap();
        }
        assert!(
            abl.alloc_stats.frames_scanned > budget as u64,
            "ablated scan did only {} probes for 2k region allocs — the \
             ablation toggle is not biting",
            abl.alloc_stats.frames_scanned
        );
    }

    /// Summary bitmaps stay coherent with the free words across
    /// reserve/claim/free churn at word boundaries.
    #[test]
    fn summaries_stay_coherent_at_boundaries() {
        let mut mem = PhysMemory::new(130 * PAGE_SIZE as u64); // 3 words, ragged tail
        mem.reserve_region(Region::new(60, 70)); // straddles word 0/1
        let mut got = Vec::new();
        while let Ok(f) = mem.alloc_frame() {
            got.push(f.0);
        }
        // Every non-reserved frame handed out exactly once, in order.
        let expect: Vec<u64> = (0..130).filter(|f| !(60..70).contains(f)).collect();
        assert_eq!(got, expect);
        assert_eq!(mem.allocated_frames(), expect.len() as u64);
        // Reserved span still reachable through the region path.
        let f = mem.alloc_frame_in(Region::new(60, 70)).unwrap();
        assert_eq!(f.0, 60);
    }

    /// Dirty tracking records exactly the frames written after the
    /// ledger is enabled, and take_dirty drains it.
    #[test]
    fn dirty_ledger_tracks_writes_only_while_enabled() {
        let mut mem = PhysMemory::new(64 * PAGE_SIZE as u64);
        mem.write(PhysAddr(0), &[1, 2, 3]).unwrap();
        assert_eq!(mem.dirty_count(), 0, "ledger off: no dirt recorded");
        mem.set_dirty_tracking(true);
        mem.write(PhysAddr(5 * PAGE_SIZE as u64), &[9]).unwrap();
        // A write straddling a page boundary dirties both frames.
        mem.write(PhysAddr(7 * PAGE_SIZE as u64 + 4090), &[0xAA; 16]).unwrap();
        let dirty = mem.take_dirty();
        assert_eq!(dirty, vec![5, 7, 8]);
        assert_eq!(mem.dirty_count(), 0, "take_dirty drains the ledger");
        mem.set_frame_key(Frame(3), 42);
        mem.zero_frame(Frame(5));
        let dirty = mem.take_dirty();
        assert_eq!(dirty, vec![3, 5], "key changes and zeroing count as dirt");
    }

    /// export_meta + resident pages round-trips allocator state exactly:
    /// the rebuilt memory hands out the same frames in the same order.
    #[test]
    fn export_import_roundtrip_is_exact() {
        let mut src = PhysMemory::new(200 * PAGE_SIZE as u64);
        src.reserve_region(Region::new(16, 24));
        let mut held = Vec::new();
        for _ in 0..40 {
            held.push(src.alloc_frame().unwrap());
        }
        // Free a few out of order to put structure in the bitmap/hint.
        src.free_frame(held[7]);
        src.free_frame(held[3]);
        src.write(PhysAddr(held[0].0 * PAGE_SIZE as u64), b"migrate-me").unwrap();
        src.set_frame_key(held[1], 7);

        let meta = src.export_meta();
        let pages: Vec<(u64, Vec<u8>)> =
            src.resident_pages().map(|(f, p)| (f, p.to_vec())).collect();
        let mut dst = PhysMemory::from_export(&meta, &pages).unwrap();

        assert_eq!(dst.total_frames(), src.total_frames());
        assert_eq!(dst.allocated_frames(), src.allocated_frames());
        assert_eq!(dst.frame_key(held[1]), src.frame_key(held[1]));
        let mut buf = [0u8; 10];
        dst.read(PhysAddr(held[0].0 * PAGE_SIZE as u64), &mut buf).unwrap();
        assert_eq!(&buf, b"migrate-me");
        // Same allocation sequence on both sides from here on.
        for _ in 0..20 {
            assert_eq!(src.alloc_frame().ok(), dst.alloc_frame().ok());
        }
    }

    /// Hostile import inputs land as typed errors, never panics.
    #[test]
    fn import_rejects_malformed_meta() {
        let mut src = PhysMemory::new(64 * PAGE_SIZE as u64);
        let f = src.alloc_frame().unwrap();
        let meta = src.export_meta();

        // Truncation at every byte boundary of the meta blob.
        for cut in 0..meta.len() {
            assert!(
                PhysMemory::from_export(&meta[..cut], &[]).is_err(),
                "truncated meta at {cut} must be rejected"
            );
        }
        // Trailing garbage.
        let mut long = meta.clone();
        long.push(0);
        assert!(PhysMemory::from_export(&long, &[]).is_err());
        // Out-of-range page frame and short page.
        assert!(PhysMemory::from_export(&meta, &[(64, vec![0; PAGE_SIZE])]).is_err());
        assert!(PhysMemory::from_export(&meta, &[(f.0, vec![0; 17])]).is_err());
    }
}
