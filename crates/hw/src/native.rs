//! Native-baseline MMU service: the raw page-table operations the
//! *privileged-kernel* baseline (Table 4's Native row) and the MMU
//! ablation configs perform directly, packaged behind a safe API.
//!
//! Under Erebor the kernel is deprivileged and every one of these
//! operations is delegated through the monitor's EMC gate. The baseline
//! kernel keeps ring-0 and does them itself — but the *code* that touches
//! raw frames, PTE slots, and TLB primitives still lives here, on the
//! hardware side of the privilege manifest (DESIGN.md §14), so the kernel
//! crate holds zero raw-state reach in either configuration and the
//! privilege auditor can enforce that statically.
//!
//! Every function charges exactly the simulated cycle costs the former
//! open-coded kernel paths charged; Table 4's MMU row is unchanged.

use crate::cpu::Machine;
use crate::paging::{self, Pte, PteFlags};
use crate::phys::{Frame, PhysAddr, PAGE_SIZE};
use crate::VirtAddr;

/// Why a native MMU operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NativeMmuError {
    /// Frame allocation or page-table growth failed.
    NoMemory,
    /// The VA has no present leaf mapping under the given root.
    NotMapped,
    /// The hardware refused the access (permission or mode check).
    Denied,
}

/// Build a user address space the native way: allocate a root PTP and
/// copy the kernel half (PML4 entries 256..512) from `kernel_root`,
/// charging one `mem_op` per entry as the open-coded loop did.
///
/// # Errors
/// [`NativeMmuError::NoMemory`] on allocation or copy failure.
pub fn create_address_space(m: &mut Machine, kernel_root: Frame) -> Result<Frame, NativeMmuError> {
    let root = m.mem.alloc_frame().map_err(|_| NativeMmuError::NoMemory)?;
    for idx in 256..512usize {
        let src = PhysAddr(kernel_root.base().0 + (idx * 8) as u64);
        let dst = PhysAddr(root.base().0 + (idx * 8) as u64);
        let v = m.mem.read_u64(src).map_err(|_| NativeMmuError::NoMemory)?;
        if v != 0 {
            m.mem
                .write_u64(dst, v)
                .map_err(|_| NativeMmuError::NoMemory)?;
        }
    }
    m.cycles.charge(256 * m.costs.mem_op);
    Ok(root)
}

/// Map one fresh anonymous user page at `va` with `flags`, returning the
/// backing frame. Charges `pte_store` per PTE written (leaf plus any
/// intermediate PTPs the walk had to grow).
///
/// # Errors
/// [`NativeMmuError::NoMemory`] on allocation or table-growth failure.
pub fn map_user_page(
    m: &mut Machine,
    root: Frame,
    va: VirtAddr,
    flags: PteFlags,
) -> Result<Frame, NativeMmuError> {
    let f = m.mem.alloc_frame().map_err(|_| NativeMmuError::NoMemory)?;
    let new_ptps = paging::map_raw(
        &mut m.mem,
        root,
        va,
        Pte::encode(f, flags),
        paging::intermediate_for(flags),
    )
    .map_err(|_| NativeMmuError::NoMemory)?;
    m.cycles.charge(m.costs.pte_store * (1 + new_ptps.len() as u64));
    Ok(f)
}

/// Unmap the leaf at `va`, invalidating only `cpu`'s own TLB entry
/// (`invlpg`), and return the frame that backed it. Callers unmapping a
/// whole range owe the cross-core IPI round themselves and batch it via
/// [`flush_mm_range`], as `flush_tlb_mm_range` amortizes it. The frame is
/// *not* freed — mapcount bookkeeping belongs to the caller; pass it to
/// [`free_user_frame`] when the last mapping drops.
///
/// # Errors
/// [`NativeMmuError::NotMapped`] if no present leaf exists;
/// [`NativeMmuError::Denied`] if the slot write or `invlpg` is refused.
pub fn unmap_user_page(
    m: &mut Machine,
    cpu: usize,
    root: Frame,
    va: VirtAddr,
) -> Result<Frame, NativeMmuError> {
    let leaf = paging::lookup_raw(&m.mem, root, va)
        .ok()
        .flatten()
        .ok_or(NativeMmuError::NotMapped)?;
    let slot = paging::leaf_slot(&m.mem, root, va)
        .ok()
        .flatten()
        .ok_or(NativeMmuError::NotMapped)?;
    m.mem
        .write_u64(slot, 0)
        .map_err(|_| NativeMmuError::Denied)?;
    m.cycles.charge(m.costs.pte_store);
    m.invalidate_page(cpu, va)
        .map_err(|_| NativeMmuError::Denied)?;
    Ok(leaf.frame())
}

/// Return an unmapped user frame to the allocator (last mapping gone).
pub fn free_user_frame(m: &mut Machine, f: Frame) {
    m.mem.free_frame(f).ok();
}

/// Native user copy (`stac`-window semantics at native cost): walks the
/// target address space and copies through physical memory. `write:
/// Some(bytes)` is `copy_to_user`; `None` reads `len` bytes out. Charges
/// `2 * stac` for the stac/clac pair plus a 4-level walk and per-chunk
/// memory ops, exactly as the open-coded kernel loop did.
///
/// # Errors
/// [`NativeMmuError::NotMapped`] on a hole,
/// [`NativeMmuError::Denied`] on a read-only target of a write.
pub fn user_copy(
    m: &mut Machine,
    root: Frame,
    va: VirtAddr,
    len: usize,
    write: Option<&[u8]>,
) -> Result<Vec<u8>, NativeMmuError> {
    let costs_stac = m.costs.stac;
    m.cycles.charge(2 * costs_stac); // stac + clac
    let mut out = vec![0u8; if write.is_some() { 0 } else { len }];
    let mut done = 0usize;
    while done < len {
        let cur = va.add(done as u64);
        let chunk = ((PAGE_SIZE as u64 - cur.page_offset()) as usize).min(len - done);
        let leaf = paging::lookup_raw(&m.mem, root, cur)
            .ok()
            .flatten()
            .ok_or(NativeMmuError::NotMapped)?;
        let pa = PhysAddr(leaf.frame().base().0 + cur.page_offset());
        match write {
            Some(bytes) => {
                if !leaf.writable() {
                    return Err(NativeMmuError::Denied);
                }
                m.mem
                    .write(pa, &bytes[done..done + chunk])
                    .map_err(|_| NativeMmuError::Denied)?;
            }
            None => {
                m.mem
                    .read(pa, &mut out[done..done + chunk])
                    .map_err(|_| NativeMmuError::Denied)?;
            }
        }
        m.cycles
            .charge(4 * m.costs.walk_level + m.costs.mem_op * (1 + chunk as u64 / 64));
        done += chunk;
    }
    Ok(out)
}

/// Read the full page backing `va` under `root`, if mapped (the reclaim
/// path's swap-out read). Returns `None` for holes or refused reads; no
/// cycle charge — the caller models the swap DMA cost.
#[must_use]
pub fn read_mapped_page(m: &Machine, root: Frame, va: VirtAddr) -> Option<Vec<u8>> {
    let leaf = paging::lookup_raw(&m.mem, root, va).ok().flatten()?;
    let mut contents = vec![0u8; PAGE_SIZE];
    m.mem.read(leaf.frame().base(), &mut contents).ok()?;
    Some(contents)
}

/// Whether `va` has a present leaf mapping under `root` (no access-check
/// side effects, no TLB fill).
#[must_use]
pub fn is_mapped(m: &Machine, root: Frame, va: VirtAddr) -> bool {
    paging::lookup_raw(&m.mem, root, va).ok().flatten().is_some()
}

/// One mm-targeted IPI round for a whole unmapped range
/// (`flush_tlb_mm_range`): the native kernel's batched follow-up to a
/// sequence of [`unmap_user_page`] calls. Failures (user-mode initiator)
/// are ignored, as the open-coded call sites did.
pub fn flush_mm_range(m: &mut Machine, cpu: usize, root: Frame, vas: &[VirtAddr]) {
    m.tlb_shootdown_mm(cpu, root, vas).ok();
}

/// The MMU-ablation CR3 switch: the monitor is present but MMU delegation
/// is disabled, so model the register write at native cost — `mov_cr`
/// plus the architectural full TLB flush — without the sensitive-
/// instruction check a real `write_cr3` would make.
pub fn switch_address_space_ablated(m: &mut Machine, cpu: usize, root: Frame) {
    m.cycles.charge(m.costs.mov_cr);
    m.cpus[cpu].cr3 = root;
    m.flush_tlb(cpu);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::Machine;

    fn machine() -> Machine {
        Machine::new(2, 8 * 1024 * 1024)
    }

    fn kernel_root(m: &mut Machine) -> Frame {
        let root = m.mem.alloc_frame().unwrap();
        // Populate one kernel-half PML4 entry so the copy has work.
        let slot = PhysAddr(root.base().0 + 300 * 8);
        m.mem.write_u64(slot, 0xdead_b000 | 1).unwrap();
        root
    }

    #[test]
    fn create_copies_kernel_half_and_charges() {
        let mut m = machine();
        let kroot = kernel_root(&mut m);
        let before = m.cycles.total();
        let root = create_address_space(&mut m, kroot).unwrap();
        assert_eq!(
            m.mem.read_u64(PhysAddr(root.base().0 + 300 * 8)).unwrap(),
            0xdead_b000 | 1
        );
        assert_eq!(m.cycles.total() - before, 256 * m.costs.mem_op);
    }

    #[test]
    fn map_unmap_round_trip() {
        let mut m = machine();
        let kroot = kernel_root(&mut m);
        let root = create_address_space(&mut m, kroot).unwrap();
        let va = VirtAddr(0x4000_0000);
        let f = map_user_page(&mut m, root, va, PteFlags::user_rw()).unwrap();
        assert!(is_mapped(&m, root, va));
        let page = read_mapped_page(&m, root, va).unwrap();
        assert_eq!(page.len(), PAGE_SIZE);
        let unmapped = unmap_user_page(&mut m, 0, root, va).unwrap();
        assert_eq!(unmapped, f);
        assert!(!is_mapped(&m, root, va));
        assert_eq!(
            unmap_user_page(&mut m, 0, root, va),
            Err(NativeMmuError::NotMapped)
        );
        free_user_frame(&mut m, f);
    }

    #[test]
    fn user_copy_round_trips_and_respects_write_protection() {
        let mut m = machine();
        let kroot = kernel_root(&mut m);
        let root = create_address_space(&mut m, kroot).unwrap();
        let va = VirtAddr(0x4000_0000);
        map_user_page(&mut m, root, va, PteFlags::user_rw()).unwrap();
        user_copy(&mut m, root, va, 5, Some(b"hello")).unwrap();
        assert_eq!(user_copy(&mut m, root, va, 5, None).unwrap(), b"hello");
        let ro = VirtAddr(0x4000_2000);
        map_user_page(&mut m, root, ro, PteFlags::user_ro()).unwrap();
        assert_eq!(
            user_copy(&mut m, root, ro, 1, Some(b"x")),
            Err(NativeMmuError::Denied)
        );
        // A hole faults rather than reading zeros.
        assert_eq!(
            user_copy(&mut m, root, VirtAddr(0x5000_0000), 1, None),
            Err(NativeMmuError::NotMapped)
        );
    }

    #[test]
    fn ablated_switch_sets_cr3_and_flushes() {
        let mut m = machine();
        let root = m.mem.alloc_frame().unwrap();
        let flushes = m.stats.tlb_flushes;
        switch_address_space_ablated(&mut m, 0, root);
        assert_eq!(m.cr3(0), root);
        assert_eq!(m.stats.tlb_flushes, flushes + 1);
    }
}
