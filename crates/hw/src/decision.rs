//! Flattened permission-decision cache backing the batched fast path.
//!
//! A decision memoizes the *entire* outcome of one allowed access — TLB
//! lookup, [`crate::mmu::check_access`] pipeline, frame resolution — for a
//! `(CR3, PKRS, mode, CR0, CR4, RFLAGS.AC)` register context, so the batch
//! executor ([`crate::cpu::Machine::run_batch`]) can replay hot straight-line
//! access sequences without rebuilding the MMU environment or re-running the
//! permission pipeline per access.
//!
//! Soundness is an equivalence argument, enforced by construction and
//! verified by the differential suite (`tests/fastpath_equivalence.rs`):
//! a cached decision may serve an access **only when the slow path would
//! have TLB-hit with the same verdict, frame, cycle charges, counters and
//! trace events**. Three mechanisms pin that down:
//!
//! 1. **Context key** ([`CachedCtx`]): the cache is valid only while every
//!    register the permission pipeline consults is byte-identical to the
//!    state it was filled under. Any CR/MSR/mode/AC change — including raw
//!    field pokes that bypass [`crate::cpu::Machine`] methods — is caught by
//!    comparison, not by write hooks.
//! 2. **MMU epoch**: every TLB-maintenance action (flush, `invlpg`,
//!    shootdown, pending-shootdown ledger change) bumps a machine-global
//!    epoch; a cache filled under an older epoch is dead. The epoch
//!    piggybacks on the same events that maintain the
//!    `pending_shootdowns` tolerated-stale ledger.
//! 3. **Slot coupling**: decisions are direct-mapped with the *same* index
//!    function as the TLB, and every TLB fill clears the decision slots at
//!    that index first — so a conflict eviction or same-page refill in the
//!    TLB can never leave a decision pointing at state the TLB no longer
//!    holds.
//!
//! Faults are never cached: a miss falls back to the slow path, which
//! raises the architecturally precise fault itself.
//!
//! **Keyed-memory (TME-MK) soundness.** The walk's key-ID comparison
//! ([`crate::mmu::translate`]) is covered by the same three mechanisms
//! without a dedicated field: a decision only exists for an access that
//! passed the keyed check at fill time, PKRS-grant changes are caught by
//! the [`CachedCtx`] compare, and *key revocation* (reprogramming a
//! frame's key via `set_frame_key`) is always accompanied by a
//! shootdown/epoch bump under the monitor's teardown discipline — the
//! same obligation real PCONFIG imposes (key changes require a TLB
//! flush). The chaos campaigns run the keyed backend against dropped
//! shootdown IPIs to check exactly that coupling.

use crate::fault::AccessKind;
use crate::phys::Frame;
use crate::tlb::TLB_ENTRIES;
use crate::VirtAddr;

/// The register context a decision cache was filled under: everything
/// [`crate::mmu::check_access`] and [`crate::cpu::Machine`]'s environment
/// builder consult. Compared wholesale against live state before any
/// cached decision is served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachedCtx {
    /// Page-table root (CR3).
    pub root: Frame,
    /// Raw CR0 (WP participates in write checks).
    pub cr0: u64,
    /// Raw CR4 (SMEP/SMAP/PKS enables).
    pub cr4: u64,
    /// Raw `IA32_PKRS` (supervisor protection-key rights).
    pub pkrs: u64,
    /// Privilege mode encoded as a bit (`true` = supervisor).
    pub supervisor: bool,
    /// RFLAGS.AC (SMAP override).
    pub ac: bool,
}

/// One cached allow-verdict: the access at `page` of the cached context's
/// address space resolved to `frame` and passed every permission check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Virtual page number (`va >> 12`).
    pub page: u64,
    /// Resolved physical frame.
    pub frame: Frame,
}

fn index(va: VirtAddr) -> usize {
    // Must match the TLB's index function: slot coupling relies on a TLB
    // fill and a decision for the same VA landing on the same index.
    ((va.0 >> 12) as usize) & (TLB_ENTRIES - 1)
}

/// A single core's permission-decision cache: separate direct-mapped
/// verdict arrays per access kind (reads and writes are distinct verdicts
/// — write additionally requires a dirty TLB entry — and execute mirrors
/// the TLB's instruction class).
#[derive(Debug, Clone)]
pub struct DecisionCache {
    ctx: Option<CachedCtx>,
    epoch: u64,
    read: [Option<Decision>; TLB_ENTRIES],
    write: [Option<Decision>; TLB_ENTRIES],
    exec: [Option<Decision>; TLB_ENTRIES],
}

impl Default for DecisionCache {
    fn default() -> DecisionCache {
        DecisionCache::new()
    }
}

impl DecisionCache {
    /// An empty cache with no context.
    #[must_use]
    pub fn new() -> DecisionCache {
        DecisionCache {
            ctx: None,
            epoch: 0,
            read: [None; TLB_ENTRIES],
            write: [None; TLB_ENTRIES],
            exec: [None; TLB_ENTRIES],
        }
    }

    /// The context the cache is currently valid for, if any.
    #[must_use]
    pub fn ctx(&self) -> Option<CachedCtx> {
        self.ctx
    }

    /// The MMU epoch the cache was (re)keyed under.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether the cache is live for exactly `(ctx, epoch)`. A mismatch on
    /// either component means every stored decision is stale.
    #[must_use]
    pub fn valid_for(&self, ctx: &CachedCtx, epoch: u64) -> bool {
        self.epoch == epoch && self.ctx.as_ref() == Some(ctx)
    }

    /// Drop every decision and re-key the cache to `(ctx, epoch)`.
    pub(crate) fn rekey(&mut self, ctx: CachedCtx, epoch: u64) {
        self.ctx = Some(ctx);
        self.epoch = epoch;
        self.read = [None; TLB_ENTRIES];
        self.write = [None; TLB_ENTRIES];
        self.exec = [None; TLB_ENTRIES];
    }

    fn class(&self, kind: AccessKind) -> &[Option<Decision>; TLB_ENTRIES] {
        match kind {
            AccessKind::Read => &self.read,
            AccessKind::Write => &self.write,
            AccessKind::Execute => &self.exec,
        }
    }

    fn class_mut(&mut self, kind: AccessKind) -> &mut [Option<Decision>; TLB_ENTRIES] {
        match kind {
            AccessKind::Read => &mut self.read,
            AccessKind::Write => &mut self.write,
            AccessKind::Execute => &mut self.exec,
        }
    }

    /// Cached verdict for `va`/`kind`, if one is stored. The caller is
    /// responsible for having checked [`DecisionCache::valid_for`] first.
    #[must_use]
    pub fn lookup(&self, va: VirtAddr, kind: AccessKind) -> Option<Decision> {
        let page = va.0 >> 12;
        self.class(kind)[index(va)].filter(|d| d.page == page)
    }

    /// Store an allow-verdict for `va`/`kind` resolving to `frame`.
    pub fn fill(&mut self, va: VirtAddr, kind: AccessKind, frame: Frame) {
        let page = va.0 >> 12;
        self.class_mut(kind)[index(va)] = Some(Decision { page, frame });
    }

    /// A TLB fill is about to land at `va`'s slot for `kind`'s class:
    /// clear the decision slots that slot backs, so no decision outlives
    /// the TLB entry it was derived from. Reads and writes share the TLB
    /// data class, so a data fill clears both verdict arrays.
    pub(crate) fn on_tlb_fill(&mut self, va: VirtAddr, kind: AccessKind) {
        let idx = index(va);
        if kind == AccessKind::Execute {
            self.exec[idx] = None;
        } else {
            self.read[idx] = None;
            self.write[idx] = None;
        }
    }

    /// Iterate every stored decision as `(kind, decision)` — the state
    /// auditor's C9 check re-validates each against the live TLB.
    pub fn entries(&self) -> impl Iterator<Item = (AccessKind, &Decision)> + '_ {
        let r = self.read.iter().flatten().map(|d| (AccessKind::Read, d));
        let w = self.write.iter().flatten().map(|d| (AccessKind::Write, d));
        let x = self.exec.iter().flatten().map(|d| (AccessKind::Execute, d));
        r.chain(w).chain(x)
    }

    /// Number of stored decisions (diagnostics / tests).
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.read
            .iter()
            .chain(self.write.iter())
            .chain(self.exec.iter())
            .flatten()
            .count()
    }
}

/// Fast-path observability counters. Deliberately **not** part of
/// [`crate::tlb::HwStats`]: the differential suite requires fastpath-on and
/// fastpath-off runs to produce byte-identical snapshots, so these live
/// outside every snapshot-visible structure.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FastpathStats {
    /// Batches submitted to [`crate::cpu::Machine::run_batch`].
    pub batches: u64,
    /// Accesses served from a cached decision.
    pub decision_hits: u64,
    /// Batch ops that took the slow path (decision miss, privileged op,
    /// cross-page access, or the fast path disabled entirely).
    pub slow_ops: u64,
    /// Cache re-keys forced by a context or epoch mismatch.
    pub rekeys: u64,
}

impl FastpathStats {
    /// Fraction of batch accesses served from a cached decision.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        // Widen before adding so saturated counters cannot wrap the sum.
        let total = u128::from(self.decision_hits) + u128::from(self.slow_ops);
        if total == 0 {
            0.0
        } else {
            self.decision_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> CachedCtx {
        CachedCtx {
            root: Frame(1),
            cr0: 0x8001_0001,
            cr4: 0x60_0000,
            pkrs: 0,
            supervisor: true,
            ac: false,
        }
    }

    #[test]
    fn lookup_keyed_by_page_and_kind() {
        let mut d = DecisionCache::new();
        d.rekey(ctx(), 7);
        let va = VirtAddr(0xffff_8000_0000_3000);
        d.fill(va, AccessKind::Read, Frame(9));
        assert_eq!(
            d.lookup(va, AccessKind::Read),
            Some(Decision {
                page: va.0 >> 12,
                frame: Frame(9)
            })
        );
        assert!(d.lookup(va, AccessKind::Write).is_none(), "kinds separate");
        assert!(d.lookup(VirtAddr(va.0 + 0x1000), AccessKind::Read).is_none());
        // Offsets within the page share the decision.
        assert!(d.lookup(VirtAddr(va.0 + 0x42), AccessKind::Read).is_some());
    }

    #[test]
    fn validity_requires_both_ctx_and_epoch() {
        let mut d = DecisionCache::new();
        d.rekey(ctx(), 7);
        assert!(d.valid_for(&ctx(), 7));
        assert!(!d.valid_for(&ctx(), 8), "epoch bump invalidates");
        let mut other = ctx();
        other.pkrs = 0b1100;
        assert!(!d.valid_for(&other, 7), "register change invalidates");
        assert!(!DecisionCache::new().valid_for(&ctx(), 0), "empty is invalid");
    }

    #[test]
    fn rekey_drops_all_decisions() {
        let mut d = DecisionCache::new();
        d.rekey(ctx(), 1);
        d.fill(VirtAddr(0x1000), AccessKind::Read, Frame(2));
        d.fill(VirtAddr(0x2000), AccessKind::Execute, Frame(3));
        assert_eq!(d.occupancy(), 2);
        d.rekey(ctx(), 2);
        assert_eq!(d.occupancy(), 0);
        assert_eq!(d.epoch(), 2);
    }

    #[test]
    fn tlb_fill_clears_both_data_classes_but_not_exec() {
        let mut d = DecisionCache::new();
        d.rekey(ctx(), 1);
        let va = VirtAddr(0x5000);
        d.fill(va, AccessKind::Read, Frame(2));
        d.fill(va, AccessKind::Write, Frame(2));
        d.fill(va, AccessKind::Execute, Frame(2));
        // A *different* page landing on the same slot index evicts the
        // data decisions (conflict in the TLB) but leaves the instruction
        // class alone.
        let conflict = VirtAddr(va.0 + (TLB_ENTRIES as u64) * 0x1000);
        d.on_tlb_fill(conflict, AccessKind::Read);
        assert!(d.lookup(va, AccessKind::Read).is_none());
        assert!(d.lookup(va, AccessKind::Write).is_none());
        assert!(d.lookup(va, AccessKind::Execute).is_some());
        d.on_tlb_fill(conflict, AccessKind::Execute);
        assert!(d.lookup(va, AccessKind::Execute).is_none());
    }

    #[test]
    fn hit_rate_math_and_saturation() {
        let s = FastpathStats {
            decision_hits: 3,
            slow_ops: 1,
            ..FastpathStats::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(FastpathStats::default().hit_rate(), 0.0);
        let sat = FastpathStats {
            decision_hits: u64::MAX,
            slow_ops: u64::MAX,
            ..FastpathStats::default()
        };
        assert!(sat.hit_rate().is_finite());
    }
}
