//! Per-core handles over the machine's mutable core-local state.
//!
//! Everything a single logical core mutates on its own behalf — its
//! register file, software TLB, supervisor shadow stack, permission-
//! decision cache, and interrupt nesting depth — lives in per-core slots
//! of the [`Machine`]'s vectors. A [`CoreHandle`] borrows exactly those
//! slots, disjointly from DRAM and from every other core, which:
//!
//! * makes the *confinement* of core-local mutation explicit in the type
//!   system (a handle cannot reach another core's TLB, nor raw DRAM),
//!   matching the privilege manifest's story that cross-core effects go
//!   through the shootdown/IPI primitives only; and
//! * is the seam for parallel per-core execution (ROADMAP item on
//!   multi-core parallelism): [`Machine::cores`] hands out one handle
//!   per core simultaneously, each independently mutable, because the
//!   borrows are provably disjoint.
//!
//! Machine-global state (DRAM, cycle accounting, the MMU epoch, the
//! staleness ledgers, stats) stays on [`Machine`] and is *not* reachable
//! through a handle — any operation needing both (a TLB fill, a
//! shootdown) belongs on `Machine` itself, which is exactly the set of
//! operations that must remain serialized.

use crate::cet::ShadowStack;
use crate::cpu::{Cpu, Machine};
use crate::decision::DecisionCache;
use crate::tlb::Tlb;

/// Exclusive access to one core's core-local mutable state. Obtained
/// from [`Machine::core`] (one core) or [`Machine::cores`] (all cores at
/// once, disjointly).
#[derive(Debug)]
pub struct CoreHandle<'m> {
    /// The core's index (its APIC id in the model).
    pub index: usize,
    /// The core's register file.
    pub cpu: &'m mut Cpu,
    /// The core's software TLB.
    pub tlb: &'m mut Tlb,
    /// The core's supervisor shadow stack.
    pub sstk: &'m mut ShadowStack,
    /// The core's permission-decision cache (batch fast path).
    pub decisions: &'m mut DecisionCache,
    /// The core's interrupt nesting depth.
    pub interrupt_depth: &'m mut u32,
}

impl Machine {
    /// Borrow core `cpu`'s core-local state as one handle. The borrow is
    /// disjoint from [`Machine::mem`] and from every other core's slots.
    ///
    /// # Panics
    /// If `cpu` is out of range (as every per-core accessor does).
    #[must_use]
    pub fn core(&mut self, cpu: usize) -> CoreHandle<'_> {
        self.core_split(cpu)
    }

    /// One [`CoreHandle`] per core, all live at once: the parallel-
    /// execution seam. Each handle is independently mutable because the
    /// underlying per-core vectors are split element-wise.
    #[must_use]
    pub fn cores(&mut self) -> Vec<CoreHandle<'_>> {
        self.cores_split()
    }
}

#[cfg(test)]
mod tests {
    use crate::cpu::Machine;
    use crate::VirtAddr;

    #[test]
    fn handle_reaches_exactly_the_cores_slots() {
        let mut m = Machine::new(2, 1024 * 1024);
        let depth_before = {
            let h = m.core(1);
            assert_eq!(h.index, 1);
            assert_eq!(h.cpu.id, 1);
            *h.interrupt_depth += 1;
            *h.interrupt_depth
        };
        assert_eq!(depth_before, 1);
        // The mutation landed on core 1 only.
        assert_eq!(*m.core(0).interrupt_depth, 0);
        assert_eq!(*m.core(1).interrupt_depth, 1);
    }

    #[test]
    fn all_cores_are_borrowable_simultaneously() {
        let mut m = Machine::new(4, 1024 * 1024);
        let mut handles = m.cores();
        assert_eq!(handles.len(), 4);
        // Mutate every core through its own live handle — disjointness
        // is what lets this compile.
        for h in &mut handles {
            *h.interrupt_depth = h.index as u32 + 1;
            h.tlb.invalidate_page(VirtAddr(0x1000));
        }
        drop(handles);
        for cpu in 0..4 {
            assert_eq!(*m.core(cpu).interrupt_depth, cpu as u32 + 1);
        }
    }
}
