//! Machine-state export/import for TD live migration.
//!
//! [`Machine::export_state`] serializes every *architectural* field of
//! the machine — register state, MSRs, TLB contents, trace rings, cycle
//! accounting, the CET registries, the staleness ledgers — into one
//! deterministic byte blob. Page contents are deliberately excluded:
//! they travel as individual per-frame migration records so the
//! pre-copy loop can resend only dirty frames ([`crate::phys::PhysMemory`]'s
//! dirty ledger).
//!
//! [`Machine::import_state`] rebuilds a machine from the blob plus the
//! staged page set, validating every length, tag and cross-field
//! invariant so a truncated, reordered or bit-flipped blob lands as a
//! typed [`WireError`] — never a half-imported machine. Host-side
//! observability state that is *not* architectural (the permission
//! decision caches, fast-path counters, allocator scan stats, the chaos
//! injector) is reset to fresh values on import: a migrated machine's
//! counters start at zero while its architectural state is
//! byte-identical.

use crate::cet::{EndbrRegistry, ShadowStack};
use crate::cycles::{Bucket, CycleCounter};
use crate::decision::DecisionCache;
use crate::mmu::EffPerms;
use crate::phys::{Frame, PhysMemory};
use crate::regs::{Cr0, Cr4, GprContext, Msr};
use crate::tlb::{Tlb, TlbEntry, TLB_ENTRIES};
use crate::VirtAddr;
use erebor_trace::{intern, TraceBuffer, TraceEvent, TraceRecord};
use erebor_wire::{WireError, WireReader, WireWriter};
use std::collections::{BTreeMap, BTreeSet};

use crate::cpu::{CpuMode, Domain, Machine};
use crate::idt::Idtr;

/// Format version stamped at the head of every export; import refuses
/// anything else (a silent cross-version decode would be state confusion
/// by construction).
pub const MACHINE_STATE_VERSION: u32 = 1;

fn put_event(w: &mut WireWriter, e: &TraceEvent) {
    match e {
        TraceEvent::GateEnter => w.u8(0),
        TraceEvent::GateExit => w.u8(1),
        TraceEvent::Emc { op, arg } => {
            w.u8(2);
            w.str(op);
            w.u64(*arg);
        }
        TraceEvent::PageFault { va_page, write } => {
            w.u8(3);
            w.u64(*va_page);
            w.bool(*write);
        }
        TraceEvent::TdcallLeave { leaf } => {
            w.u8(4);
            w.str(leaf);
        }
        TraceEvent::TdcallDone { ok } => {
            w.u8(5);
            w.bool(*ok);
        }
        TraceEvent::IpiSent { to } => {
            w.u8(6);
            w.u32(*to);
        }
        TraceEvent::IpiReceived { from } => {
            w.u8(7);
            w.u32(*from);
        }
        TraceEvent::IpiDropped { to } => {
            w.u8(8);
            w.u32(*to);
        }
        TraceEvent::IpiSpurious => w.u8(9),
        TraceEvent::ChaosFault { point } => {
            w.u8(10);
            w.str(point);
        }
        TraceEvent::TlbShootdown { root, page } => {
            w.u8(11);
            w.u64(*root);
            w.u64(*page);
        }
        TraceEvent::TlbInvlpg { page } => {
            w.u8(12);
            w.u64(*page);
        }
        TraceEvent::TlbFlush => w.u8(13),
        TraceEvent::TlbHit { root, page } => {
            w.u8(14);
            w.u64(*root);
            w.u64(*page);
        }
    }
}

fn get_event(r: &mut WireReader) -> Result<TraceEvent, WireError> {
    let tag = r.u8()?;
    Ok(match tag {
        0 => TraceEvent::GateEnter,
        1 => TraceEvent::GateExit,
        2 => TraceEvent::Emc {
            op: intern(r.str()?),
            arg: r.u64()?,
        },
        3 => TraceEvent::PageFault {
            va_page: r.u64()?,
            write: r.bool()?,
        },
        4 => TraceEvent::TdcallLeave {
            leaf: intern(r.str()?),
        },
        5 => TraceEvent::TdcallDone { ok: r.bool()? },
        6 => TraceEvent::IpiSent { to: r.u32()? },
        7 => TraceEvent::IpiReceived { from: r.u32()? },
        8 => TraceEvent::IpiDropped { to: r.u32()? },
        9 => TraceEvent::IpiSpurious,
        10 => TraceEvent::ChaosFault {
            point: intern(r.str()?),
        },
        11 => TraceEvent::TlbShootdown {
            root: r.u64()?,
            page: r.u64()?,
        },
        12 => TraceEvent::TlbInvlpg { page: r.u64()? },
        13 => TraceEvent::TlbFlush,
        14 => TraceEvent::TlbHit {
            root: r.u64()?,
            page: r.u64()?,
        },
        _ => {
            return Err(WireError::BadTag {
                what: "trace event",
                tag: u64::from(tag),
            })
        }
    })
}

fn put_ctx(w: &mut WireWriter, ctx: &GprContext) {
    for g in ctx.gpr {
        w.u64(g);
    }
    w.u64(ctx.rip);
    w.u64(ctx.rflags);
}

fn get_ctx(r: &mut WireReader) -> Result<GprContext, WireError> {
    let mut ctx = GprContext::default();
    for g in &mut ctx.gpr {
        *g = r.u64()?;
    }
    ctx.rip = r.u64()?;
    ctx.rflags = r.u64()?;
    Ok(ctx)
}

fn domain_tag(d: Domain) -> u8 {
    match d {
        Domain::Firmware => 0,
        Domain::Monitor => 1,
        Domain::Kernel => 2,
        Domain::User => 3,
    }
}

fn domain_from(tag: u8) -> Result<Domain, WireError> {
    Ok(match tag {
        0 => Domain::Firmware,
        1 => Domain::Monitor,
        2 => Domain::Kernel,
        3 => Domain::User,
        _ => {
            return Err(WireError::BadTag {
                what: "domain",
                tag: u64::from(tag),
            })
        }
    })
}

fn put_tlb_slot(w: &mut WireWriter, slot: &Option<TlbEntry>) {
    match slot {
        None => w.bool(false),
        Some(e) => {
            w.bool(true);
            w.u64(e.root.0);
            w.u64(e.page);
            w.u64(e.frame.0);
            w.bool(e.eff.writable);
            w.bool(e.eff.user);
            w.bool(e.eff.nx);
            w.u8(e.eff.pkey);
            w.u16(e.eff.keyid);
            w.bool(e.dirty);
        }
    }
}

fn get_tlb_slot(r: &mut WireReader) -> Result<Option<TlbEntry>, WireError> {
    if !r.bool()? {
        return Ok(None);
    }
    Ok(Some(TlbEntry {
        root: Frame(r.u64()?),
        page: r.u64()?,
        frame: Frame(r.u64()?),
        eff: EffPerms {
            writable: r.bool()?,
            user: r.bool()?,
            nx: r.bool()?,
            pkey: r.u8()?,
            keyid: r.u16()?,
        },
        dirty: r.bool()?,
    }))
}

impl Machine {
    /// Serialize every architectural field except page contents (see
    /// module docs). Deterministic: equal machines produce equal bytes.
    #[must_use]
    pub fn export_state(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u32(MACHINE_STATE_VERSION);
        let cores = self.cpus.len();
        w.usize(cores);

        w.bytes(&self.mem.export_meta());

        for c in &self.cpus {
            w.u8(if c.mode == CpuMode::Supervisor { 1 } else { 0 });
            w.u8(domain_tag(c.domain));
            put_ctx(&mut w, &c.ctx);
            w.u64(c.cr0.0);
            w.u64(c.cr3.0);
            w.u64(c.cr4.0);
            match c.idtr {
                None => w.bool(false),
                Some(i) => {
                    w.bool(true);
                    w.u64(i.base.0);
                }
            }
            w.seq(Msr::ALL.len());
            for m in Msr::ALL {
                w.u64(c.msr(m));
            }
        }

        let (cycles, totals, current) = self.cycles.to_parts();
        w.u64(cycles);
        for t in totals {
            w.u64(t);
        }
        w.usize(current);

        w.seq(self.endbr.len());
        for t in self.endbr.targets() {
            w.u64(t);
        }

        for s in &self.sstk {
            let (base, frames, active_on) = s.to_parts();
            w.u64(base.0);
            w.seq(frames.len());
            for f in frames {
                w.u64(*f);
            }
            match active_on {
                None => w.bool(false),
                Some(c) => {
                    w.bool(true);
                    w.usize(c);
                }
            }
        }

        for t in &self.tlbs {
            let (instr, data) = t.to_parts();
            for slot in instr.iter().chain(data.iter()) {
                put_tlb_slot(&mut w, slot);
            }
        }

        w.u64(self.stats.tlb_hits);
        w.u64(self.stats.tlb_misses);
        w.u64(self.stats.tlb_flushes);
        w.u64(self.stats.tlb_page_invalidations);
        w.u64(self.stats.tlb_shootdown_ipis);

        let (capacity, seq, dropped, rings) = self.trace.to_parts();
        w.usize(capacity);
        w.u64(seq);
        w.u64(dropped);
        w.seq(rings.len());
        for ring in &rings {
            w.seq(ring.len());
            for rec in ring {
                w.u64(rec.seq);
                w.u64(rec.cycles);
                w.u32(rec.cpu);
                put_event(&mut w, &rec.event);
            }
        }

        w.bool(self.tlb_enabled);
        w.bool(self.fastpath_enabled);
        w.bool(self.mmu_trace);

        w.seq(self.sensitive_domains().len());
        for d in self.sensitive_domains() {
            w.u8(domain_tag(*d));
        }

        w.seq(self.pending_shootdowns().len());
        for (cpu, page) in self.pending_shootdowns() {
            w.usize(*cpu);
            w.u64(*page);
        }
        w.seq(self.pending_asid_shootdowns().len());
        for (cpu, root) in self.pending_asid_shootdowns() {
            w.usize(*cpu);
            w.u64(*root);
        }

        for cpu in 0..cores {
            w.u32(self.interrupt_depth(cpu));
        }
        w.u64(self.mmu_epoch());

        w.finish()
    }

    /// Rebuild a machine from [`Machine::export_state`] bytes plus the
    /// staged page set. Non-architectural state (decision caches,
    /// fast-path counters, allocator scan stats, injector) starts fresh.
    ///
    /// # Errors
    /// [`WireError`] on any truncation, unknown tag, version mismatch,
    /// out-of-range core index, or inconsistent TLB slot.
    pub fn import_state(bytes: &[u8], pages: &[(u64, Vec<u8>)]) -> Result<Machine, WireError> {
        let mut r = WireReader::new(bytes);
        let version = r.u32()?;
        if version != MACHINE_STATE_VERSION {
            return Err(WireError::BadValue {
                what: "machine state version",
            });
        }
        let cores = r.usize()?;
        if cores == 0 || cores > 4096 {
            return Err(WireError::BadValue { what: "core count" });
        }

        let mem = PhysMemory::from_export(r.bytes()?, pages)?;

        let mut cpus = Vec::with_capacity(cores);
        for id in 0..cores {
            let mode = match r.u8()? {
                0 => CpuMode::User,
                1 => CpuMode::Supervisor,
                tag => {
                    return Err(WireError::BadTag {
                        what: "cpu mode",
                        tag: u64::from(tag),
                    })
                }
            };
            let domain = domain_from(r.u8()?)?;
            let ctx = get_ctx(&mut r)?;
            let cr0 = Cr0(r.u64()?);
            let cr3 = Frame(r.u64()?);
            let cr4 = Cr4(r.u64()?);
            let idtr = if r.bool()? {
                Some(Idtr {
                    base: VirtAddr(r.u64()?),
                })
            } else {
                None
            };
            let nmsrs = r.seq(8)?;
            if nmsrs != Msr::ALL.len() {
                return Err(WireError::BadValue { what: "msr count" });
            }
            let mut msrs = BTreeMap::new();
            for m in Msr::ALL {
                let v = r.u64()?;
                if v != 0 {
                    msrs.insert(m, v);
                }
            }
            cpus.push(crate::cpu::cpu_from_parts(
                id, mode, domain, ctx, cr0, cr3, cr4, idtr, msrs,
            ));
        }

        let cyc_total = r.u64()?;
        let mut totals = [0u64; Bucket::ALL.len()];
        for t in &mut totals {
            *t = r.u64()?;
        }
        let current = r.usize()?;
        let cycles = CycleCounter::from_parts(cyc_total, totals, current).ok_or(
            WireError::BadValue {
                what: "cycle counter",
            },
        )?;

        let ntargets = r.seq(8)?;
        let mut endbr = EndbrRegistry::new();
        for _ in 0..ntargets {
            endbr.add(VirtAddr(r.u64()?));
        }

        let mut sstk = Vec::with_capacity(cores);
        for _ in 0..cores {
            let base = VirtAddr(r.u64()?);
            let nframes = r.seq(8)?;
            let mut frames = Vec::with_capacity(nframes);
            for _ in 0..nframes {
                frames.push(r.u64()?);
            }
            let active_on = if r.bool()? {
                let c = r.usize()?;
                if c >= cores {
                    return Err(WireError::BadValue {
                        what: "sstk active core",
                    });
                }
                Some(c)
            } else {
                None
            };
            sstk.push(ShadowStack::from_parts(base, frames, active_on));
        }

        let mut tlbs = Vec::with_capacity(cores);
        for _ in 0..cores {
            let mut instr = [None; TLB_ENTRIES];
            for slot in &mut instr {
                *slot = get_tlb_slot(&mut r)?;
            }
            let mut data = [None; TLB_ENTRIES];
            for slot in &mut data {
                *slot = get_tlb_slot(&mut r)?;
            }
            let tlb = Tlb::from_parts(instr, data).ok_or(WireError::BadValue {
                what: "tlb slot placement",
            })?;
            tlbs.push(tlb);
        }

        let stats = crate::tlb::HwStats {
            tlb_hits: r.u64()?,
            tlb_misses: r.u64()?,
            tlb_flushes: r.u64()?,
            tlb_page_invalidations: r.u64()?,
            tlb_shootdown_ipis: r.u64()?,
        };

        let capacity = r.usize()?;
        if capacity > 1 << 24 {
            return Err(WireError::BadValue {
                what: "trace capacity",
            });
        }
        let seq = r.u64()?;
        let dropped = r.u64()?;
        let nrings = r.seq(8)?;
        if nrings != cores {
            return Err(WireError::BadValue { what: "ring count" });
        }
        let mut rings = Vec::with_capacity(nrings);
        for _ in 0..nrings {
            let nrec = r.seq(21)?;
            if nrec > capacity {
                return Err(WireError::BadValue {
                    what: "ring overflow",
                });
            }
            let mut ring = Vec::with_capacity(nrec);
            for _ in 0..nrec {
                ring.push(TraceRecord {
                    seq: r.u64()?,
                    cycles: r.u64()?,
                    cpu: r.u32()?,
                    event: get_event(&mut r)?,
                });
            }
            rings.push(ring);
        }
        let trace = TraceBuffer::from_parts(capacity, seq, dropped, rings);

        let tlb_enabled = r.bool()?;
        let fastpath_enabled = r.bool()?;
        let mmu_trace = r.bool()?;

        let nsens = r.seq(1)?;
        let mut sensitive = BTreeSet::new();
        for _ in 0..nsens {
            sensitive.insert(domain_from(r.u8()?)?);
        }

        let npend = r.seq(16)?;
        let mut pending = BTreeSet::new();
        for _ in 0..npend {
            let cpu = r.usize()?;
            if cpu >= cores {
                return Err(WireError::BadValue {
                    what: "shootdown cpu",
                });
            }
            pending.insert((cpu, r.u64()?));
        }
        let nasid = r.seq(16)?;
        let mut pending_asid = BTreeSet::new();
        for _ in 0..nasid {
            let cpu = r.usize()?;
            if cpu >= cores {
                return Err(WireError::BadValue {
                    what: "asid shootdown cpu",
                });
            }
            pending_asid.insert((cpu, r.u64()?));
        }

        let mut depth = Vec::with_capacity(cores);
        for _ in 0..cores {
            depth.push(r.u32()?);
        }
        let mmu_epoch = r.u64()?;
        r.finish()?;

        let mut m = Machine::new(cores, 0x1000); // placeholder DRAM, replaced below
        m.mem = mem;
        m.cpus = cpus;
        m.cycles = cycles;
        m.endbr = endbr;
        m.sstk = sstk;
        m.tlbs = tlbs;
        m.stats = stats;
        m.trace = trace;
        m.tlb_enabled = tlb_enabled;
        m.fastpath_enabled = fastpath_enabled;
        m.mmu_trace = mmu_trace;
        crate::cpu::machine_set_private(
            &mut m,
            sensitive,
            pending,
            pending_asid,
            depth,
            (0..cores).map(|_| DecisionCache::new()).collect(),
            mmu_epoch,
        );
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::AccessKind;
    use crate::paging::{map_raw, Pte, PteFlags};

    fn busy_machine() -> Machine {
        let mut m = Machine::new(2, 8 * 1024 * 1024);
        m.allow_sensitive(Domain::Monitor);
        let root = m.mem.alloc_frame().unwrap();
        for c in &mut m.cpus {
            c.cr3 = root;
            c.cr0 = Cr0(Cr0::WP | Cr0::PG);
            c.cr4 = Cr4(Cr4::SMEP | Cr4::SMAP | Cr4::PKS);
            c.domain = Domain::Monitor;
        }
        let f = m.mem.alloc_frame().unwrap();
        map_raw(
            &mut m.mem,
            root,
            VirtAddr(0xffff_8000_0000_0000),
            Pte::encode(f, PteFlags::kernel_rw(0)),
            crate::paging::intermediate_for(PteFlags::kernel_rw(0)),
        )
        .unwrap();
        m.wrmsr(0, Msr::Pkrs, 0b1100).unwrap();
        m.write(0, VirtAddr(0xffff_8000_0000_0010), b"payload").unwrap();
        let mut buf = [0u8; 7];
        m.read(1, VirtAddr(0xffff_8000_0000_0010), &mut buf).unwrap();
        m.endbr.add(VirtAddr(0x40_1000));
        m.sstk[0].push(VirtAddr(0xdead_b000));
        m.trace_event(0, TraceEvent::Emc { op: "create", arg: 3 });
        m.trace_event(1, TraceEvent::ChaosFault { point: "wrmsr" });
        m
    }

    /// The full machine blob round-trips: identical trace JSON, cycles,
    /// register state, TLB contents — and the destination behaves
    /// identically afterwards.
    #[test]
    fn machine_state_roundtrips() {
        let src = busy_machine();
        let blob = src.export_state();
        let pages: Vec<(u64, Vec<u8>)> = src
            .mem
            .resident_pages()
            .map(|(f, p)| (f, p.to_vec()))
            .collect();
        let mut dst = Machine::import_state(&blob, &pages).unwrap();

        assert_eq!(dst.trace.json(), src.trace.json(), "trace rings differ");
        assert_eq!(dst.cycles.total(), src.cycles.total());
        assert_eq!(dst.cycles.attribution(), src.cycles.attribution());
        assert_eq!(dst.stats, src.stats);
        assert_eq!(dst.mmu_epoch(), src.mmu_epoch());
        assert_eq!(dst.cpus[0].msr(Msr::Pkrs), 0b1100);
        assert_eq!(dst.cpus[0].domain, Domain::Monitor);
        for cpu in 0..2 {
            assert_eq!(dst.tlbs[cpu].occupancy(), src.tlbs[cpu].occupancy());
        }
        assert!(dst.sensitive_allowed(Domain::Monitor));
        assert_eq!(dst.sstk[0].depth(), 1);
        assert!(dst.endbr.is_target(VirtAddr(0x40_1000)));
        // Re-export is byte-identical: the codec is a fixed point.
        assert_eq!(dst.export_state(), blob);
        // Behavioural check: the mapped page reads back through the MMU.
        let mut buf = [0u8; 7];
        dst.read(0, VirtAddr(0xffff_8000_0000_0010), &mut buf).unwrap();
        assert_eq!(&buf, b"payload");
    }

    /// Every truncation of the blob is a typed error, never a panic or a
    /// half-imported machine.
    #[test]
    fn truncated_blob_rejected_at_every_boundary() {
        let src = busy_machine();
        let blob = src.export_state();
        let pages: Vec<(u64, Vec<u8>)> = src
            .mem
            .resident_pages()
            .map(|(f, p)| (f, p.to_vec()))
            .collect();
        // Sweep a prefix region densely and the rest sparsely (the blob
        // is large; every boundary of the first 2 KiB plus every 97th
        // byte after covers all field kinds).
        for cut in (0..blob.len().min(2048)).chain((2048..blob.len()).step_by(97)) {
            assert!(
                Machine::import_state(&blob[..cut], &pages).is_err(),
                "cut {cut} accepted"
            );
        }
        let mut long = blob.clone();
        long.push(0);
        assert!(Machine::import_state(&long, &pages).is_err());
    }

    /// A corrupted TLB slot placement (entry in the wrong direct-mapped
    /// slot) is refused — import never accepts a TLB the hardware could
    /// not have built.
    #[test]
    fn version_and_tag_corruption_rejected() {
        let src = busy_machine();
        let blob = src.export_state();
        let mut wrong_ver = blob.clone();
        wrong_ver[0] ^= 0xff;
        assert!(Machine::import_state(&wrong_ver, &[]).is_err());
    }

    /// Quiesce drains both staleness ledgers; on a machine with empty
    /// ledgers it is a complete no-op (the migration must be invisible
    /// to clean same-seed runs).
    #[test]
    fn quiesce_drains_ledgers_and_is_noop_when_clean() {
        let mut m = busy_machine();
        let blob_before = m.export_state();
        let (pages, asids) = m.quiesce_for_migration();
        assert_eq!((pages, asids), (0, 0));
        assert_eq!(m.export_state(), blob_before, "clean quiesce must not mutate");

        // Seed stale rows the way a chaos run would, then quiesce.
        crate::cpu::machine_seed_ledgers_for_test(
            &mut m,
            [(1usize, 0x40u64)].into_iter().collect(),
            [(0usize, 0u64)].into_iter().collect(),
        );
        let (pages, asids) = m.quiesce_for_migration();
        assert_eq!((pages, asids), (1, 1));
        assert!(m.pending_shootdowns().is_empty());
        assert!(m.pending_asid_shootdowns().is_empty());
        // Drain delivered the lost invalidations: no TLB on any core may
        // still hold an entry the ledger tolerated.
        assert_eq!(m.tlbs[0].occupancy(), 0, "asid row drains via full flush");
    }

    #[test]
    fn import_resets_nonarchitectural_counters() {
        let mut src = busy_machine();
        // Drive the batch fast path so fastpath counters are nonzero.
        let ops = [
            crate::cpu::BatchOp::Probe {
                va: VirtAddr(0xffff_8000_0000_0010),
                kind: AccessKind::Read,
            };
            4
        ];
        src.run_batch(0, &ops);
        assert!(src.fastpath.batches > 0);
        let pages: Vec<(u64, Vec<u8>)> = src
            .mem
            .resident_pages()
            .map(|(f, p)| (f, p.to_vec()))
            .collect();
        let dst = Machine::import_state(&src.export_state(), &pages).unwrap();
        assert_eq!(dst.fastpath, Default::default());
        assert_eq!(dst.mem.alloc_stats, Default::default());
        assert_eq!(dst.decision_cache(0).occupancy(), 0, "decision caches start cold");
    }
}
