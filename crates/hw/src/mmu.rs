//! The MMU: checked virtual-to-physical translation.
//!
//! Implements the full x86-64-style permission pipeline the paper's
//! enforcement relies on: present/walk checks, write permission with
//! `CR0.WP`, NX, user/supervisor separation, SMEP, SMAP with the `AC`
//! override, and supervisor protection keys (PKS) against the per-core
//! `IA32_PKRS` register. Accessed/dirty bits are set by the walker itself
//! (hardware-initiated stores bypass permission checks, as on real silicon).

use crate::fault::{AccessKind, Fault, PfReason};
use crate::paging::{pte_slot, Pte};
use crate::phys::{Frame, PhysAddr, PhysMemory};
use crate::regs::{Cr0, Cr4, PkrsPerms, Rflags};
use crate::{CpuMode, VirtAddr};

/// Register state the MMU consults on each translation.
#[derive(Debug, Clone, Copy)]
pub struct MmuEnv {
    /// Page-table root frame (CR3).
    pub root: Frame,
    /// CR0 (WP).
    pub cr0: Cr0,
    /// CR4 (SMEP/SMAP/PKS).
    pub cr4: Cr4,
    /// Current privilege mode.
    pub mode: CpuMode,
    /// RFLAGS (AC bit gates SMAP).
    pub rflags: Rflags,
    /// Per-core supervisor protection-key rights.
    pub pkrs: PkrsPerms,
}

/// Effective permissions accumulated over a full walk (AND of W and U/S
/// across levels, OR of NX) plus the leaf's protection key — exactly the
/// state a TLB entry caches, and everything [`check_access`] needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EffPerms {
    /// Writable at every level.
    pub writable: bool,
    /// User-accessible at every level.
    pub user: bool,
    /// No-execute at any level.
    pub nx: bool,
    /// Leaf supervisor protection key.
    pub pkey: u8,
    /// Leaf TME-MK key-ID (0 = untagged). Checked against the frame's
    /// programmed key at *walk* time, not on every hit: key changes
    /// require a flush (PCONFIG semantics), which the shootdown/epoch
    /// discipline already provides.
    pub keyid: u16,
}

/// Result of a successful translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// Resolved physical address.
    pub pa: PhysAddr,
    /// The leaf PTE after A/D update.
    pub pte: Pte,
    /// Number of page-table levels read (for cycle accounting).
    pub levels_walked: u8,
    /// Effective permissions of the mapping (TLB fill state).
    pub eff: EffPerms,
}

fn pf(va: VirtAddr, access: AccessKind, reason: PfReason) -> Fault {
    Fault::PageFault { va, access, reason }
}

/// The architectural permission pipeline, evaluated against the *current*
/// register state and a mapping's effective permissions.
///
/// Shared by the walker (fresh permissions) and the TLB hit path (cached
/// permissions), so a TLB-on and a TLB-off translation of the same state
/// produce the same verdict and the same [`PfReason`]. Keeping the
/// register checks here — outside the cached state — is what makes
/// PKRS/CR4/CR0.WP writes flush-free, as on silicon.
///
/// # Errors
/// Returns the precise [`Fault`] the hardware would raise.
pub fn check_access(
    env: &MmuEnv,
    va: VirtAddr,
    access: AccessKind,
    eff: EffPerms,
) -> Result<(), Fault> {
    match access {
        AccessKind::Write => {
            // Supervisor writes honour RO mappings only when CR0.WP is set;
            // user writes always honour them.
            let wp_applies = env.mode == CpuMode::User || env.cr0.wp();
            if !eff.writable && wp_applies {
                return Err(pf(va, access, PfReason::NotWritable));
            }
        }
        AccessKind::Execute => {
            if eff.nx {
                return Err(pf(va, access, PfReason::NoExecute));
            }
        }
        AccessKind::Read => {}
    }

    match env.mode {
        CpuMode::User => {
            if !eff.user {
                return Err(pf(va, access, PfReason::UserAccessToSupervisor));
            }
        }
        CpuMode::Supervisor => {
            if eff.user {
                // SMEP: never execute user pages from supervisor mode.
                if access == AccessKind::Execute && env.cr4.smep() {
                    return Err(pf(va, access, PfReason::Smep));
                }
                // SMAP: no supervisor data access to user pages unless AC.
                if access.is_data() && env.cr4.smap() && !env.rflags.ac() {
                    return Err(pf(va, access, PfReason::Smap));
                }
            } else if env.cr4.pks() {
                // PKS applies to supervisor (U/S = 0) data pages only.
                if env.pkrs.access_disabled(eff.pkey) && access.is_data() {
                    return Err(pf(va, access, PfReason::PksAccessDisabled));
                }
                if env.pkrs.write_disabled(eff.pkey) && access == AccessKind::Write {
                    return Err(pf(va, access, PfReason::PksWriteDisabled));
                }
            }
        }
    }
    Ok(())
}

/// Translate `va` for `access` under `env`, enforcing every architectural
/// permission check and updating accessed/dirty bits on success.
///
/// # Errors
/// Returns the precise [`Fault`] the hardware would raise.
pub fn translate(
    mem: &mut PhysMemory,
    env: &MmuEnv,
    va: VirtAddr,
    access: AccessKind,
) -> Result<Translation, Fault> {
    if !va.is_canonical() {
        return Err(Fault::GeneralProtection("non-canonical address"));
    }

    // Walk the four levels, accumulating effective permissions.
    let mut tbl = env.root;
    let mut eff_writable = true;
    let mut eff_user = true;
    let mut eff_nx = false;
    let mut leaf = Pte::empty();
    let mut leaf_pa = PhysAddr(0);
    let mut levels_walked = 0u8;
    for level in (1..=4u8).rev() {
        let slot = pte_slot(tbl, va, level);
        let entry = Pte(mem
            .read_u64(slot)
            .map_err(|_| Fault::Unrecoverable("page-table walk left DRAM"))?);
        levels_walked += 1;
        if !entry.present() {
            return Err(pf(va, access, PfReason::NotPresent));
        }
        eff_writable &= entry.writable();
        eff_user &= entry.user();
        eff_nx |= entry.nx();
        if level == 1 {
            leaf = entry;
            leaf_pa = slot;
        } else {
            tbl = entry.frame();
        }
    }
    let eff = EffPerms {
        writable: eff_writable,
        user: eff_user,
        nx: eff_nx,
        pkey: leaf.pkey(),
        keyid: leaf.keyid(),
    };

    check_access(env, va, access, eff)?;

    // TME-MK keyed-memory check: the mapping's key-ID must match the
    // key programmed for the frame. Walk-time only — a TLB hit reuses
    // the verdict, exactly like hardware caching a translation made
    // under the current key programming.
    if leaf.keyid() != mem.frame_key(leaf.frame()) {
        return Err(pf(va, access, PfReason::KeyMismatch));
    }

    // Hardware A/D update (bypasses permission checks).
    let updated = leaf.with_ad(access == AccessKind::Write);
    if updated != leaf {
        mem.write_u64(leaf_pa, updated.0)
            .map_err(|_| Fault::Unrecoverable("A/D update left DRAM"))?;
    }

    Ok(Translation {
        pa: PhysAddr(updated.frame().base().0 + va.page_offset()),
        pte: updated,
        levels_walked,
        eff,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paging::{map_raw, PteFlags};

    fn setup() -> (PhysMemory, Frame) {
        let mut m = PhysMemory::new(64 * 1024 * 1024);
        let root = m.alloc_frame().unwrap();
        (m, root)
    }

    fn env(root: Frame) -> MmuEnv {
        MmuEnv {
            root,
            cr0: Cr0(Cr0::WP | Cr0::PG),
            cr4: Cr4(Cr4::SMEP | Cr4::SMAP | Cr4::PKS),
            mode: CpuMode::Supervisor,
            rflags: Rflags(0),
            pkrs: PkrsPerms::GRANT_ALL,
        }
    }

    fn map(m: &mut PhysMemory, root: Frame, va: u64, flags: PteFlags) -> Frame {
        let f = m.alloc_frame().unwrap();
        map_raw(
            m,
            root,
            VirtAddr(va),
            Pte::encode(f, flags),
            crate::paging::intermediate_for(flags),
        )
        .unwrap();
        f
    }

    #[test]
    fn basic_read_write_translate() {
        let (mut m, root) = setup();
        let f = map(
            &mut m,
            root,
            0xffff_8000_0000_0000u64,
            PteFlags::kernel_rw(0),
        );
        let t = translate(
            &mut m,
            &env(root),
            VirtAddr(0xffff_8000_0000_0123),
            AccessKind::Write,
        )
        .unwrap();
        assert_eq!(t.pa, PhysAddr(f.base().0 + 0x123));
        assert!(t.pte.dirty());
    }

    #[test]
    fn not_present_faults() {
        let (mut m, root) = setup();
        let err = translate(&mut m, &env(root), VirtAddr(0x1000), AccessKind::Read).unwrap_err();
        assert!(err.is_pf(PfReason::NotPresent));
    }

    #[test]
    fn write_to_ro_faults_with_wp() {
        let (mut m, root) = setup();
        map(
            &mut m,
            root,
            0xffff_8000_0000_0000u64,
            PteFlags::kernel_ro(0),
        );
        let err = translate(
            &mut m,
            &env(root),
            VirtAddr(0xffff_8000_0000_0000),
            AccessKind::Write,
        )
        .unwrap_err();
        assert!(err.is_pf(PfReason::NotWritable));
    }

    #[test]
    fn supervisor_write_to_ro_allowed_without_wp() {
        let (mut m, root) = setup();
        map(
            &mut m,
            root,
            0xffff_8000_0000_0000u64,
            PteFlags::kernel_ro(0),
        );
        let mut e = env(root);
        e.cr0 = Cr0(Cr0::PG); // WP clear
        assert!(
            translate(
                &mut m,
                &e,
                VirtAddr(0xffff_8000_0000_0000),
                AccessKind::Write
            )
            .is_ok(),
            "WP=0 lets the supervisor ignore RO — exactly why Erebor pins CR0"
        );
    }

    #[test]
    fn nx_blocks_execute() {
        let (mut m, root) = setup();
        map(
            &mut m,
            root,
            0xffff_8000_0000_0000u64,
            PteFlags::kernel_rw(0),
        );
        let err = translate(
            &mut m,
            &env(root),
            VirtAddr(0xffff_8000_0000_0000),
            AccessKind::Execute,
        )
        .unwrap_err();
        assert!(err.is_pf(PfReason::NoExecute));
    }

    #[test]
    fn user_cannot_touch_supervisor_pages() {
        let (mut m, root) = setup();
        map(&mut m, root, 0x40_0000, PteFlags::kernel_rw(0));
        let mut e = env(root);
        e.mode = CpuMode::User;
        let err = translate(&mut m, &e, VirtAddr(0x40_0000), AccessKind::Read).unwrap_err();
        assert!(err.is_pf(PfReason::UserAccessToSupervisor));
    }

    #[test]
    fn smep_blocks_supervisor_exec_of_user_pages() {
        let (mut m, root) = setup();
        map(&mut m, root, 0x40_0000, PteFlags::user_rx());
        let err =
            translate(&mut m, &env(root), VirtAddr(0x40_0000), AccessKind::Execute).unwrap_err();
        assert!(err.is_pf(PfReason::Smep));
    }

    #[test]
    fn smap_blocks_supervisor_data_access_unless_ac() {
        let (mut m, root) = setup();
        map(&mut m, root, 0x40_0000, PteFlags::user_rw());
        let err = translate(&mut m, &env(root), VirtAddr(0x40_0000), AccessKind::Read).unwrap_err();
        assert!(err.is_pf(PfReason::Smap));
        let mut e = env(root);
        e.rflags = Rflags(Rflags::AC);
        assert!(translate(&mut m, &e, VirtAddr(0x40_0000), AccessKind::Read).is_ok());
    }

    #[test]
    fn pks_access_disable_blocks_reads_and_writes() {
        let (mut m, root) = setup();
        map(
            &mut m,
            root,
            0xffff_8000_0000_0000u64,
            PteFlags::kernel_rw(5),
        );
        let mut e = env(root);
        e.pkrs = PkrsPerms::GRANT_ALL.with_access_disabled(5);
        for access in [AccessKind::Read, AccessKind::Write] {
            let err = translate(&mut m, &e, VirtAddr(0xffff_8000_0000_0000), access).unwrap_err();
            assert!(err.is_pf(PfReason::PksAccessDisabled), "{access:?}");
        }
    }

    #[test]
    fn pks_write_disable_blocks_only_writes() {
        let (mut m, root) = setup();
        map(
            &mut m,
            root,
            0xffff_8000_0000_0000u64,
            PteFlags::kernel_rw(7),
        );
        let mut e = env(root);
        e.pkrs = PkrsPerms::GRANT_ALL.with_write_disabled(7);
        assert!(translate(
            &mut m,
            &e,
            VirtAddr(0xffff_8000_0000_0000),
            AccessKind::Read
        )
        .is_ok());
        let err = translate(
            &mut m,
            &e,
            VirtAddr(0xffff_8000_0000_0000),
            AccessKind::Write,
        )
        .unwrap_err();
        assert!(err.is_pf(PfReason::PksWriteDisabled));
    }

    #[test]
    fn pks_does_not_apply_to_user_pages_or_exec() {
        let (mut m, root) = setup();
        // Key 5 disabled, but the page is a user page: SMAP applies instead.
        map(&mut m, root, 0x40_0000, PteFlags::user_rw());
        let mut e = env(root);
        e.pkrs = PkrsPerms::GRANT_ALL.with_access_disabled(0);
        e.rflags = Rflags(Rflags::AC);
        assert!(translate(&mut m, &e, VirtAddr(0x40_0000), AccessKind::Read).is_ok());
    }

    #[test]
    fn pks_ignored_when_cr4_pks_clear() {
        let (mut m, root) = setup();
        map(
            &mut m,
            root,
            0xffff_8000_0000_0000u64,
            PteFlags::kernel_rw(5),
        );
        let mut e = env(root);
        e.cr4 = Cr4(0);
        e.pkrs = PkrsPerms::GRANT_ALL.with_access_disabled(5);
        assert!(
            translate(
                &mut m,
                &e,
                VirtAddr(0xffff_8000_0000_0000),
                AccessKind::Read
            )
            .is_ok(),
            "PKS off means keys are inert — why Erebor pins CR4.PKS"
        );
    }

    #[test]
    fn keyid_mismatch_faults_match_passes() {
        let (mut m, root) = setup();
        let va = 0xffff_8000_0000_0000u64;
        let f = map(&mut m, root, va, PteFlags::kernel_rw(1));
        // Retag the leaf with key-ID 99 without programming the frame.
        let slot = crate::paging::leaf_slot(&m, root, VirtAddr(va)).unwrap().unwrap();
        let leaf = Pte(m.read_u64(slot).unwrap()).with_keyid(99);
        m.write_u64(slot, leaf.0).unwrap();
        let err = translate(&mut m, &env(root), VirtAddr(va), AccessKind::Read).unwrap_err();
        assert!(err.is_pf(PfReason::KeyMismatch));
        // Program the matching key: access flows again, eff carries it.
        m.set_frame_key(f, 99);
        let t = translate(&mut m, &env(root), VirtAddr(va), AccessKind::Write).unwrap();
        assert_eq!(t.eff.keyid, 99);
        // An untagged mapping of a keyed frame is equally dead — the
        // kernel's own alias cannot read confined plaintext.
        m.write_u64(slot, leaf.with_keyid(0).0).unwrap();
        let err = translate(&mut m, &env(root), VirtAddr(va), AccessKind::Read).unwrap_err();
        assert!(err.is_pf(PfReason::KeyMismatch));
    }

    #[test]
    fn keyid_check_runs_after_architectural_checks() {
        let (mut m, root) = setup();
        let va = 0xffff_8000_0000_0000u64;
        let f = map(&mut m, root, va, PteFlags::kernel_ro(5));
        m.set_frame_key(f, 7); // mapping still has key-ID 0: mismatched
        // PKS denial wins over the key mismatch (check order matches the
        // walk pipeline: architectural checks, then the keyed fetch).
        let mut e = env(root);
        e.pkrs = PkrsPerms::GRANT_ALL.with_access_disabled(5);
        let err = translate(&mut m, &e, VirtAddr(va), AccessKind::Read).unwrap_err();
        assert!(err.is_pf(PfReason::PksAccessDisabled));
        // With PKRS granted the mismatch surfaces.
        let err = translate(&mut m, &env(root), VirtAddr(va), AccessKind::Read).unwrap_err();
        assert!(err.is_pf(PfReason::KeyMismatch));
    }

    #[test]
    fn accessed_dirty_bits_set() {
        let (mut m, root) = setup();
        map(
            &mut m,
            root,
            0xffff_8000_0000_0000u64,
            PteFlags::kernel_rw(0),
        );
        let t = translate(
            &mut m,
            &env(root),
            VirtAddr(0xffff_8000_0000_0000),
            AccessKind::Read,
        )
        .unwrap();
        assert!(t.pte.flags().accessed && !t.pte.dirty());
        let t = translate(
            &mut m,
            &env(root),
            VirtAddr(0xffff_8000_0000_0000),
            AccessKind::Write,
        )
        .unwrap();
        assert!(t.pte.dirty());
    }

    #[test]
    fn non_canonical_is_gp() {
        let (mut m, root) = setup();
        let err = translate(
            &mut m,
            &env(root),
            VirtAddr(0x0012_0000_0000_0000),
            AccessKind::Read,
        )
        .unwrap_err();
        assert_eq!(err, Fault::GeneralProtection("non-canonical address"));
    }
}
