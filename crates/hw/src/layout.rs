//! The guest virtual-memory layout used by the simulated CVM.
//!
//! Mirrors a conventional x86-64 Linux split with an additional protected
//! monitor window. Constants, not policy: enforcement lives in the MMU and
//! the monitor.

use crate::VirtAddr;

/// Base of the user half (sandbox / process images, heaps, stacks).
pub const USER_BASE: VirtAddr = VirtAddr(0x0000_0000_0040_0000);
/// Exclusive top of canonical user space.
pub const USER_TOP: VirtAddr = VirtAddr(0x0000_7fff_ffff_f000);

/// Kernel text/data image base.
pub const KERNEL_BASE: VirtAddr = VirtAddr(0xffff_8000_0000_0000);
/// Direct map of all physical memory (virt = phys + `DIRECT_MAP_BASE`).
pub const DIRECT_MAP_BASE: VirtAddr = VirtAddr(0xffff_8800_0000_0000);
/// Monitor image, data and secure stacks.
pub const MONITOR_BASE: VirtAddr = VirtAddr(0xffff_a000_0000_0000);
/// Monitor shadow-stack window.
pub const MONITOR_SSTK_BASE: VirtAddr = VirtAddr(0xffff_a100_0000_0000);

/// Translate a physical address through the kernel direct map.
#[must_use]
pub fn direct_map(pa: crate::PhysAddr) -> VirtAddr {
    VirtAddr(DIRECT_MAP_BASE.0 + pa.0)
}

/// Whether a virtual address lies in the user half.
#[must_use]
pub fn is_user(va: VirtAddr) -> bool {
    va.0 < 0x0000_8000_0000_0000
}

/// Whether a virtual address lies in the monitor windows.
#[must_use]
pub fn is_monitor(va: VirtAddr) -> bool {
    (MONITOR_BASE.0..MONITOR_BASE.0 + 0x2_0000_0000).contains(&va.0)
        || (MONITOR_SSTK_BASE.0..MONITOR_SSTK_BASE.0 + 0x1000_0000).contains(&va.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PhysAddr;

    #[test]
    fn direct_map_offsets() {
        assert_eq!(direct_map(PhysAddr(0x1000)).0, DIRECT_MAP_BASE.0 + 0x1000);
    }

    #[test]
    fn halves() {
        assert!(is_user(USER_BASE));
        assert!(!is_user(KERNEL_BASE));
        assert!(is_monitor(MONITOR_BASE));
        assert!(!is_monitor(KERNEL_BASE));
    }

    #[test]
    fn layout_addresses_are_canonical() {
        for va in [
            USER_BASE,
            USER_TOP,
            KERNEL_BASE,
            DIRECT_MAP_BASE,
            MONITOR_BASE,
        ] {
            assert!(va.is_canonical(), "{va} must be canonical");
        }
    }
}
