//! The calibrated cycle model.
//!
//! Every simulated primitive charges a micro-cost; composite costs — an EMC
//! round trip, a syscall, a TDCALL — *emerge* from the micro-costs of their
//! constituent operations rather than being transcribed from the paper.
//! Constants below are calibrated so that the emergent composites land in
//! the neighbourhoods the paper measured on Emerald Rapids (Tables 3 & 4);
//! the reproduction's claim is about *ratios*, not absolute cycles.

/// Micro-cost table, in simulated CPU cycles.
///
/// Calibration notes (paper reference values in parentheses):
/// * empty `syscall` round trip = 2·`swapgs` + `syscall_entry` +
///   `sysret_exit` + dispatch ≈ **684** (684)
/// * empty EMC round trip = entry gate (endbr + 3 spills + `rdmsr` +
///   `wrmsr` PKRS + stack switch + 3 fills) + exit gate (mirror) + call/ret
///   ≈ **1224** (1224)
/// * `tdcall` round trip = 2·(vm transition + TDX-module context
///   protect/scrub) ≈ **5276** (5276)
/// * `vmcall` in a non-TD guest = 2·vm transition + VMM dispatch ≈
///   **4031** (4031)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Costs {
    /// One data memory access that hits the simulated cache model.
    pub mem_op: u64,
    /// One page-table level walked by the MMU (TLB miss path).
    pub walk_level: u64,
    /// TLB hit translation.
    pub tlb_hit: u64,
    /// `invlpg` single-page invalidation.
    pub invlpg: u64,
    /// Register-to-register ALU work unit.
    pub alu: u64,
    /// `rdmsr`.
    pub rdmsr: u64,
    /// `wrmsr` (serializing).
    pub wrmsr: u64,
    /// `mov %cr` read or write (serializing).
    pub mov_cr: u64,
    /// `lidt`.
    pub lidt: u64,
    /// `stac` / `clac`.
    pub stac: u64,
    /// Fixed per-side EMC gate overhead beyond the counted register and
    /// stack operations (pipeline effects of the serializing PKRS writes).
    pub gate_overhead: u64,
    /// Full context protection at a sandbox exit (xsave-class save or
    /// restore of GPR+vector state plus masking, §6.2), charged each way.
    pub ctx_protect: u64,
    /// `swapgs`.
    pub swapgs: u64,
    /// `syscall` user→kernel hardware transition.
    pub syscall_entry: u64,
    /// `sysret` kernel→user hardware transition.
    pub sysret_exit: u64,
    /// Kernel syscall dispatch (entry asm, table lookup).
    pub syscall_dispatch: u64,
    /// Hardware interrupt delivery (IDT fetch, context push).
    pub interrupt_delivery: u64,
    /// `iret`.
    pub iret: u64,
    /// Near `call`/`ret` pair.
    pub call_ret: u64,
    /// `endbr64` check at an indirect-branch target.
    pub endbr_check: u64,
    /// Shadow-stack push+verify on call/ret.
    pub sstk_op: u64,
    /// Stack-pointer switch to a secure per-core stack.
    pub stack_switch: u64,
    /// One guest↔host VM transition (non-TD `vmcall` half).
    pub vm_transition: u64,
    /// VMM-side dispatch of a hypercall.
    pub vmm_dispatch: u64,
    /// TDX-module work per transition: save/scrub or restore guest context.
    pub tdx_context_protect: u64,
    /// TDX-module leaf dispatch.
    pub tdx_dispatch: u64,
    /// TDREPORT generation: measurement hashing + HMAC integrity binding.
    pub tdreport_generate: u64,
    /// Native PTE store (`native_set_pte`): one cached memory write plus
    /// ordering.
    pub pte_store: u64,
    /// Page-fault hardware delivery + kernel fixup excluding PTE install.
    pub pf_fixed: u64,
    /// Device DMA per 4 KiB page into shared memory.
    pub dma_page: u64,
    /// One unit of workload computation (used by workload kernels to charge
    /// for real arithmetic they perform).
    pub compute_unit: u64,
}

impl Default for Costs {
    fn default() -> Costs {
        Costs {
            mem_op: 2,
            walk_level: 18,
            tlb_hit: 1,
            invlpg: 140,
            alu: 1,
            rdmsr: 80,
            wrmsr: 364,
            mov_cr: 290,
            lidt: 258,
            stac: 30,
            gate_overhead: 96,
            ctx_protect: 3_600,
            swapgs: 30,
            syscall_entry: 160,
            sysret_exit: 140,
            syscall_dispatch: 250,
            interrupt_delivery: 320,
            iret: 260,
            call_ret: 6,
            endbr_check: 1,
            sstk_op: 4,
            stack_switch: 14,
            vm_transition: 1450,
            vmm_dispatch: 1100,
            tdx_context_protect: 620,
            tdx_dispatch: 280,
            tdreport_generate: 121_500,
            pte_store: 23,
            pf_fixed: 900,
            dma_page: 700,
            compute_unit: 1,
        }
    }
}

/// Accumulates simulated cycles plus named event counters.
///
/// The counter is the time base for every table and figure: workload
/// "seconds" are defined as `cycles / CLOCK_HZ` with the paper machine's
/// 2.1 GHz clock.
///
/// Every charge also lands in exactly one [`Bucket`] of the attached
/// [`Attribution`] — either the counter's *current* bucket (set by the
/// layer whose code is executing: monitor gates, the kernel, tdcall) or
/// an explicit one via [`CycleCounter::charge_to`] — so the per-bucket
/// totals sum to [`CycleCounter::total`] by construction.
#[derive(Debug, Default, Clone)]
pub struct CycleCounter {
    cycles: u64,
    attr: Attribution,
    current: Bucket,
}

pub use erebor_trace::{Attribution, Bucket};

/// Simulated clock frequency (the paper's Xeon 8570 runs at 2.1 GHz).
pub const CLOCK_HZ: u64 = 2_100_000_000;

impl CycleCounter {
    /// A fresh counter at cycle zero, attributing to [`Bucket::Other`].
    #[must_use]
    pub fn new() -> CycleCounter {
        CycleCounter::default()
    }

    /// Charge `n` cycles to the current bucket. Saturates at `u64::MAX` —
    /// a wrapped counter would silently corrupt every Table 3 / Fig 8
    /// datum derived from it.
    pub fn charge(&mut self, n: u64) {
        debug_assert!(
            self.cycles.checked_add(n).is_some(),
            "cycle counter overflow: {} + {n}",
            self.cycles
        );
        self.cycles = self.cycles.saturating_add(n);
        self.attr.charge(self.current, n);
    }

    /// Charge `n` cycles to an explicit bucket, regardless of the
    /// current one (translation costs go to [`Bucket::PageWalk`] no
    /// matter whose code triggered the walk).
    pub fn charge_to(&mut self, bucket: Bucket, n: u64) {
        debug_assert!(
            self.cycles.checked_add(n).is_some(),
            "cycle counter overflow: {} + {n}",
            self.cycles
        );
        self.cycles = self.cycles.saturating_add(n);
        self.attr.charge(bucket, n);
    }

    /// Switch the current bucket, returning the previous one so callers
    /// can restore it when their region ends (no RAII guard: callers
    /// need `&mut Machine` between the set and the restore).
    pub fn set_bucket(&mut self, bucket: Bucket) -> Bucket {
        core::mem::replace(&mut self.current, bucket)
    }

    /// The bucket charges currently land in.
    #[must_use]
    pub fn bucket(&self) -> Bucket {
        self.current
    }

    /// Per-bucket totals charged so far.
    #[must_use]
    pub fn attribution(&self) -> Attribution {
        self.attr
    }

    /// Total cycles charged so far.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.cycles
    }

    /// Simulated elapsed seconds at [`CLOCK_HZ`].
    #[must_use]
    pub fn seconds(&self) -> f64 {
        self.cycles as f64 / CLOCK_HZ as f64
    }

    /// Decompose into raw migration parts: total cycles, per-bucket
    /// totals in [`Bucket::ALL`] order, and the current bucket's index.
    #[must_use]
    pub fn to_parts(&self) -> (u64, [u64; Bucket::ALL.len()], usize) {
        let mut totals = [0u64; Bucket::ALL.len()];
        for (slot, b) in totals.iter_mut().zip(Bucket::ALL) {
            *slot = self.attr.get(b);
        }
        let current = Bucket::ALL
            .iter()
            .position(|b| *b == self.current)
            .unwrap_or(0);
        (self.cycles, totals, current)
    }

    /// Rebuild from [`CycleCounter::to_parts`] output. Returns `None` if
    /// the current-bucket index is out of range or the per-bucket totals
    /// do not sum to the cycle total (the counter's core invariant).
    #[must_use]
    pub fn from_parts(
        cycles: u64,
        totals: [u64; Bucket::ALL.len()],
        current: usize,
    ) -> Option<CycleCounter> {
        let bucket = *Bucket::ALL.get(current)?;
        let sum = totals
            .iter()
            .try_fold(0u64, |acc, t| acc.checked_add(*t))?;
        if sum != cycles {
            return None;
        }
        let mut attr = Attribution::default();
        for (b, t) in Bucket::ALL.into_iter().zip(totals) {
            attr.charge(b, t);
        }
        Some(CycleCounter {
            cycles,
            attr,
            current: bucket,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_syscall_composite_near_paper() {
        let c = Costs::default();
        let syscall = c.syscall_entry + c.sysret_exit + 2 * c.swapgs + c.syscall_dispatch;
        // Paper Table 3: 684 cycles for an empty syscall round trip.
        assert!(
            (600..=800).contains(&syscall),
            "syscall composite {syscall}"
        );
    }

    #[test]
    fn default_tdcall_composite_near_paper() {
        let c = Costs::default();
        let tdcall =
            2 * (c.vm_transition + c.tdx_context_protect + c.tdx_dispatch) + c.vmm_dispatch / 2;
        // Paper Table 3: 5276 cycles for a tdcall round trip.
        assert!((4500..=6000).contains(&tdcall), "tdcall composite {tdcall}");
    }

    #[test]
    fn counter_accumulates() {
        let mut cc = CycleCounter::new();
        cc.charge(100);
        cc.charge(42);
        assert_eq!(cc.total(), 142);
        assert!(cc.seconds() > 0.0);
    }
}
