//! Control registers, model-specific registers, RFLAGS and the PKS
//! permission register — the state the paper's Table 2 instructions mutate.

use std::sync::atomic::{AtomicU64, Ordering};

/// Out-of-range protection-key sightings (key ≥ 16 handed to a
/// [`PkrsPerms`] accessor or builder). The seed guarded these paths with
/// `debug_assert!` only, so a release build silently shifted by
/// `2·key mod 64` and aliased a low key's permission bits; the hard check
/// now fails closed and records the event here instead. A non-zero delta
/// across a test or campaign is a red flag: some layer is minting pkeys
/// past the PKS ceiling instead of taking the typed domain-exhaustion
/// path.
static PKRS_RED_ASSERTS: AtomicU64 = AtomicU64::new(0);

/// Current count of out-of-range-pkey sightings (process-wide).
#[must_use]
pub fn pkrs_red_asserts() -> u64 {
    PKRS_RED_ASSERTS.load(Ordering::SeqCst)
}

fn note_pkey_out_of_range() {
    PKRS_RED_ASSERTS.fetch_add(1, Ordering::SeqCst);
}

/// `CR0` bits used by the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cr0(pub u64);

impl Cr0 {
    /// Write Protect: supervisor writes honour read-only mappings.
    pub const WP: u64 = 1 << 16;
    /// Paging enable.
    pub const PG: u64 = 1 << 31;

    /// Whether `CR0.WP` is set.
    #[must_use]
    pub fn wp(self) -> bool {
        self.0 & Self::WP != 0
    }

    /// Whether paging is enabled.
    #[must_use]
    pub fn pg(self) -> bool {
        self.0 & Self::PG != 0
    }
}

/// `CR4` bits used by the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cr4(pub u64);

impl Cr4 {
    /// Supervisor Mode Execution Prevention.
    pub const SMEP: u64 = 1 << 20;
    /// Supervisor Mode Access Prevention.
    pub const SMAP: u64 = 1 << 21;
    /// Control-flow Enforcement Technology master enable.
    pub const CET: u64 = 1 << 23;
    /// Protection Keys for Supervisor pages.
    pub const PKS: u64 = 1 << 24;

    /// Whether SMEP is enabled.
    #[must_use]
    pub fn smep(self) -> bool {
        self.0 & Self::SMEP != 0
    }

    /// Whether SMAP is enabled.
    #[must_use]
    pub fn smap(self) -> bool {
        self.0 & Self::SMAP != 0
    }

    /// Whether CET is enabled.
    #[must_use]
    pub fn cet(self) -> bool {
        self.0 & Self::CET != 0
    }

    /// Whether PKS is enabled.
    #[must_use]
    pub fn pks(self) -> bool {
        self.0 & Self::PKS != 0
    }
}

/// RFLAGS bits used by the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rflags(pub u64);

impl Rflags {
    /// Interrupt enable flag.
    pub const IF: u64 = 1 << 9;
    /// Alignment-check / SMAP-override flag (set by `stac`, cleared by
    /// `clac`).
    pub const AC: u64 = 1 << 18;

    /// Whether interrupts are enabled.
    #[must_use]
    pub fn interrupts_enabled(self) -> bool {
        self.0 & Self::IF != 0
    }

    /// Whether `AC` is set (SMAP temporarily overridden).
    #[must_use]
    pub fn ac(self) -> bool {
        self.0 & Self::AC != 0
    }
}

/// Model-specific registers the simulator implements.
///
/// The set mirrors the paper's Table 2 plus the CET/UINTR state of §5–§6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Msr {
    /// Syscall entry point (`IA32_LSTAR`).
    Lstar,
    /// Syscall flag mask (`IA32_FMASK`).
    Fmask,
    /// Extended feature enables (`IA32_EFER`), incl. SCE.
    Efer,
    /// Per-core supervisor protection-key rights (`IA32_PKRS`).
    Pkrs,
    /// Supervisor CET configuration (`IA32_S_CET`).
    SCet,
    /// Ring-0 shadow-stack pointer (`IA32_PL0_SSP`).
    Pl0Ssp,
    /// User-interrupt target table (`IA32_UINTR_TT`); bit 0 = valid.
    UintrTt,
    /// GS base used for per-CPU data (`IA32_GS_BASE`).
    GsBase,
    /// APIC timer divide/config stand-in (virtualized by the host).
    ApicTimer,
}

impl Msr {
    /// The canonical x86 MSR index (for image encodings and logs).
    #[must_use]
    pub fn index(self) -> u32 {
        match self {
            Msr::Lstar => 0xC000_0082,
            Msr::Fmask => 0xC000_0084,
            Msr::Efer => 0xC000_0080,
            Msr::Pkrs => 0x0000_06E1,
            Msr::SCet => 0x0000_06A2,
            Msr::Pl0Ssp => 0x0000_06A4,
            Msr::UintrTt => 0x0000_0985,
            Msr::GsBase => 0xC000_0101,
            Msr::ApicTimer => 0x0000_0838,
        }
    }

    /// Inverse of [`Msr::index`].
    #[must_use]
    pub fn from_index(index: u32) -> Option<Msr> {
        Some(match index {
            0xC000_0082 => Msr::Lstar,
            0xC000_0084 => Msr::Fmask,
            0xC000_0080 => Msr::Efer,
            0x0000_06E1 => Msr::Pkrs,
            0x0000_06A2 => Msr::SCet,
            0x0000_06A4 => Msr::Pl0Ssp,
            0x0000_0985 => Msr::UintrTt,
            0xC000_0101 => Msr::GsBase,
            0x0000_0838 => Msr::ApicTimer,
            _ => return None,
        })
    }

    /// All MSRs the simulator knows, in a stable order.
    pub const ALL: [Msr; 9] = [
        Msr::Lstar,
        Msr::Fmask,
        Msr::Efer,
        Msr::Pkrs,
        Msr::SCet,
        Msr::Pl0Ssp,
        Msr::UintrTt,
        Msr::GsBase,
        Msr::ApicTimer,
    ];
}

/// `IA32_S_CET` bits.
pub mod s_cet {
    /// Shadow stacks enabled.
    pub const SH_STK_EN: u64 = 1 << 0;
    /// Indirect branch tracking enabled.
    pub const ENDBR_EN: u64 = 1 << 2;
}

/// Decoded view of the per-core `IA32_PKRS` register.
///
/// For each 4-bit protection key `k` (0..16), two bits control supervisor
/// access: `AD` (access disable, bit `2k`) and `WD` (write disable, bit
/// `2k+1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PkrsPerms(pub u64);

impl PkrsPerms {
    /// All keys fully accessible.
    pub const GRANT_ALL: PkrsPerms = PkrsPerms(0);

    /// Number of protection keys the 4-bit PTE field can name.
    pub const KEY_COUNT: u8 = 16;

    /// Whether reads/writes under key `key` are disabled entirely.
    /// An out-of-range key fails closed (treated as disabled) and bumps
    /// the red-assert counter — release builds must not let a wild key
    /// alias domain 0–15 permissions via a wrapping shift.
    #[must_use]
    pub fn access_disabled(self, key: u8) -> bool {
        if key >= Self::KEY_COUNT {
            note_pkey_out_of_range();
            return true;
        }
        self.0 >> (2 * key) & 1 != 0
    }

    /// Whether writes under key `key` are disabled. Out-of-range keys
    /// fail closed, as for [`PkrsPerms::access_disabled`].
    #[must_use]
    pub fn write_disabled(self, key: u8) -> bool {
        if key >= Self::KEY_COUNT {
            note_pkey_out_of_range();
            return true;
        }
        self.0 >> (2 * key + 1) & 1 != 0
    }

    /// Return a copy with `key` set to access-disabled. An out-of-range
    /// key is recorded and leaves the register unchanged (it must not
    /// flip some low key's bits).
    #[must_use]
    pub fn with_access_disabled(self, key: u8) -> PkrsPerms {
        if key >= Self::KEY_COUNT {
            note_pkey_out_of_range();
            return self;
        }
        PkrsPerms(self.0 | 1 << (2 * key))
    }

    /// Return a copy with `key` set to write-disabled (reads allowed).
    /// Out-of-range keys are recorded and ignored.
    #[must_use]
    pub fn with_write_disabled(self, key: u8) -> PkrsPerms {
        if key >= Self::KEY_COUNT {
            note_pkey_out_of_range();
            return self;
        }
        PkrsPerms(self.0 | 1 << (2 * key + 1))
    }

    /// Return a copy with `key` fully granted. Out-of-range keys are
    /// recorded and ignored.
    #[must_use]
    pub fn with_granted(self, key: u8) -> PkrsPerms {
        if key >= Self::KEY_COUNT {
            note_pkey_out_of_range();
            return self;
        }
        PkrsPerms(self.0 & !(0b11 << (2 * key)))
    }
}

/// The 16 general-purpose registers plus `rip` and `rflags` — the context
/// that the TDX module protects at exits and the monitor scrubs before
/// handing sandbox interrupts to the OS (§6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GprContext {
    /// General-purpose registers, indexed rax=0, rcx=1, rdx=2, rbx=3,
    /// rsp=4, rbp=5, rsi=6, rdi=7, r8..r15=8..15.
    pub gpr: [u64; 16],
    /// Instruction pointer.
    pub rip: u64,
    /// Flags register.
    pub rflags: u64,
}

impl GprContext {
    /// Index of `rsp` within [`GprContext::gpr`].
    pub const RSP: usize = 4;

    /// Scrub every register (the monitor's masking at sandbox interrupts).
    pub fn scrub(&mut self) {
        self.gpr = [0; 16];
        self.rflags = 0;
        // rip is replaced by the interposed entry point by the caller.
    }

    /// Whether the context is all-zero apart from `rip`.
    #[must_use]
    pub fn is_scrubbed(&self) -> bool {
        self.gpr.iter().all(|&g| g == 0) && self.rflags == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pkrs_bit_layout() {
        let p = PkrsPerms::GRANT_ALL
            .with_access_disabled(1)
            .with_write_disabled(2);
        assert!(p.access_disabled(1));
        assert!(!p.write_disabled(1));
        assert!(p.write_disabled(2));
        assert!(!p.access_disabled(2));
        assert!(!p.access_disabled(0) && !p.write_disabled(0));
        assert_eq!(p.0, (1 << 2) | (1 << 5));
    }

    #[test]
    fn pkrs_grant_clears_both_bits() {
        let p = PkrsPerms(u64::MAX).with_granted(3);
        assert!(!p.access_disabled(3));
        assert!(!p.write_disabled(3));
        assert!(p.access_disabled(4));
    }

    /// Regression for the silent pkey-overflow bug: in the seed, these
    /// paths guarded `key < 16` with `debug_assert!` only, so a release
    /// build computed `1 << (2·32 mod 64)` and aliased key 0 — e.g.
    /// `with_access_disabled(32)` access-disabled the *default* domain,
    /// and `access_disabled(32)` leaked key 0's bit. Now: builders are
    /// recorded no-ops, accessors fail closed, and the red-assert
    /// counter ticks for each sighting.
    /// (Single test on purpose: the counter is process-wide, and this is
    /// the only test in the binary that touches out-of-range keys, so
    /// in-test sequencing keeps the deltas race-free.)
    #[test]
    fn out_of_range_key_cannot_alias_low_domains() {
        // In-range keys never tick the counter.
        let before = pkrs_red_asserts();
        let q = PkrsPerms::GRANT_ALL
            .with_access_disabled(15)
            .with_write_disabled(15);
        assert!(q.access_disabled(15) && q.write_disabled(15));
        assert!(!q.with_granted(15).access_disabled(15));
        assert_eq!(pkrs_red_asserts(), before);
        // Builders: no low-key bit may move.
        let p = PkrsPerms::GRANT_ALL
            .with_access_disabled(32) // seed: 2·32 mod 64 = bit 0 → key 0 AD
            .with_write_disabled(16) // seed: bit 33 → key 16 "WD" garbage
            .with_granted(48); // seed: cleared key 0's bits
        assert_eq!(p, PkrsPerms::GRANT_ALL, "out-of-range builders must not touch the register");
        assert!(!p.access_disabled(0), "key 0 must stay granted");
        // Accessors: out-of-range keys fail closed, not via aliasing.
        let deny0 = PkrsPerms::GRANT_ALL.with_access_disabled(0);
        assert!(deny0.access_disabled(16), "out-of-range key must fail closed");
        assert!(PkrsPerms::GRANT_ALL.access_disabled(255));
        assert!(PkrsPerms::GRANT_ALL.write_disabled(16));
        // And every sighting was recorded.
        assert!(
            pkrs_red_asserts() >= before + 6,
            "red-assert counter must record each out-of-range pkey"
        );
    }

    #[test]
    fn msr_index_roundtrip() {
        for m in Msr::ALL {
            assert_eq!(Msr::from_index(m.index()), Some(m));
        }
        assert_eq!(Msr::from_index(0xdead_beef), None);
    }

    #[test]
    fn cr_flag_helpers() {
        assert!(Cr4(Cr4::SMEP | Cr4::SMAP).smep());
        assert!(Cr4(Cr4::SMAP).smap());
        assert!(!Cr4(0).pks());
        assert!(Cr0(Cr0::WP).wp());
        assert!(Rflags(Rflags::AC).ac());
        assert!(!Rflags(0).interrupts_enabled());
    }

    #[test]
    fn gpr_scrub() {
        let mut ctx = GprContext {
            gpr: [7; 16],
            rip: 0x1000,
            rflags: 0x202,
        };
        assert!(!ctx.is_scrubbed());
        ctx.scrub();
        assert!(ctx.is_scrubbed());
        assert_eq!(ctx.rip, 0x1000, "rip is caller-managed");
    }
}
