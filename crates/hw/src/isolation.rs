//! Pluggable isolation backends: how the monitor tags frames with a
//! protection domain and how the hardware checks an access against the
//! current CPU's domain-permission state.
//!
//! The paper's mechanism is PKS: a 4-bit supervisor protection key in
//! every PTE checked against the per-CPU PKRS register — fast domain
//! switches (one `wrmsr`, no TLB flush) but a hard ceiling of 16 domains.
//! The TME-MK backend (TME-Box-style) lifts that ceiling: each frame
//! carries a 12-bit *encryption key-ID* in high PA bits of its PTE, and
//! the MMU walk compares the key-ID in the mapping against the key the
//! platform programmed for the frame (the simulated analogue of fetching
//! ciphertext under the wrong AES-XTS tweak key). Up to 4096 concurrent
//! domains, at the cost of a walk-time check and PCONFIG-style key
//! management.
//!
//! Both backends expose the same contract — allocate a domain, tag a
//! frame, revoke the domain — so the monitor's confinement plumbing, the
//! C1–C8 auditor and the chaos campaigns run generically over
//! `Backend = Pks | TmeMk`.

use crate::regs::PkrsPerms;
use erebor_wire::{WireError, WireReader, WireWriter};

/// Which isolation mechanism a platform runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// PKS/PKRS supervisor protection keys (the paper's mechanism).
    Pks,
    /// TME-MK keyed memory: per-frame key-IDs in high PA bits.
    TmeMk,
}

impl BackendKind {
    /// Short label used in bench output and JSON metas.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Pks => "pks",
            BackendKind::TmeMk => "tmemk",
        }
    }
}

/// An allocated isolation domain. For PKS the value is the pkey
/// (6..=15 after the monitor's reserved keys); for TME-MK it is the
/// key-ID (1..=4095; key-ID 0 means "untagged / kernel default").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomainId(pub u16);

impl DomainId {
    /// The kernel/default domain: pkey 0, key-ID 0. Never allocated.
    pub const DEFAULT: DomainId = DomainId(0);
}

/// Typed failures from domain management.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsolationError {
    /// Every allocatable domain is live; `capacity` is the backend's
    /// total (reserved domains included).
    DomainsExhausted {
        /// Total domain capacity of the backend.
        capacity: u16,
    },
    /// The domain is not currently live (double free, reserved id, or
    /// never allocated).
    InvalidDomain(DomainId),
}

impl core::fmt::Display for IsolationError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            IsolationError::DomainsExhausted { capacity } => {
                write!(f, "isolation domains exhausted (capacity {capacity})")
            }
            IsolationError::InvalidDomain(d) => write!(f, "invalid domain {}", d.0),
        }
    }
}

impl std::error::Error for IsolationError {}

/// What the monitor programs into a confined frame's mappings: the PTE
/// protection key and the PTE/frame-table key-ID.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameTag {
    /// 4-bit PKS protection key for the supervisor alias mapping.
    pub pkey: u8,
    /// 12-bit TME-MK key-ID (0 = untagged).
    pub keyid: u16,
}

/// The common contract both mechanisms implement: domain lifecycle,
/// frame tagging, and the access predicate the auditor re-derives.
pub trait IsolationBackend {
    /// Which mechanism this is.
    fn kind(&self) -> BackendKind;

    /// Total domain capacity, reserved domains included.
    fn capacity(&self) -> u16;

    /// Domains reserved by the platform (monitor/PTP/... for PKS; the
    /// untagged key-ID 0 for TME-MK). Never allocatable.
    fn reserved(&self) -> u16;

    /// Currently live (allocated, unrevoked) domains.
    fn live_domains(&self) -> u16;

    /// Allocate a domain. Revoked domains are reused (most recently
    /// revoked first); a live domain is never handed out twice.
    ///
    /// # Errors
    /// [`IsolationError::DomainsExhausted`] at capacity.
    fn alloc_domain(&mut self) -> Result<DomainId, IsolationError>;

    /// Revoke a live domain, returning it to the free pool.
    ///
    /// # Errors
    /// [`IsolationError::InvalidDomain`] unless `d` is live.
    fn free_domain(&mut self, d: DomainId) -> Result<(), IsolationError>;

    /// How mappings of a frame assigned to domain `d` are tagged.
    fn frame_tag(&self, d: DomainId) -> FrameTag;

    /// The key programmed into the physical frame table for domain `d`
    /// (the PCONFIG analogue). Always 0 for PKS.
    fn frame_key(&self, d: DomainId) -> u16;

    /// The model-level access predicate: would a supervisor data access
    /// under `pkrs` to a mapping tagged (`pte_pkey`, `pte_keyid`) of a
    /// frame whose programmed key is `frame_key` be permitted? This is
    /// exactly the conjunction the MMU walk enforces
    /// ([`crate::mmu::check_access`] for the PKRS half, the walk's
    /// key-ID comparison for the keyed half); the auditor uses it to
    /// state C2/C3 generically over backends.
    fn access_allowed(
        &self,
        pkrs: PkrsPerms,
        write: bool,
        pte_pkey: u8,
        pte_keyid: u16,
        frame_key: u16,
    ) -> bool {
        let pkrs_ok = if write {
            !pkrs.access_disabled(pte_pkey) && !pkrs.write_disabled(pte_pkey)
        } else {
            !pkrs.access_disabled(pte_pkey)
        };
        pkrs_ok && pte_keyid == frame_key
    }
}

/// Shared domain-pool bookkeeping: dense id range `[first, capacity)`,
/// fresh ids handed out in ascending order, revoked ids reused LIFO.
#[derive(Debug, Clone)]
struct DomainPool {
    first: u16,
    capacity: u16,
    next_fresh: u16,
    free_list: Vec<u16>,
    live: std::collections::BTreeSet<u16>,
}

impl DomainPool {
    fn new(first: u16, capacity: u16) -> DomainPool {
        DomainPool {
            first,
            capacity,
            next_fresh: first,
            free_list: Vec::new(),
            live: std::collections::BTreeSet::new(),
        }
    }

    fn alloc(&mut self) -> Result<DomainId, IsolationError> {
        let id = if let Some(id) = self.free_list.pop() {
            id
        } else if self.next_fresh < self.capacity {
            let id = self.next_fresh;
            self.next_fresh += 1;
            id
        } else {
            return Err(IsolationError::DomainsExhausted {
                capacity: self.capacity,
            });
        };
        self.live.insert(id);
        Ok(DomainId(id))
    }

    fn free(&mut self, d: DomainId) -> Result<(), IsolationError> {
        if d.0 < self.first || !self.live.remove(&d.0) {
            return Err(IsolationError::InvalidDomain(d));
        }
        self.free_list.push(d.0);
        Ok(())
    }

    fn export(&self, w: &mut WireWriter) {
        w.u16(self.next_fresh);
        w.seq(self.free_list.len());
        for id in &self.free_list {
            w.u16(*id);
        }
        w.seq(self.live.len());
        for id in &self.live {
            w.u16(*id);
        }
    }

    /// Rebuild a pool over the same `[first, capacity)` range. The
    /// imported state must be one this pool could actually be in:
    /// `free_list` (order-preserved — LIFO reuse is architectural) and
    /// `live` must exactly partition `[first, next_fresh)`, so a
    /// tampered export can neither double-allocate a live id nor leak
    /// one out of existence.
    fn import(r: &mut WireReader, first: u16, capacity: u16) -> Result<DomainPool, WireError> {
        let next_fresh = r.u16()?;
        if next_fresh < first || next_fresh > capacity {
            return Err(WireError::BadValue { what: "next_fresh" });
        }
        let nfree = r.seq(2)?;
        let mut free_list = Vec::with_capacity(nfree);
        for _ in 0..nfree {
            free_list.push(r.u16()?);
        }
        let nlive = r.seq(2)?;
        let mut live = std::collections::BTreeSet::new();
        for _ in 0..nlive {
            if !live.insert(r.u16()?) {
                return Err(WireError::BadValue { what: "dup live" });
            }
        }
        let mut seen = live.clone();
        for id in &free_list {
            if !seen.insert(*id) {
                return Err(WireError::BadValue {
                    what: "domain both live and free",
                });
            }
        }
        let handed_out: std::collections::BTreeSet<u16> = (first..next_fresh).collect();
        if seen != handed_out {
            return Err(WireError::BadValue {
                what: "domain pool partition",
            });
        }
        Ok(DomainPool {
            first,
            capacity,
            next_fresh,
            free_list,
            live,
        })
    }
}

/// The paper's PKS mechanism: 16 pkeys total, the low 6 reserved by the
/// monitor (default/monitor/PTP/kernel-text/shadow-stack/IDT), sandbox
/// domains drawn from pkeys 6..=15. A sandbox's confined direct-map
/// aliases are retagged to its own pkey, which normal-mode PKRS
/// access-disables.
#[derive(Debug, Clone)]
pub struct PksBackend {
    pool: DomainPool,
}

/// Number of PKS protection keys (4-bit field).
pub const PKS_KEY_COUNT: u16 = 16;

impl PksBackend {
    /// A PKS backend with `reserved` low pkeys held back for the
    /// platform (the monitor passes its 6 policy keys).
    #[must_use]
    pub fn new(reserved: u16) -> PksBackend {
        assert!(reserved <= PKS_KEY_COUNT, "more reserved keys than exist");
        PksBackend {
            pool: DomainPool::new(reserved, PKS_KEY_COUNT),
        }
    }
}

impl IsolationBackend for PksBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Pks
    }

    fn capacity(&self) -> u16 {
        PKS_KEY_COUNT
    }

    fn reserved(&self) -> u16 {
        self.pool.first
    }

    fn live_domains(&self) -> u16 {
        self.pool.live.len() as u16
    }

    fn alloc_domain(&mut self) -> Result<DomainId, IsolationError> {
        self.pool.alloc()
    }

    fn free_domain(&mut self, d: DomainId) -> Result<(), IsolationError> {
        self.pool.free(d)
    }

    fn frame_tag(&self, d: DomainId) -> FrameTag {
        FrameTag {
            pkey: (d.0 & 0xf) as u8,
            keyid: 0,
        }
    }

    fn frame_key(&self, _d: DomainId) -> u16 {
        0
    }
}

/// Number of TME-MK key-IDs (12 high PA bits in this model).
pub const TMEMK_KEY_COUNT: u16 = 4096;

/// TME-MK keyed memory: domains are key-IDs 1..=4095; key-ID 0 is the
/// untagged kernel default. Confined direct-map aliases keep the
/// monitor's PKS pkey (so the PKRS grant check still gates them) and
/// additionally carry the sandbox's key-ID, which the walk compares
/// against the frame table's programmed key.
#[derive(Debug, Clone)]
pub struct TmeMkBackend {
    pool: DomainPool,
    alias_pkey: u8,
}

impl TmeMkBackend {
    /// A TME-MK backend whose confined aliases carry `alias_pkey` (the
    /// monitor passes its own pkey so normal-mode PKRS still
    /// access-disables the aliases).
    #[must_use]
    pub fn new(alias_pkey: u8) -> TmeMkBackend {
        TmeMkBackend {
            pool: DomainPool::new(1, TMEMK_KEY_COUNT),
            alias_pkey,
        }
    }
}

impl IsolationBackend for TmeMkBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::TmeMk
    }

    fn capacity(&self) -> u16 {
        TMEMK_KEY_COUNT
    }

    fn reserved(&self) -> u16 {
        1
    }

    fn live_domains(&self) -> u16 {
        self.pool.live.len() as u16
    }

    fn alloc_domain(&mut self) -> Result<DomainId, IsolationError> {
        self.pool.alloc()
    }

    fn free_domain(&mut self, d: DomainId) -> Result<(), IsolationError> {
        self.pool.free(d)
    }

    fn frame_tag(&self, d: DomainId) -> FrameTag {
        FrameTag {
            pkey: self.alias_pkey,
            keyid: d.0,
        }
    }

    fn frame_key(&self, d: DomainId) -> u16 {
        d.0
    }
}

/// Enum dispatch over the two mechanisms (no trait objects: the monitor
/// stores the backend by value and the chaos/bench suites match on it).
#[derive(Debug, Clone)]
pub enum Backend {
    /// PKS/PKRS protection keys.
    Pks(PksBackend),
    /// TME-MK keyed memory.
    TmeMk(TmeMkBackend),
}

impl Backend {
    /// Construct the backend for `kind`. `reserved_pkeys` is the
    /// platform's reserved low pkey count; `alias_pkey` tags TME-MK
    /// confined aliases.
    #[must_use]
    pub fn new(kind: BackendKind, reserved_pkeys: u16, alias_pkey: u8) -> Backend {
        match kind {
            BackendKind::Pks => Backend::Pks(PksBackend::new(reserved_pkeys)),
            BackendKind::TmeMk => Backend::TmeMk(TmeMkBackend::new(alias_pkey)),
        }
    }

    /// Serialize the domain-pool state (live set, LIFO recycle list,
    /// fresh-id cursor) for migration. The mechanism kind and its fixed
    /// parameters are included so import can refuse a cross-mechanism
    /// transplant.
    #[must_use]
    pub fn export_state(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            Backend::Pks(b) => {
                w.u8(0);
                w.u16(b.pool.first);
                b.pool.export(&mut w);
            }
            Backend::TmeMk(b) => {
                w.u8(1);
                w.u8(b.alias_pkey);
                b.pool.export(&mut w);
            }
        }
        w.finish()
    }

    /// Replace this backend's pool with an exported one. The export must
    /// be for the same mechanism with the same fixed parameters, and its
    /// pool state must satisfy the allocator invariants — see
    /// `DomainPool::import`.
    ///
    /// # Errors
    /// [`WireError`] on truncation, kind/parameter mismatch, or an
    /// inconsistent pool (a live id also on the free list, ids outside
    /// the handed-out range, ...).
    pub fn import_state(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        let mut r = WireReader::new(bytes);
        let kind = r.u8()?;
        match (&mut *self, kind) {
            (Backend::Pks(b), 0) => {
                let first = r.u16()?;
                if first != b.pool.first {
                    return Err(WireError::BadValue {
                        what: "reserved pkeys",
                    });
                }
                let pool = DomainPool::import(&mut r, b.pool.first, b.pool.capacity)?;
                r.finish()?;
                b.pool = pool;
            }
            (Backend::TmeMk(b), 1) => {
                let alias = r.u8()?;
                if alias != b.alias_pkey {
                    return Err(WireError::BadValue { what: "alias pkey" });
                }
                let pool = DomainPool::import(&mut r, b.pool.first, b.pool.capacity)?;
                r.finish()?;
                b.pool = pool;
            }
            _ => {
                return Err(WireError::BadTag {
                    what: "backend kind",
                    tag: u64::from(kind),
                });
            }
        }
        Ok(())
    }

    fn inner(&self) -> &dyn IsolationBackend {
        match self {
            Backend::Pks(b) => b,
            Backend::TmeMk(b) => b,
        }
    }

    fn inner_mut(&mut self) -> &mut dyn IsolationBackend {
        match self {
            Backend::Pks(b) => b,
            Backend::TmeMk(b) => b,
        }
    }
}

impl IsolationBackend for Backend {
    fn kind(&self) -> BackendKind {
        self.inner().kind()
    }

    fn capacity(&self) -> u16 {
        self.inner().capacity()
    }

    fn reserved(&self) -> u16 {
        self.inner().reserved()
    }

    fn live_domains(&self) -> u16 {
        self.inner().live_domains()
    }

    fn alloc_domain(&mut self) -> Result<DomainId, IsolationError> {
        self.inner_mut().alloc_domain()
    }

    fn free_domain(&mut self, d: DomainId) -> Result<(), IsolationError> {
        self.inner_mut().free_domain(d)
    }

    fn frame_tag(&self, d: DomainId) -> FrameTag {
        self.inner().frame_tag(d)
    }

    fn frame_key(&self, d: DomainId) -> u16 {
        self.inner().frame_key(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pks_pool_is_sixteen_minus_reserved() {
        let mut b = PksBackend::new(6);
        assert_eq!(b.capacity(), 16);
        assert_eq!(b.reserved(), 6);
        let mut got = Vec::new();
        while let Ok(d) = b.alloc_domain() {
            got.push(d.0);
        }
        assert_eq!(got, (6..16).collect::<Vec<u16>>());
        assert_eq!(
            b.alloc_domain(),
            Err(IsolationError::DomainsExhausted { capacity: 16 })
        );
        assert_eq!(b.live_domains(), 10);
    }

    #[test]
    fn freed_domain_is_reused_never_while_live() {
        let mut b = PksBackend::new(6);
        let a = b.alloc_domain().unwrap();
        let c = b.alloc_domain().unwrap();
        assert_ne!(a, c);
        b.free_domain(a).unwrap();
        assert_eq!(b.free_domain(a), Err(IsolationError::InvalidDomain(a)));
        let again = b.alloc_domain().unwrap();
        assert_eq!(again, a, "most recently revoked id is reused first");
        // Both live now: the next alloc must be a fresh id.
        let fresh = b.alloc_domain().unwrap();
        assert!(fresh != a && fresh != c);
    }

    #[test]
    fn reserved_ids_are_never_handed_out_or_freed() {
        let mut b = PksBackend::new(6);
        assert_eq!(
            b.free_domain(DomainId(3)),
            Err(IsolationError::InvalidDomain(DomainId(3)))
        );
        assert_eq!(
            b.free_domain(DomainId::DEFAULT),
            Err(IsolationError::InvalidDomain(DomainId(0)))
        );
        for _ in 0..10 {
            assert!(b.alloc_domain().unwrap().0 >= 6);
        }
    }

    #[test]
    fn tmemk_supports_hundreds_of_domains() {
        let mut b = TmeMkBackend::new(1);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..512 {
            let d = b.alloc_domain().unwrap();
            assert!(d.0 >= 1, "key-ID 0 is reserved");
            assert!(seen.insert(d.0), "live key-ID handed out twice");
        }
        assert_eq!(b.live_domains(), 512);
        assert_eq!(b.capacity(), 4096);
    }

    #[test]
    fn tmemk_exhausts_at_capacity_with_typed_error() {
        let mut b = TmeMkBackend::new(1);
        for _ in 0..4095 {
            b.alloc_domain().unwrap();
        }
        assert_eq!(
            b.alloc_domain(),
            Err(IsolationError::DomainsExhausted { capacity: 4096 })
        );
    }

    #[test]
    fn frame_tags_match_mechanism() {
        let pks = PksBackend::new(6);
        assert_eq!(
            pks.frame_tag(DomainId(7)),
            FrameTag { pkey: 7, keyid: 0 }
        );
        assert_eq!(pks.frame_key(DomainId(7)), 0);
        let tme = TmeMkBackend::new(1);
        assert_eq!(
            tme.frame_tag(DomainId(300)),
            FrameTag {
                pkey: 1,
                keyid: 300
            }
        );
        assert_eq!(tme.frame_key(DomainId(300)), 300);
    }

    #[test]
    fn access_predicate_conjoins_pkrs_and_key() {
        let pks = PksBackend::new(6);
        let deny7 = PkrsPerms::GRANT_ALL.with_access_disabled(7);
        assert!(!pks.access_allowed(deny7, false, 7, 0, 0));
        assert!(pks.access_allowed(PkrsPerms::GRANT_ALL, false, 7, 0, 0));
        let wd = PkrsPerms::GRANT_ALL.with_write_disabled(7);
        assert!(pks.access_allowed(wd, false, 7, 0, 0));
        assert!(!pks.access_allowed(wd, true, 7, 0, 0));
        let tme = TmeMkBackend::new(1);
        // Key mismatch denies even with full PKRS grants.
        assert!(!tme.access_allowed(PkrsPerms::GRANT_ALL, false, 1, 0, 44));
        assert!(tme.access_allowed(PkrsPerms::GRANT_ALL, false, 1, 44, 44));
    }

    /// Satellite: an imported pool must reuse exactly the ids the source
    /// would have — LIFO order preserved, live ids never re-handed-out —
    /// under both mechanisms.
    #[test]
    fn pool_state_roundtrips_exactly_under_both_backends() {
        for kind in [BackendKind::Pks, BackendKind::TmeMk] {
            let mut src = Backend::new(kind, 6, 1);
            let a = src.alloc_domain().unwrap();
            let b = src.alloc_domain().unwrap();
            let c = src.alloc_domain().unwrap();
            src.free_domain(a).unwrap();
            src.free_domain(c).unwrap(); // free list now [a, c] — pop gives c first

            let mut dst = Backend::new(kind, 6, 1);
            dst.import_state(&src.export_state()).unwrap();
            assert_eq!(dst.live_domains(), 1, "{kind:?}");
            // Killing the surviving sandbox and re-creating must reuse the
            // exact freed ids in source order: c, then a, then b, then fresh.
            dst.free_domain(b).unwrap();
            assert_eq!(dst.alloc_domain().unwrap(), b);
            assert_eq!(dst.alloc_domain().unwrap(), c);
            assert_eq!(dst.alloc_domain().unwrap(), a);
            let fresh = dst.alloc_domain().unwrap();
            assert!(fresh != a && fresh != b && fresh != c, "{kind:?}");
            // And a live id is never double-allocated.
            let mut seen = std::collections::BTreeSet::new();
            seen.extend([a.0, b.0, c.0, fresh.0]);
            while let Ok(d) = dst.alloc_domain() {
                assert!(seen.insert(d.0), "{kind:?}: live id handed out twice");
                if seen.len() > 64 {
                    break;
                }
            }
        }
    }

    /// Tampered pool exports land as typed errors, not corrupted pools.
    #[test]
    fn pool_import_rejects_inconsistent_state() {
        let mut src = Backend::new(BackendKind::Pks, 6, 1);
        let a = src.alloc_domain().unwrap();
        src.alloc_domain().unwrap();
        src.free_domain(a).unwrap();
        let good = src.export_state();

        let mut dst = Backend::new(BackendKind::Pks, 6, 1);
        // Truncation at every boundary.
        for cut in 0..good.len() {
            assert!(dst.import_state(&good[..cut]).is_err(), "cut {cut}");
        }
        // Cross-mechanism transplant.
        let mut tme = Backend::new(BackendKind::TmeMk, 6, 1);
        assert!(tme.import_state(&good).is_err());
        // A live id duplicated onto the free list must be refused: craft
        // by exporting, then flipping the free-list entry to the live id.
        let mut evil = good.clone();
        // Layout: kind u8, first u16, next_fresh u16, seq(len) u64, id u16...
        // The single free-list id sits right after the 8-byte count.
        let free_pos = 1 + 2 + 2 + 8;
        evil[free_pos..free_pos + 2].copy_from_slice(&7u16.to_le_bytes());
        assert!(dst.import_state(&evil).is_err(), "live+free id accepted");
        // The untampered export still imports.
        dst.import_state(&good).unwrap();
    }

    #[test]
    fn enum_backend_delegates() {
        let mut b = Backend::new(BackendKind::TmeMk, 6, 1);
        assert_eq!(b.kind(), BackendKind::TmeMk);
        assert_eq!(b.capacity(), 4096);
        let d = b.alloc_domain().unwrap();
        assert_eq!(b.frame_tag(d).keyid, d.0);
        b.free_domain(d).unwrap();
        assert_eq!(b.live_domains(), 0);
        let mut p = Backend::new(BackendKind::Pks, 6, 1);
        assert_eq!(p.kind(), BackendKind::Pks);
        assert_eq!(p.alloc_domain().unwrap().0, 6);
        assert_eq!(BackendKind::Pks.label(), "pks");
        assert_eq!(BackendKind::TmeMk.label(), "tmemk");
    }
}
