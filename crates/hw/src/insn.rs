//! Sensitive-instruction byte encodings (paper Table 2) and the byte-level
//! scanner the monitor uses to verify kernel images (§5.1).
//!
//! The paper's insight is that, unlike classic SFI, Erebor does not need a
//! full disassembler: it suffices to ensure that *no byte sequence* in the
//! kernel's executable sections forms a sensitive instruction, scanning at
//! every byte offset. We reproduce that with the real x86 encodings.

/// The classes of sensitive privileged instructions from Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SensitiveClass {
    /// `mov %r, %crN` — MMU state and hardware protection toggles.
    MovToCr,
    /// `wrmsr` — PKS/CET/LSTAR/UINTR configuration.
    Wrmsr,
    /// `stac` — temporary SMAP override.
    Stac,
    /// `lidt` — interrupt descriptor table base.
    Lidt,
    /// `tdcall` — all GHCI traffic (memory conversion, vmcall, attestation).
    Tdcall,
}

impl SensitiveClass {
    /// All classes, in Table 2 order.
    pub const ALL: [SensitiveClass; 5] = [
        SensitiveClass::MovToCr,
        SensitiveClass::Wrmsr,
        SensitiveClass::Stac,
        SensitiveClass::Lidt,
        SensitiveClass::Tdcall,
    ];
}

/// The `endbr64` encoding (CET indirect-branch landing pad).
pub const ENDBR64: [u8; 4] = [0xf3, 0x0f, 0x1e, 0xfa];

/// A sensitive-instruction occurrence found by the scanner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Finding {
    /// Byte offset within the scanned section.
    pub offset: usize,
    /// Which class of sensitive instruction the bytes form.
    pub class: SensitiveClass,
}

/// Produce a canonical encoding of a sensitive instruction, for building
/// test images and the monitor's own (legitimately privileged) image.
#[must_use]
pub fn encode(class: SensitiveClass) -> Vec<u8> {
    match class {
        // mov cr3, rax
        SensitiveClass::MovToCr => vec![0x0f, 0x22, 0xd8],
        SensitiveClass::Wrmsr => vec![0x0f, 0x30],
        SensitiveClass::Stac => vec![0x0f, 0x01, 0xcb],
        // lidt [rax]
        SensitiveClass::Lidt => vec![0x0f, 0x01, 0x18],
        SensitiveClass::Tdcall => vec![0x66, 0x0f, 0x01, 0xcc],
    }
}

/// Classify the byte sequence starting at `bytes[i]`, if it forms a
/// sensitive instruction.
///
/// Conservative byte-level matching at *any* offset, exactly as §5.1
/// prescribes; the scanner does not attempt instruction-boundary recovery.
#[must_use]
pub fn classify_at(bytes: &[u8], i: usize) -> Option<SensitiveClass> {
    let b = &bytes[i..];
    if b.len() >= 2 && b[0] == 0x0f {
        match b[1] {
            // mov %r, %crN (0F 22 /r)
            0x22 => return Some(SensitiveClass::MovToCr),
            // wrmsr (0F 30)
            0x30 => return Some(SensitiveClass::Wrmsr),
            0x01 if b.len() >= 3 => {
                let modrm = b[2];
                // stac (0F 01 CB)
                if modrm == 0xcb {
                    return Some(SensitiveClass::Stac);
                }
                // tdcall without mandatory prefix is still flagged,
                // conservatively (0F 01 CC).
                if modrm == 0xcc {
                    return Some(SensitiveClass::Tdcall);
                }
                // lidt (0F 01 /3, memory operand: mod != 11)
                if (modrm >> 6) != 0b11 && ((modrm >> 3) & 0b111) == 0b011 {
                    return Some(SensitiveClass::Lidt);
                }
            }
            _ => {}
        }
    }
    // tdcall with its 66h prefix (66 0F 01 CC)
    if b.len() >= 4 && b[0] == 0x66 && b[1] == 0x0f && b[2] == 0x01 && b[3] == 0xcc {
        return Some(SensitiveClass::Tdcall);
    }
    None
}

/// Scan `bytes` at every offset and report all sensitive-instruction
/// occurrences. An empty result means the section is safe to execute in the
/// deprivileged kernel domain.
#[must_use]
pub fn scan(bytes: &[u8]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for i in 0..bytes.len() {
        if let Some(class) = classify_at(bytes, i) {
            findings.push(Finding { offset: i, class });
        }
    }
    findings
}

/// Whether `va` within `bytes` (section base `base`) starts an `endbr64`.
#[must_use]
pub fn is_endbr_at(bytes: &[u8], offset: usize) -> bool {
    bytes.len() >= offset + 4 && bytes[offset..offset + 4] == ENDBR64
}

/// Rewrite `bytes` in place until [`scan`] reports nothing, replacing the
/// first byte of every finding with `0x90` (NOP). Used by test-image
/// generators to produce *benign* filler code from random bytes.
pub fn neutralize(bytes: &mut [u8]) {
    loop {
        let findings = scan(bytes);
        if findings.is_empty() {
            return;
        }
        for f in findings {
            bytes[f.offset] = 0x90;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_encodings_are_found() {
        for class in SensitiveClass::ALL {
            let enc = encode(class);
            let findings = scan(&enc);
            assert!(
                findings.iter().any(|f| f.offset == 0 && f.class == class),
                "{class:?} not found in its own encoding {enc:02x?}"
            );
        }
    }

    #[test]
    fn findings_at_unaligned_offsets() {
        // Hide a wrmsr after arbitrary prefix bytes — the byte-level scan
        // must still see it (this is the paper's whole point).
        let mut bytes = vec![0x48, 0x89, 0xc7];
        bytes.extend(encode(SensitiveClass::Wrmsr));
        let findings = scan(&bytes);
        assert_eq!(
            findings,
            vec![Finding {
                offset: 3,
                class: SensitiveClass::Wrmsr
            }]
        );
    }

    #[test]
    fn lidt_memory_form_detected_but_register_forms_not_confused() {
        // 0F 01 18 = lidt [rax] (mod=00 reg=011 rm=000)
        assert_eq!(
            classify_at(&[0x0f, 0x01, 0x18], 0),
            Some(SensitiveClass::Lidt)
        );
        // 0F 01 D8 has mod=11 reg=011 → VMRUN-adjacent, not lidt.
        assert_eq!(classify_at(&[0x0f, 0x01, 0xd8], 0), None);
        // swapgs (0F 01 F8) is not sensitive.
        assert_eq!(classify_at(&[0x0f, 0x01, 0xf8], 0), None);
    }

    #[test]
    fn tdcall_detected_with_and_without_prefix() {
        assert_eq!(
            classify_at(&[0x66, 0x0f, 0x01, 0xcc], 0),
            Some(SensitiveClass::Tdcall)
        );
        assert_eq!(
            classify_at(&[0x0f, 0x01, 0xcc], 0),
            Some(SensitiveClass::Tdcall)
        );
    }

    #[test]
    fn clac_is_not_sensitive() {
        // clac = 0F 01 CA: the kernel may always *drop* user access.
        assert_eq!(classify_at(&[0x0f, 0x01, 0xca], 0), None);
    }

    #[test]
    fn endbr_detection() {
        let mut b = vec![0x90, 0x90];
        b.extend(ENDBR64);
        assert!(is_endbr_at(&b, 2));
        assert!(!is_endbr_at(&b, 0));
        assert!(!is_endbr_at(&b, 3));
    }

    #[test]
    fn neutralize_produces_clean_bytes() {
        let mut bytes: Vec<u8> = (0..4096).map(|i| (i * 37 % 256) as u8).collect();
        // Random-ish bytes will contain incidental matches; neutralize
        // must clear them all.
        neutralize(&mut bytes);
        assert!(scan(&bytes).is_empty());
    }

    #[test]
    fn neutralize_handles_overlapping_patterns() {
        // 66 0F 01 CC contains 0F 01 CC: two overlapping findings.
        let mut bytes = encode(SensitiveClass::Tdcall);
        bytes.extend(encode(SensitiveClass::Wrmsr));
        neutralize(&mut bytes);
        assert!(scan(&bytes).is_empty());
    }
}
