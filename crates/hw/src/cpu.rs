//! The simulated CPU package: per-core register state plus the [`Machine`]
//! that couples cores to DRAM and enforces every architectural check on
//! every access and privileged operation.
//!
//! ## Execution model
//!
//! Software in this reproduction is Rust code, but every *architecturally
//! visible* action — loads, stores, instruction fetches, privileged
//! register writes, control transfers — must go through [`Machine`]
//! methods, which enforce the same checks real hardware would. Two layers
//! of enforcement matter for Erebor:
//!
//! 1. **Ring check**: privileged operations from [`CpuMode::User`] raise
//!    `#GP`, as on hardware.
//! 2. **Code-provenance check**: each core tracks the [`Domain`] its
//!    current code region belongs to (derived from the address map). A
//!    *sensitive instruction* (Table 2) executes only if the domain's
//!    verified image actually contains that instruction class — the
//!    monitor's boot-time byte scan (§5.1) guarantees the deprivileged
//!    kernel's image contains none, so a kernel-domain attempt is `#UD`
//!    ("the instruction is not there to execute"). Registration of a
//!    domain as sensitive-capable is a boot-time act of the trusted
//!    firmware/monitor only.

use crate::cet::{EndbrRegistry, ShadowStack};
use crate::cycles::{Costs, CycleCounter};
use crate::fault::{AccessKind, CpReason, Fault};
use crate::idt::Idtr;
use crate::layout;
use crate::mmu::{self, MmuEnv};
use crate::phys::{Frame, PhysMemory};
use crate::regs::{s_cet, Cr0, Cr4, GprContext, Msr, PkrsPerms, Rflags};
use crate::VirtAddr;
use std::collections::{BTreeMap, BTreeSet};

/// Hardware privilege mode (ring 3 vs ring 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuMode {
    /// Ring 3.
    User,
    /// Ring 0. Erebor further splits this into the monitor's *privileged*
    /// and the kernel's *normal* virtual modes (§5) — a software construct
    /// tracked via [`Domain`].
    Supervisor,
}

/// Code-provenance domain of the currently executing region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Domain {
    /// Trusted boot firmware (OVMF-like).
    Firmware,
    /// The Erebor monitor (virtual privileged mode).
    Monitor,
    /// The deprivileged guest kernel (virtual normal mode).
    Kernel,
    /// Userspace (native processes and sandboxes).
    User,
}

/// Derive the domain that owns a code address, from the fixed layout.
#[must_use]
pub fn domain_of(va: VirtAddr) -> Domain {
    if layout::is_monitor(va) {
        Domain::Monitor
    } else if layout::is_user(va) {
        Domain::User
    } else {
        Domain::Kernel
    }
}

/// Per-core register state.
#[derive(Debug, Clone)]
pub struct Cpu {
    /// Logical core id.
    pub id: usize,
    /// Current hardware privilege.
    pub mode: CpuMode,
    /// Current code-provenance domain.
    pub domain: Domain,
    /// General-purpose context.
    pub ctx: GprContext,
    /// CR0.
    pub cr0: Cr0,
    /// CR3 (page-table root frame).
    pub cr3: Frame,
    /// CR4.
    pub cr4: Cr4,
    /// IDTR, once `lidt` has executed.
    pub idtr: Option<Idtr>,
    msrs: BTreeMap<Msr, u64>,
}

impl Cpu {
    /// A fresh core: supervisor mode in the firmware domain, paging off,
    /// everything else zero.
    #[must_use]
    pub fn new(id: usize) -> Cpu {
        Cpu {
            id,
            mode: CpuMode::Supervisor,
            domain: Domain::Firmware,
            ctx: GprContext::default(),
            cr0: Cr0(0),
            cr3: Frame(0),
            cr4: Cr4(0),
            idtr: None,
            msrs: BTreeMap::new(),
        }
    }

    /// Raw MSR value (0 if never written).
    #[must_use]
    pub fn msr(&self, msr: Msr) -> u64 {
        self.msrs.get(&msr).copied().unwrap_or(0)
    }

    /// Decoded PKRS view.
    #[must_use]
    pub fn pkrs(&self) -> PkrsPerms {
        PkrsPerms(self.msr(Msr::Pkrs))
    }

    /// RFLAGS view.
    #[must_use]
    pub fn rflags(&self) -> Rflags {
        Rflags(self.ctx.rflags)
    }

    /// Whether CET indirect-branch tracking is active.
    #[must_use]
    pub fn ibt_enabled(&self) -> bool {
        self.cr4.cet() && self.msr(Msr::SCet) & s_cet::ENDBR_EN != 0
    }

    /// Whether CET shadow stacks are active.
    #[must_use]
    pub fn sstk_enabled(&self) -> bool {
        self.cr4.cet() && self.msr(Msr::SCet) & s_cet::SH_STK_EN != 0
    }
}

/// The machine: DRAM, cores, cycle accounting, and the CET landing-pad
/// registry.
pub struct Machine {
    /// Simulated DRAM.
    pub mem: PhysMemory,
    /// Logical cores.
    pub cpus: Vec<Cpu>,
    /// Micro-cost table.
    pub costs: Costs,
    /// Global cycle counter.
    pub cycles: CycleCounter,
    /// CET landing pads from loaded images.
    pub endbr: EndbrRegistry,
    /// Per-core supervisor shadow stacks (active when `IA32_S_CET.SH_STK_EN`
    /// is set; the paper's prototype omits them, §7 — the simulator
    /// supports both configurations).
    pub sstk: Vec<ShadowStack>,
    sensitive_domains: BTreeSet<Domain>,
}

impl Machine {
    /// Build a machine with `cores` logical cores and `dram_bytes` of DRAM.
    #[must_use]
    pub fn new(cores: usize, dram_bytes: u64) -> Machine {
        Machine {
            mem: PhysMemory::new(dram_bytes),
            cpus: (0..cores).map(Cpu::new).collect(),
            costs: Costs::default(),
            cycles: CycleCounter::new(),
            endbr: EndbrRegistry::new(),
            sstk: (0..cores)
                .map(|i| {
                    ShadowStack::new(VirtAddr(layout::MONITOR_SSTK_BASE.0 + ((i as u64) << 16)))
                })
                .collect(),
            sensitive_domains: BTreeSet::new(),
        }
    }

    /// Register `domain` as having a verified image that legitimately
    /// contains sensitive instructions. Trusted boot code (firmware /
    /// monitor loader) is the only legitimate caller; the deprivileged
    /// kernel never reaches this in the platform's control flow, and a
    /// kernel image that *does* contain sensitive bytes is rejected by the
    /// monitor's scan before it ever runs.
    pub fn allow_sensitive(&mut self, domain: Domain) {
        self.sensitive_domains.insert(domain);
    }

    /// Whether `domain` may execute sensitive instructions.
    #[must_use]
    pub fn sensitive_allowed(&self, domain: Domain) -> bool {
        self.sensitive_domains.contains(&domain)
    }

    fn env(&self, cpu: usize) -> MmuEnv {
        let c = &self.cpus[cpu];
        MmuEnv {
            root: c.cr3,
            cr0: c.cr0,
            cr4: c.cr4,
            mode: c.mode,
            rflags: c.rflags(),
            pkrs: c.pkrs(),
        }
    }

    /// Guard for sensitive-instruction execution (see module docs).
    fn sensitive_guard(&mut self, cpu: usize) -> Result<(), Fault> {
        let c = &self.cpus[cpu];
        if c.mode != CpuMode::Supervisor {
            return Err(Fault::GeneralProtection(
                "privileged instruction in user mode",
            ));
        }
        if !self.sensitive_domains.contains(&c.domain) {
            return Err(Fault::UndefinedInstruction(
                "sensitive instruction absent from this domain's verified image",
            ));
        }
        Ok(())
    }

    // ----- memory ------------------------------------------------------

    fn charge_translation(&mut self) {
        self.cycles.charge(4 * self.costs.walk_level);
    }

    /// Checked load of `buf.len()` bytes at `va` on core `cpu`.
    ///
    /// # Errors
    /// Any MMU permission fault.
    pub fn read(&mut self, cpu: usize, va: VirtAddr, buf: &mut [u8]) -> Result<(), Fault> {
        self.access(cpu, va, buf.len(), AccessKind::Read, |mem, pa, range| {
            mem.read(pa, &mut buf[range])
                .map_err(|_| Fault::Unrecoverable("read left DRAM"))
        })
    }

    /// Checked store of `buf` at `va` on core `cpu`.
    ///
    /// # Errors
    /// Any MMU permission fault.
    pub fn write(&mut self, cpu: usize, va: VirtAddr, buf: &[u8]) -> Result<(), Fault> {
        self.access(cpu, va, buf.len(), AccessKind::Write, |mem, pa, range| {
            mem.write(pa, &buf[range])
                .map_err(|_| Fault::Unrecoverable("write left DRAM"))
        })
    }

    fn access<F>(
        &mut self,
        cpu: usize,
        va: VirtAddr,
        len: usize,
        kind: AccessKind,
        mut op: F,
    ) -> Result<(), Fault>
    where
        F: FnMut(&mut PhysMemory, crate::PhysAddr, std::ops::Range<usize>) -> Result<(), Fault>,
    {
        let env = self.env(cpu);
        let mut done = 0usize;
        while done < len {
            let cur = va.add(done as u64);
            let page_remain = (crate::PAGE_SIZE as u64 - cur.page_offset()) as usize;
            let chunk = page_remain.min(len - done);
            let t = mmu::translate(&mut self.mem, &env, cur, kind)?;
            self.charge_translation();
            self.cycles
                .charge(self.costs.mem_op * (1 + chunk as u64 / 64));
            op(&mut self.mem, t.pa, done..done + chunk)?;
            done += chunk;
        }
        Ok(())
    }

    /// Checked u64 load.
    ///
    /// # Errors
    /// Any MMU permission fault.
    pub fn read_u64(&mut self, cpu: usize, va: VirtAddr) -> Result<u64, Fault> {
        let mut b = [0u8; 8];
        self.read(cpu, va, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Checked u64 store.
    ///
    /// # Errors
    /// Any MMU permission fault.
    pub fn write_u64(&mut self, cpu: usize, va: VirtAddr, v: u64) -> Result<(), Fault> {
        self.write(cpu, va, &v.to_le_bytes())
    }

    /// Permission-probe an access at `va` without transferring data (used
    /// by the platform's demand-paging path to detect faults before
    /// touching memory).
    ///
    /// # Errors
    /// Any MMU permission fault.
    pub fn probe(&mut self, cpu: usize, va: VirtAddr, kind: AccessKind) -> Result<(), Fault> {
        let env = self.env(cpu);
        mmu::translate(&mut self.mem, &env, va, kind)?;
        self.charge_translation();
        Ok(())
    }

    /// Instruction-fetch permission probe at `va` (NX/SMEP and mapping
    /// checks). Used when control is transferred into a region.
    ///
    /// # Errors
    /// Any MMU permission fault.
    pub fn fetch_check(&mut self, cpu: usize, va: VirtAddr) -> Result<(), Fault> {
        let env = self.env(cpu);
        mmu::translate(&mut self.mem, &env, va, AccessKind::Execute)?;
        self.charge_translation();
        Ok(())
    }

    // ----- privileged register writes (sensitive, Table 2) --------------

    /// `mov %r, %cr0`.
    ///
    /// # Errors
    /// `#GP` from user mode; `#UD` from a domain whose image lacks the
    /// instruction.
    pub fn write_cr0(&mut self, cpu: usize, v: u64) -> Result<(), Fault> {
        self.sensitive_guard(cpu)?;
        self.cycles.charge(self.costs.mov_cr);
        self.cpus[cpu].cr0 = Cr0(v);
        Ok(())
    }

    /// `mov %r, %cr3` — switches the page-table root.
    ///
    /// # Errors
    /// As [`Machine::write_cr0`].
    pub fn write_cr3(&mut self, cpu: usize, root: Frame) -> Result<(), Fault> {
        self.sensitive_guard(cpu)?;
        self.cycles.charge(self.costs.mov_cr);
        self.cpus[cpu].cr3 = root;
        Ok(())
    }

    /// `mov %r, %cr4`.
    ///
    /// # Errors
    /// As [`Machine::write_cr0`].
    pub fn write_cr4(&mut self, cpu: usize, v: u64) -> Result<(), Fault> {
        self.sensitive_guard(cpu)?;
        self.cycles.charge(self.costs.mov_cr);
        self.cpus[cpu].cr4 = Cr4(v);
        Ok(())
    }

    /// `wrmsr`.
    ///
    /// # Errors
    /// As [`Machine::write_cr0`].
    pub fn wrmsr(&mut self, cpu: usize, msr: Msr, v: u64) -> Result<(), Fault> {
        self.sensitive_guard(cpu)?;
        self.cycles.charge(self.costs.wrmsr);
        self.cpus[cpu].msrs.insert(msr, v);
        Ok(())
    }

    /// `rdmsr` — privileged but *not* sensitive: any ring-0 code may read.
    ///
    /// # Errors
    /// `#GP` from user mode.
    pub fn rdmsr(&mut self, cpu: usize, msr: Msr) -> Result<u64, Fault> {
        if self.cpus[cpu].mode != CpuMode::Supervisor {
            return Err(Fault::GeneralProtection("rdmsr in user mode"));
        }
        self.cycles.charge(self.costs.rdmsr);
        Ok(self.cpus[cpu].msr(msr))
    }

    /// `stac` — grants the kernel temporary access to user pages. Sensitive
    /// (Table 2): only the monitor's user-copy emulation may raise AC.
    ///
    /// # Errors
    /// As [`Machine::write_cr0`].
    pub fn stac(&mut self, cpu: usize) -> Result<(), Fault> {
        self.sensitive_guard(cpu)?;
        self.cycles.charge(self.costs.stac);
        self.cpus[cpu].ctx.rflags |= Rflags::AC;
        Ok(())
    }

    /// `clac` — *dropping* user access is never harmful, so any supervisor
    /// code may execute it.
    ///
    /// # Errors
    /// `#GP` from user mode.
    pub fn clac(&mut self, cpu: usize) -> Result<(), Fault> {
        if self.cpus[cpu].mode != CpuMode::Supervisor {
            return Err(Fault::GeneralProtection("clac in user mode"));
        }
        self.cycles.charge(self.costs.stac);
        self.cpus[cpu].ctx.rflags &= !Rflags::AC;
        Ok(())
    }

    /// `lidt`.
    ///
    /// # Errors
    /// As [`Machine::write_cr0`].
    pub fn lidt(&mut self, cpu: usize, base: VirtAddr) -> Result<(), Fault> {
        self.sensitive_guard(cpu)?;
        self.cycles.charge(self.costs.lidt);
        self.cpus[cpu].idtr = Some(Idtr { base });
        Ok(())
    }

    /// The ring/domain guard for `tdcall`, exported for the TDX-module
    /// simulator (the instruction itself is implemented in `erebor-tdx`).
    ///
    /// # Errors
    /// As [`Machine::write_cr0`].
    pub fn tdcall_guard(&mut self, cpu: usize) -> Result<(), Fault> {
        self.sensitive_guard(cpu)
    }

    /// `senduipi` — send a user-mode interrupt (§3.2 AV3: a sandbox could
    /// use user interrupts to signal attacker processes without a
    /// privileged exit). Requires a *valid* user-interrupt target table;
    /// the monitor clears `IA32_UINTR_TT.valid` before entering sandboxes
    /// holding client data (§6.2 ④).
    ///
    /// # Errors
    /// `#GP` when the target table is invalid or unconfigured.
    pub fn senduipi(&mut self, cpu: usize) -> Result<(), Fault> {
        self.cycles.charge(self.costs.alu + self.costs.mem_op);
        if self.cpus[cpu].msr(Msr::UintrTt) & 1 == 0 {
            return Err(Fault::GeneralProtection(
                "user-interrupt target table invalid",
            ));
        }
        Ok(())
    }

    // ----- control transfers --------------------------------------------

    /// An indirect `call`/`jmp` to `target`, with the CET IBT check.
    /// On success the core's domain follows the target's code region.
    ///
    /// # Errors
    /// `#CP` if IBT is active and `target` is not an `endbr64` landing pad;
    /// any fetch permission fault (NX, SMEP, unmapped).
    pub fn indirect_branch(&mut self, cpu: usize, target: VirtAddr) -> Result<(), Fault> {
        self.fetch_check(cpu, target)?;
        if self.cpus[cpu].ibt_enabled() {
            self.cycles.charge(self.costs.endbr_check);
            if !self.endbr.is_target(target) {
                return Err(Fault::ControlProtection(CpReason::MissingEndbranch));
            }
        }
        self.cpus[cpu].domain = domain_of(target);
        self.cpus[cpu].ctx.rip = target.0;
        Ok(())
    }

    /// A direct `call`/`jmp` (target encoded in the verified image; no IBT
    /// check applies). Still subject to fetch permissions.
    ///
    /// # Errors
    /// Any fetch permission fault.
    pub fn direct_branch(&mut self, cpu: usize, target: VirtAddr) -> Result<(), Fault> {
        self.fetch_check(cpu, target)?;
        self.cycles.charge(self.costs.call_ret);
        self.cpus[cpu].domain = domain_of(target);
        self.cpus[cpu].ctx.rip = target.0;
        Ok(())
    }

    /// `syscall`: ring 3 → ring 0 transfer to `IA32_LSTAR`.
    /// Returns the entry address the kernel (or monitor interposer) runs at.
    ///
    /// # Errors
    /// `#UD` if called from supervisor mode (matches hardware: `syscall`
    /// is a user-mode instruction in this model).
    pub fn syscall(&mut self, cpu: usize) -> Result<VirtAddr, Fault> {
        if self.cpus[cpu].mode != CpuMode::User {
            return Err(Fault::UndefinedInstruction("syscall from supervisor mode"));
        }
        let target = VirtAddr(self.cpus[cpu].msr(Msr::Lstar));
        self.cycles
            .charge(self.costs.syscall_entry + self.costs.swapgs);
        let rip = self.cpus[cpu].ctx.rip;
        self.cpus[cpu].ctx.gpr[1] = rip; // rcx = return address
        self.cpus[cpu].mode = CpuMode::Supervisor;
        self.cpus[cpu].domain = domain_of(target);
        self.cpus[cpu].ctx.rip = target.0;
        Ok(target)
    }

    /// `sysret`: ring 0 → ring 3 return to the address in `rcx`.
    ///
    /// # Errors
    /// `#GP` from user mode.
    pub fn sysret(&mut self, cpu: usize) -> Result<(), Fault> {
        if self.cpus[cpu].mode != CpuMode::Supervisor {
            return Err(Fault::GeneralProtection("sysret in user mode"));
        }
        self.cycles
            .charge(self.costs.sysret_exit + self.costs.swapgs);
        let rcx = self.cpus[cpu].ctx.gpr[1];
        self.cpus[cpu].mode = CpuMode::User;
        self.cpus[cpu].domain = Domain::User;
        self.cpus[cpu].ctx.rip = rcx;
        Ok(())
    }

    /// Hardware interrupt/exception delivery on core `cpu`: reads the
    /// handler from the in-memory IDT (physical access — delivery cannot be
    /// blocked by mappings), saves the interrupted context, and switches to
    /// supervisor mode at the handler. Returns `(handler, saved context)`.
    ///
    /// # Errors
    /// [`Fault::Unrecoverable`] if no IDT is loaded or its page is unmapped
    /// (triple-fault analogue).
    pub fn deliver_interrupt(
        &mut self,
        cpu: usize,
        vec: u8,
    ) -> Result<(VirtAddr, GprContext), Fault> {
        let idtr = self.cpus[cpu]
            .idtr
            .ok_or(Fault::Unrecoverable("no IDT loaded"))?;
        let root = self.cpus[cpu].cr3;
        let handler = crate::idt::read_entry(&mut self.mem, root, idtr, vec)?;
        if handler.0 == 0 {
            return Err(Fault::Unrecoverable("unhandled vector (empty IDT entry)"));
        }
        self.cycles.charge(self.costs.interrupt_delivery);
        let saved = self.cpus[cpu].ctx;
        if self.cpus[cpu].sstk_enabled() {
            // Hardware pushes the interrupted rip onto the supervisor
            // shadow stack (§2.2).
            self.cycles.charge(self.costs.sstk_op);
            self.sstk[cpu].push(VirtAddr(saved.rip));
        }
        self.cpus[cpu].mode = CpuMode::Supervisor;
        self.cpus[cpu].domain = domain_of(handler);
        self.cpus[cpu].ctx.rip = handler.0;
        Ok((handler, saved))
    }

    /// `iret`: restore a saved context (and its privilege mode, derived
    /// from the return address).
    ///
    /// # Errors
    /// `#GP` from user mode.
    pub fn iret(&mut self, cpu: usize, saved: GprContext) -> Result<(), Fault> {
        if self.cpus[cpu].mode != CpuMode::Supervisor {
            return Err(Fault::GeneralProtection("iret in user mode"));
        }
        self.cycles.charge(self.costs.iret);
        let target = VirtAddr(saved.rip);
        if self.cpus[cpu].sstk_enabled() {
            // `iret` verifies the return target against the shadow stack;
            // a mismatch (ROP into the kernel) is #CP.
            self.cycles.charge(self.costs.sstk_op);
            self.sstk[cpu].pop(target)?;
        }
        self.cpus[cpu].ctx = saved;
        self.cpus[cpu].mode = if layout::is_user(target) {
            CpuMode::User
        } else {
            CpuMode::Supervisor
        };
        self.cpus[cpu].domain = domain_of(target);
        Ok(())
    }
}

impl core::fmt::Debug for Machine {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Machine")
            .field("cores", &self.cpus.len())
            .field("cycles", &self.cycles.total())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paging::{map_raw, Pte, PteFlags};

    fn machine() -> Machine {
        let mut m = Machine::new(2, 64 * 1024 * 1024);
        let root = m.mem.alloc_frame().unwrap();
        for c in &mut m.cpus {
            c.cr3 = root;
            c.cr0 = Cr0(Cr0::WP | Cr0::PG);
            c.cr4 = Cr4(Cr4::SMEP | Cr4::SMAP | Cr4::PKS);
            c.domain = Domain::Kernel;
        }
        m
    }

    fn map(m: &mut Machine, va: u64, flags: PteFlags) -> Frame {
        let f = m.mem.alloc_frame().unwrap();
        let root = m.cpus[0].cr3;
        map_raw(
            &mut m.mem,
            root,
            VirtAddr(va),
            Pte::encode(f, flags),
            crate::paging::intermediate_for(flags),
        )
        .unwrap();
        f
    }

    #[test]
    fn checked_rw_roundtrip_charges_cycles() {
        let mut m = machine();
        map(&mut m, 0xffff_8000_0000_0000u64, PteFlags::kernel_rw(0));
        let before = m.cycles.total();
        m.write(0, VirtAddr(0xffff_8000_0000_0100), b"hello")
            .unwrap();
        let mut b = [0u8; 5];
        m.read(0, VirtAddr(0xffff_8000_0000_0100), &mut b).unwrap();
        assert_eq!(&b, b"hello");
        assert!(m.cycles.total() > before);
    }

    #[test]
    fn cross_page_write_checks_both_pages() {
        let mut m = machine();
        map(&mut m, 0xffff_8000_0000_0000u64, PteFlags::kernel_rw(0));
        // Second page intentionally unmapped.
        let err = m
            .write(0, VirtAddr(0xffff_8000_0000_0ffc), &[0u8; 16])
            .unwrap_err();
        assert!(err.is_pf(crate::fault::PfReason::NotPresent));
    }

    #[test]
    fn sensitive_ops_denied_in_user_mode_with_gp() {
        let mut m = machine();
        m.allow_sensitive(Domain::Kernel);
        m.cpus[0].mode = CpuMode::User;
        assert!(matches!(
            m.wrmsr(0, Msr::Lstar, 1),
            Err(Fault::GeneralProtection(_))
        ));
        assert!(matches!(
            m.write_cr3(0, Frame(0)),
            Err(Fault::GeneralProtection(_))
        ));
        assert!(matches!(m.stac(0), Err(Fault::GeneralProtection(_))));
        assert!(matches!(
            m.tdcall_guard(0),
            Err(Fault::GeneralProtection(_))
        ));
    }

    #[test]
    fn sensitive_ops_denied_in_unverified_domain_with_ud() {
        let mut m = machine(); // kernel domain, not registered as sensitive
        assert!(matches!(
            m.wrmsr(0, Msr::Pkrs, 0),
            Err(Fault::UndefinedInstruction(_))
        ));
        assert!(matches!(
            m.lidt(0, VirtAddr(0x1000)),
            Err(Fault::UndefinedInstruction(_))
        ));
        // rdmsr and clac remain available to the deprivileged kernel.
        assert!(m.rdmsr(0, Msr::Pkrs).is_ok());
        assert!(m.clac(0).is_ok());
    }

    #[test]
    fn sensitive_ops_allowed_in_registered_domain() {
        let mut m = machine();
        m.allow_sensitive(Domain::Monitor);
        m.cpus[0].domain = Domain::Monitor;
        m.wrmsr(0, Msr::Pkrs, 0b1100).unwrap();
        assert_eq!(m.cpus[0].msr(Msr::Pkrs), 0b1100);
        m.stac(0).unwrap();
        assert!(m.cpus[0].rflags().ac());
        m.clac(0).unwrap();
        assert!(!m.cpus[0].rflags().ac());
    }

    #[test]
    fn pkrs_is_per_core() {
        let mut m = machine();
        m.allow_sensitive(Domain::Monitor);
        m.cpus[0].domain = Domain::Monitor;
        m.wrmsr(0, Msr::Pkrs, 0b11).unwrap();
        assert_eq!(m.cpus[0].msr(Msr::Pkrs), 0b11);
        assert_eq!(m.cpus[1].msr(Msr::Pkrs), 0, "core 1 unaffected");
    }

    #[test]
    fn syscall_transfers_to_lstar() {
        let mut m = machine();
        m.allow_sensitive(Domain::Monitor);
        m.cpus[0].domain = Domain::Monitor;
        m.wrmsr(0, Msr::Lstar, layout::MONITOR_BASE.0).unwrap();
        m.cpus[0].mode = CpuMode::User;
        m.cpus[0].domain = Domain::User;
        m.cpus[0].ctx.rip = 0x40_1000;
        let entry = m.syscall(0).unwrap();
        assert_eq!(entry, layout::MONITOR_BASE);
        assert_eq!(m.cpus[0].mode, CpuMode::Supervisor);
        assert_eq!(m.cpus[0].domain, Domain::Monitor);
        assert_eq!(m.cpus[0].ctx.gpr[1], 0x40_1000, "rcx holds return rip");
        m.sysret(0).unwrap();
        assert_eq!(m.cpus[0].mode, CpuMode::User);
        assert_eq!(m.cpus[0].ctx.rip, 0x40_1000);
    }

    #[test]
    fn interrupt_delivery_reads_idt_and_saves_context() {
        let mut m = machine();
        m.allow_sensitive(Domain::Monitor);
        m.cpus[0].domain = Domain::Monitor;
        let base = 0xffff_8000_0010_0000u64;
        map(&mut m, base, PteFlags::kernel_ro(0));
        m.lidt(0, VirtAddr(base)).unwrap();
        let root = m.cpus[0].cr3;
        crate::idt::write_entry_raw(
            &mut m.mem,
            root,
            Idtr {
                base: VirtAddr(base),
            },
            crate::idt::vector::TIMER,
            VirtAddr(0xffff_8000_0000_7000),
        )
        .unwrap();
        m.cpus[0].ctx.gpr[0] = 0x4141;
        m.cpus[0].ctx.rip = 0x40_2000;
        let (handler, saved) = m.deliver_interrupt(0, crate::idt::vector::TIMER).unwrap();
        assert_eq!(handler, VirtAddr(0xffff_8000_0000_7000));
        assert_eq!(saved.gpr[0], 0x4141);
        assert_eq!(m.cpus[0].domain, Domain::Kernel);
        m.iret(0, saved).unwrap();
        assert_eq!(m.cpus[0].ctx.rip, 0x40_2000);
        assert_eq!(m.cpus[0].mode, CpuMode::User, "returned to a user rip");
    }

    #[test]
    fn ibt_blocks_non_endbr_targets() {
        let mut m = machine();
        m.allow_sensitive(Domain::Monitor);
        m.cpus[0].domain = Domain::Monitor;
        m.write_cr4(0, Cr4::SMEP | Cr4::SMAP | Cr4::PKS | Cr4::CET)
            .unwrap();
        m.wrmsr(0, Msr::SCet, s_cet::ENDBR_EN).unwrap();
        map(&mut m, layout::MONITOR_BASE.0, PteFlags::kernel_rx(0));
        let pad = VirtAddr(layout::MONITOR_BASE.0 + 0x10);
        m.endbr.add(pad);
        m.indirect_branch(0, pad).unwrap();
        let err = m.indirect_branch(0, pad.add(4)).unwrap_err();
        assert_eq!(err, Fault::ControlProtection(CpReason::MissingEndbranch));
    }

    #[test]
    fn indirect_branch_respects_nx_and_smep() {
        let mut m = machine();
        map(&mut m, 0xffff_8000_0000_0000u64, PteFlags::kernel_rw(0)); // NX data
        let err = m
            .indirect_branch(0, VirtAddr(0xffff_8000_0000_0000))
            .unwrap_err();
        assert!(err.is_pf(crate::fault::PfReason::NoExecute));
        map(&mut m, 0x40_0000, PteFlags::user_rx());
        let err = m.indirect_branch(0, VirtAddr(0x40_0000)).unwrap_err();
        assert!(err.is_pf(crate::fault::PfReason::Smep));
    }

    #[test]
    fn domain_of_layout() {
        assert_eq!(domain_of(layout::MONITOR_BASE), Domain::Monitor);
        assert_eq!(domain_of(layout::KERNEL_BASE), Domain::Kernel);
        assert_eq!(domain_of(VirtAddr(0x40_0000)), Domain::User);
    }
}
