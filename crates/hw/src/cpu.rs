//! The simulated CPU package: per-core register state plus the [`Machine`]
//! that couples cores to DRAM and enforces every architectural check on
//! every access and privileged operation.
//!
//! ## Execution model
//!
//! Software in this reproduction is Rust code, but every *architecturally
//! visible* action — loads, stores, instruction fetches, privileged
//! register writes, control transfers — must go through [`Machine`]
//! methods, which enforce the same checks real hardware would. Two layers
//! of enforcement matter for Erebor:
//!
//! 1. **Ring check**: privileged operations from [`CpuMode::User`] raise
//!    `#GP`, as on hardware.
//! 2. **Code-provenance check**: each core tracks the [`Domain`] its
//!    current code region belongs to (derived from the address map). A
//!    *sensitive instruction* (Table 2) executes only if the domain's
//!    verified image actually contains that instruction class — the
//!    monitor's boot-time byte scan (§5.1) guarantees the deprivileged
//!    kernel's image contains none, so a kernel-domain attempt is `#UD`
//!    ("the instruction is not there to execute"). Registration of a
//!    domain as sensitive-capable is a boot-time act of the trusted
//!    firmware/monitor only.

use crate::cet::{EndbrRegistry, ShadowStack};
use crate::cycles::{Bucket, Costs, CycleCounter};
use crate::decision::{CachedCtx, DecisionCache, FastpathStats};
use crate::fault::{AccessKind, CpReason, Fault};
use crate::idt::Idtr;
use crate::inject::{self, CoreView, InjectionPoint, InjectorHandle};
use crate::layout;
use crate::mmu::{self, MmuEnv};
use crate::phys::{Frame, PhysMemory};
use crate::regs::{s_cet, Cr0, Cr4, GprContext, Msr, PkrsPerms, Rflags};
use crate::tlb::{HwStats, Tlb};
use crate::VirtAddr;
use erebor_trace::{TraceBuffer, TraceEvent};
use std::collections::{BTreeMap, BTreeSet};

/// Hardware privilege mode (ring 3 vs ring 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuMode {
    /// Ring 3.
    User,
    /// Ring 0. Erebor further splits this into the monitor's *privileged*
    /// and the kernel's *normal* virtual modes (§5) — a software construct
    /// tracked via [`Domain`].
    Supervisor,
}

/// Code-provenance domain of the currently executing region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Domain {
    /// Trusted boot firmware (OVMF-like).
    Firmware,
    /// The Erebor monitor (virtual privileged mode).
    Monitor,
    /// The deprivileged guest kernel (virtual normal mode).
    Kernel,
    /// Userspace (native processes and sandboxes).
    User,
}

/// Derive the domain that owns a code address, from the fixed layout.
#[must_use]
pub fn domain_of(va: VirtAddr) -> Domain {
    if layout::is_monitor(va) {
        Domain::Monitor
    } else if layout::is_user(va) {
        Domain::User
    } else {
        Domain::Kernel
    }
}

/// Per-core register state.
#[derive(Debug, Clone)]
pub struct Cpu {
    /// Logical core id.
    pub id: usize,
    /// Current hardware privilege.
    pub mode: CpuMode,
    /// Current code-provenance domain.
    pub domain: Domain,
    /// General-purpose context.
    pub ctx: GprContext,
    /// CR0.
    pub cr0: Cr0,
    /// CR3 (page-table root frame).
    pub cr3: Frame,
    /// CR4.
    pub cr4: Cr4,
    /// IDTR, once `lidt` has executed.
    pub idtr: Option<Idtr>,
    msrs: BTreeMap<Msr, u64>,
}

impl Cpu {
    /// A fresh core: supervisor mode in the firmware domain, paging off,
    /// everything else zero.
    #[must_use]
    pub fn new(id: usize) -> Cpu {
        Cpu {
            id,
            mode: CpuMode::Supervisor,
            domain: Domain::Firmware,
            ctx: GprContext::default(),
            cr0: Cr0(0),
            cr3: Frame(0),
            cr4: Cr4(0),
            idtr: None,
            msrs: BTreeMap::new(),
        }
    }

    /// Raw MSR value (0 if never written).
    #[must_use]
    pub fn msr(&self, msr: Msr) -> u64 {
        self.msrs.get(&msr).copied().unwrap_or(0)
    }

    /// Decoded PKRS view.
    #[must_use]
    pub fn pkrs(&self) -> PkrsPerms {
        PkrsPerms(self.msr(Msr::Pkrs))
    }

    /// RFLAGS view.
    #[must_use]
    pub fn rflags(&self) -> Rflags {
        Rflags(self.ctx.rflags)
    }

    /// Whether CET indirect-branch tracking is active.
    #[must_use]
    pub fn ibt_enabled(&self) -> bool {
        self.cr4.cet() && self.msr(Msr::SCet) & s_cet::ENDBR_EN != 0
    }

    /// Whether CET shadow stacks are active.
    #[must_use]
    pub fn sstk_enabled(&self) -> bool {
        self.cr4.cet() && self.msr(Msr::SCet) & s_cet::SH_STK_EN != 0
    }
}

/// The machine: DRAM, cores, cycle accounting, and the CET landing-pad
/// registry.
pub struct Machine {
    /// Simulated DRAM.
    pub mem: PhysMemory,
    /// Logical cores.
    pub cpus: Vec<Cpu>,
    /// Micro-cost table.
    pub costs: Costs,
    /// Global cycle counter.
    pub cycles: CycleCounter,
    /// CET landing pads from loaded images.
    pub endbr: EndbrRegistry,
    /// Per-core supervisor shadow stacks (active when `IA32_S_CET.SH_STK_EN`
    /// is set; the paper's prototype omits them, §7 — the simulator
    /// supports both configurations).
    pub sstk: Vec<ShadowStack>,
    /// Per-core software TLBs consulted before the walker.
    pub tlbs: Vec<Tlb>,
    /// Translation-path counters (hits, misses, flushes, shootdown IPIs).
    pub stats: HwStats,
    /// Per-core bounded ring of cycle-stamped trace events. Recording
    /// charges no cycles, so tracing never perturbs the model it observes.
    pub trace: TraceBuffer,
    /// Fast-path switch: `false` forces every translation through the
    /// walker (ablation + the TLB-equivalence property test).
    pub tlb_enabled: bool,
    /// Batch fast-path switch: `false` forces [`Machine::run_batch`] to
    /// execute every op through the ordinary slow path (ablation and the
    /// differential equivalence suite). The decision cache is consulted
    /// only when both this and [`Machine::tlb_enabled`] are set; either
    /// way the observable machine state evolves identically.
    pub fastpath_enabled: bool,
    /// Fast-path observability counters. Kept outside [`HwStats`] so
    /// fastpath-on and fastpath-off runs produce byte-identical snapshots.
    pub fastpath: FastpathStats,
    /// MMU-trace switch: when set, TLB maintenance and cached-translation
    /// hits record gated trace events ([`TraceEvent::TlbShootdown`],
    /// [`TraceEvent::TlbInvlpg`], [`TraceEvent::TlbFlush`],
    /// [`TraceEvent::TlbHit`]) that the `erebor-analyze` race detector
    /// consumes. Off by default so ordinary traces (and the byte-stable
    /// `--trace` CI export) are unchanged.
    pub mmu_trace: bool,
    sensitive_domains: BTreeSet<Domain>,
    injector: Option<InjectorHandle>,
    /// `(cpu, page-number)` pairs whose invalidation IPI was dropped by an
    /// injector: the core may hold a stale entry for the page until its
    /// next flush. Together with `pending_asid_shootdowns` this is the
    /// tolerated stale set for the TLB-coherence checks.
    pending_shootdowns: BTreeSet<(usize, u64)>,
    /// `(cpu, root-frame-number)` pairs whose *coalesced* (full-ASID)
    /// invalidation IPI was dropped: the core may hold stale entries for
    /// any page of that address space until its next full flush. Root
    /// `0` records a dropped broadcast flush (all roots). One entry
    /// stands in for what would otherwise be hundreds of per-page
    /// ledger rows from a batched teardown.
    pending_asid_shootdowns: BTreeSet<(usize, u64)>,
    interrupt_depth: Vec<u32>,
    /// Per-core permission-decision caches for the batch fast path.
    decisions: Vec<DecisionCache>,
    /// Machine-global MMU epoch: bumped by every TLB-maintenance action
    /// and every `pending_shootdowns` ledger change, so a decision cache
    /// keyed under an older epoch can never serve a stale verdict.
    mmu_epoch: u64,
}

impl Machine {
    /// Build a machine with `cores` logical cores and `dram_bytes` of DRAM.
    #[must_use]
    pub fn new(cores: usize, dram_bytes: u64) -> Machine {
        Machine {
            mem: PhysMemory::new(dram_bytes),
            cpus: (0..cores).map(Cpu::new).collect(),
            costs: Costs::default(),
            cycles: CycleCounter::new(),
            endbr: EndbrRegistry::new(),
            sstk: (0..cores)
                .map(|i| {
                    ShadowStack::new(VirtAddr(layout::MONITOR_SSTK_BASE.0 + ((i as u64) << 16)))
                })
                .collect(),
            tlbs: (0..cores).map(|_| Tlb::new()).collect(),
            stats: HwStats::default(),
            trace: TraceBuffer::new(cores),
            tlb_enabled: true,
            fastpath_enabled: true,
            fastpath: FastpathStats::default(),
            mmu_trace: false,
            sensitive_domains: BTreeSet::new(),
            injector: None,
            pending_shootdowns: BTreeSet::new(),
            pending_asid_shootdowns: BTreeSet::new(),
            interrupt_depth: vec![0; cores],
            decisions: (0..cores).map(|_| DecisionCache::new()).collect(),
            mmu_epoch: 0,
        }
    }

    // ----- tracing ------------------------------------------------------

    /// Record a trace event on `cpu`, stamped with the current simulated
    /// cycle count.
    pub fn trace_event(&mut self, cpu: usize, event: TraceEvent) {
        self.trace.record(cpu, self.cycles.total(), event);
    }

    // ----- fault injection ----------------------------------------------

    /// Install a chaos injector; the physical memory shares the handle so
    /// allocation failures can be injected too.
    pub fn set_injector(&mut self, injector: InjectorHandle) {
        self.mem.set_injector(injector.clone());
        self.injector = Some(injector);
    }

    /// Remove any installed injector.
    pub fn clear_injector(&mut self) {
        self.mem.clear_injector();
        self.injector = None;
    }

    /// Consult the injector for a fault at `point` (no-op without one).
    ///
    /// # Errors
    /// Whatever fault the injector chose to deliver.
    pub fn chaos_fault(&mut self, point: InjectionPoint) -> Result<(), Fault> {
        let injected = match &self.injector {
            Some(h) => inject::lock(h).inject_fault(point),
            None => None,
        };
        if let Some(f) = injected {
            self.trace_event(
                point.cpu().unwrap_or(0),
                TraceEvent::ChaosFault { point: point.name() },
            );
            return Err(f);
        }
        Ok(())
    }

    /// Whether the injector wants an interrupt delivered inside the
    /// window at `point`.
    #[must_use]
    pub fn chaos_preempt(&mut self, point: InjectionPoint) -> bool {
        self.injector
            .as_ref()
            .is_some_and(|h| inject::lock(h).preempt(point))
    }

    /// Hand the injector a kernel's-eye snapshot of `cpu` (recorded by
    /// invariant checkers during injected preemptions).
    pub fn chaos_observe(&mut self, cpu: usize) {
        if let Some(h) = &self.injector {
            let c = &self.cpus[cpu];
            let view = CoreView {
                cpu,
                mode: c.mode,
                domain: c.domain,
                pkrs: c.msr(Msr::Pkrs),
            };
            inject::lock(h).observe_preemption(view);
        }
    }

    /// Raw completion status to fail an in-flight `tdcall` with.
    #[must_use]
    pub fn chaos_tdcall_status(&mut self, cpu: usize) -> Option<u64> {
        self.injector
            .as_ref()
            .and_then(|h| inject::lock(h).tdcall_status(cpu))
    }

    /// Whether the untrusted host contends with the in-flight `MapGPA`.
    #[must_use]
    pub fn chaos_host_sept_flip(&mut self) -> bool {
        self.injector
            .as_ref()
            .is_some_and(|h| inject::lock(h).host_sept_flip())
    }

    /// Pages whose invalidation IPI was dropped by the injector, keyed
    /// `(cpu, page-number)`: the tolerated-stale set for TLB coherence.
    #[must_use]
    pub fn pending_shootdowns(&self) -> &BTreeSet<(usize, u64)> {
        &self.pending_shootdowns
    }

    /// Address spaces whose coalesced invalidation IPI was dropped,
    /// keyed `(cpu, root-frame-number)` (`0` = a dropped broadcast):
    /// the full-ASID rows of the tolerated-stale ledger.
    #[must_use]
    pub fn pending_asid_shootdowns(&self) -> &BTreeSet<(usize, u64)> {
        &self.pending_asid_shootdowns
    }

    /// Whether staleness of `cpu`'s cached translation for `page` under
    /// `root` is recorded (tolerated) in either ledger: a per-page row,
    /// a full-ASID row for the entry's root, or a dropped broadcast row.
    #[must_use]
    pub fn shootdown_pending(&self, cpu: usize, root: Frame, page: u64) -> bool {
        self.pending_shootdowns.contains(&(cpu, page))
            || self.pending_asid_shootdowns.contains(&(cpu, root.0))
            || self.pending_asid_shootdowns.contains(&(cpu, 0))
    }

    /// Current MMU epoch (see [`Machine::bump_mmu_epoch`]).
    #[must_use]
    pub fn mmu_epoch(&self) -> u64 {
        self.mmu_epoch
    }

    /// Advance the MMU epoch, invalidating every permission-decision cache
    /// on its next validity check. Called by every TLB-maintenance path
    /// and every `pending_shootdowns` ledger change; also exposed so the
    /// platform layers (gate / monitor / EMC lifecycle) can pin epochs at
    /// mapping-visible boundaries. Redundant bumps are harmless: the bump
    /// itself has no observable side effects (no cycles, no counters, no
    /// trace), only extra decision-cache re-keys.
    pub fn bump_mmu_epoch(&mut self) {
        self.mmu_epoch = self.mmu_epoch.wrapping_add(1);
    }

    /// Test/ablation hook: force the MMU epoch to an arbitrary value. The
    /// equivalence suite uses this for the epoch-rollover regression, and
    /// the auditor's red test uses it to *revive* a decision cache that a
    /// downgrade should have killed — the bug class check C9 exists for.
    pub fn force_mmu_epoch(&mut self, v: u64) {
        self.mmu_epoch = v;
    }

    /// Read-only view of `cpu`'s permission-decision cache (the state
    /// auditor re-validates every stored decision against the live TLB).
    #[must_use]
    pub fn decision_cache(&self, cpu: usize) -> &DecisionCache {
        &self.decisions[cpu]
    }

    /// The live register context the decision cache keys on: everything
    /// [`mmu::check_access`] and the environment builder consult.
    #[must_use]
    pub fn live_ctx(&self, cpu: usize) -> CachedCtx {
        let c = &self.cpus[cpu];
        CachedCtx {
            root: c.cr3,
            cr0: c.cr0.0,
            cr4: c.cr4.0,
            pkrs: c.msr(Msr::Pkrs),
            supervisor: c.mode == CpuMode::Supervisor,
            ac: c.rflags().ac(),
        }
    }

    /// Nesting depth of interrupts currently live on `cpu` (incremented
    /// at delivery, decremented at `iret`).
    #[must_use]
    pub fn interrupt_depth(&self, cpu: usize) -> u32 {
        self.interrupt_depth[cpu]
    }

    /// Uninjected, unguarded MSR restore for fault-path rollback: when a
    /// gate aborts mid-transition it must be able to put the old value
    /// back without the rollback itself being injectable (the real gate's
    /// recovery path is straight-line verified monitor code).
    pub fn restore_msr(&mut self, cpu: usize, msr: Msr, v: u64) {
        self.cycles.charge(self.costs.wrmsr);
        self.cpus[cpu].msrs.insert(msr, v);
    }

    /// Register `domain` as having a verified image that legitimately
    /// contains sensitive instructions. Trusted boot code (firmware /
    /// monitor loader) is the only legitimate caller; the deprivileged
    /// kernel never reaches this in the platform's control flow, and a
    /// kernel image that *does* contain sensitive bytes is rejected by the
    /// monitor's scan before it ever runs.
    pub fn allow_sensitive(&mut self, domain: Domain) {
        self.sensitive_domains.insert(domain);
    }

    /// Whether `domain` may execute sensitive instructions.
    #[must_use]
    pub fn sensitive_allowed(&self, domain: Domain) -> bool {
        self.sensitive_domains.contains(&domain)
    }

    /// The registered sensitive-capable domains (migration export).
    #[must_use]
    pub fn sensitive_domains(&self) -> &BTreeSet<Domain> {
        &self.sensitive_domains
    }

    /// Drain both staleness ledgers before the source of a migration is
    /// quiesced, returning `(per-page rows, full-asid rows)` drained.
    ///
    /// A migrated snapshot must not carry *tolerated* staleness: the
    /// ledgers exist to tell a modelled IPI loss from a real bug, and an
    /// importer has no way to re-establish that tolerance. Draining
    /// delivers the lost invalidations host-side — per-page rows drop
    /// the one cached translation, full-ASID rows flush the whole core —
    /// exactly what the in-flight IPI would have done had it arrived.
    /// On a machine with empty ledgers (every non-chaos run) this is a
    /// complete no-op: no cycles, no counters, no trace, no epoch bump,
    /// so migration stays invisible to same-seed equivalence.
    pub fn quiesce_for_migration(&mut self) -> (usize, usize) {
        if self.pending_shootdowns.is_empty() && self.pending_asid_shootdowns.is_empty() {
            return (0, 0);
        }
        let pages = core::mem::take(&mut self.pending_shootdowns);
        let asids = core::mem::take(&mut self.pending_asid_shootdowns);
        for (cpu, page) in &pages {
            self.tlbs[*cpu].invalidate_page(VirtAddr(page << 12));
        }
        for (cpu, _root) in &asids {
            // Conservative: a full flush covers every page the stranded
            // address space (or dropped broadcast) may have left stale.
            self.tlbs[*cpu].flush_all();
        }
        // The TLBs changed under the decision caches: kill any cached
        // verdict derived from the dropped entries.
        self.bump_mmu_epoch();
        (pages.len(), asids.len())
    }

    fn env(&self, cpu: usize) -> MmuEnv {
        let c = &self.cpus[cpu];
        MmuEnv {
            root: c.cr3,
            cr0: c.cr0,
            cr4: c.cr4,
            mode: c.mode,
            rflags: c.rflags(),
            pkrs: c.pkrs(),
        }
    }

    /// Guard for sensitive-instruction execution (see module docs).
    fn sensitive_guard(&mut self, cpu: usize) -> Result<(), Fault> {
        let c = &self.cpus[cpu];
        if c.mode != CpuMode::Supervisor {
            return Err(Fault::GeneralProtection(
                "privileged instruction in user mode",
            ));
        }
        if !self.sensitive_domains.contains(&c.domain) {
            return Err(Fault::UndefinedInstruction(
                "sensitive instruction absent from this domain's verified image",
            ));
        }
        Ok(())
    }

    // ----- memory ------------------------------------------------------

    /// Translate `va` for `kind`, consulting the core's TLB before the
    /// walker, and charge the translation cycles: `tlb_hit` on a hit, the
    /// real `levels_walked * walk_level` on a miss (which also fills the
    /// TLB). Faults charge nothing, as before.
    ///
    /// A hit re-runs [`mmu::check_access`] against the *live* register
    /// state and the cached effective permissions, so PKRS/CR4/CR0.WP
    /// writes need no flush. A write hit on a clean entry re-walks so the
    /// dirty bit lands in the in-memory PTE (as hardware promotes D=0→1
    /// with a table walk).
    fn translate_cached(
        &mut self,
        cpu: usize,
        va: VirtAddr,
        kind: AccessKind,
    ) -> Result<crate::PhysAddr, Fault> {
        let env = self.env(cpu);
        if self.tlb_enabled {
            if let Some(entry) = self.tlbs[cpu].lookup(env.root, va, kind) {
                let needs_dirty_promotion = kind == AccessKind::Write && !entry.dirty;
                if !needs_dirty_promotion {
                    if let Err(f) = mmu::check_access(&env, va, kind, entry.eff) {
                        self.trace_fault(cpu, va, kind);
                        return Err(f);
                    }
                    self.stats.tlb_hits = self.stats.tlb_hits.saturating_add(1);
                    self.cycles.charge_to(Bucket::PageWalk, self.costs.tlb_hit);
                    if self.mmu_trace {
                        self.trace_event(
                            cpu,
                            TraceEvent::TlbHit {
                                root: env.root.0,
                                page: va.0 >> 12,
                            },
                        );
                    }
                    return Ok(crate::PhysAddr(entry.frame.base().0 + va.page_offset()));
                }
            }
        }
        let t = match mmu::translate(&mut self.mem, &env, va, kind) {
            Ok(t) => t,
            Err(f) => {
                self.trace_fault(cpu, va, kind);
                return Err(f);
            }
        };
        self.cycles
            .charge_to(Bucket::PageWalk, u64::from(t.levels_walked) * self.costs.walk_level);
        if self.tlb_enabled {
            self.stats.tlb_misses = self.stats.tlb_misses.saturating_add(1);
            self.tlbs[cpu].insert(env.root, va, kind, &t);
            // Slot coupling: no decision may outlive the TLB entry it was
            // derived from, so the fill clears the decisions its slot backs
            // (conflict evictions and same-page refills alike).
            self.decisions[cpu].on_tlb_fill(va, kind);
        }
        Ok(t.pa)
    }

    fn trace_fault(&mut self, cpu: usize, va: VirtAddr, kind: AccessKind) {
        self.trace_event(
            cpu,
            TraceEvent::PageFault {
                va_page: va.0 >> 12,
                write: kind == AccessKind::Write,
            },
        );
    }

    /// Checked load of `buf.len()` bytes at `va` on core `cpu`.
    ///
    /// # Errors
    /// Any MMU permission fault.
    pub fn read(&mut self, cpu: usize, va: VirtAddr, buf: &mut [u8]) -> Result<(), Fault> {
        self.access(cpu, va, buf.len(), AccessKind::Read, |mem, pa, range| {
            mem.read(pa, &mut buf[range])
                .map_err(|_| Fault::Unrecoverable("read left DRAM"))
        })
    }

    /// Checked store of `buf` at `va` on core `cpu`.
    ///
    /// # Errors
    /// Any MMU permission fault.
    pub fn write(&mut self, cpu: usize, va: VirtAddr, buf: &[u8]) -> Result<(), Fault> {
        self.access(cpu, va, buf.len(), AccessKind::Write, |mem, pa, range| {
            mem.write(pa, &buf[range])
                .map_err(|_| Fault::Unrecoverable("write left DRAM"))
        })
    }

    fn access<F>(
        &mut self,
        cpu: usize,
        va: VirtAddr,
        len: usize,
        kind: AccessKind,
        mut op: F,
    ) -> Result<(), Fault>
    where
        F: FnMut(&mut PhysMemory, crate::PhysAddr, std::ops::Range<usize>) -> Result<(), Fault>,
    {
        let mut done = 0usize;
        while done < len {
            let cur = va.add(done as u64);
            let page_remain = (crate::PAGE_SIZE as u64 - cur.page_offset()) as usize;
            let chunk = page_remain.min(len - done);
            let pa = self.translate_cached(cpu, cur, kind)?;
            self.cycles
                .charge(self.costs.mem_op * (1 + chunk as u64 / 64));
            op(&mut self.mem, pa, done..done + chunk)?;
            done += chunk;
        }
        Ok(())
    }

    /// Checked u64 load.
    ///
    /// # Errors
    /// Any MMU permission fault.
    pub fn read_u64(&mut self, cpu: usize, va: VirtAddr) -> Result<u64, Fault> {
        let mut b = [0u8; 8];
        self.read(cpu, va, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Checked u64 store.
    ///
    /// # Errors
    /// Any MMU permission fault.
    pub fn write_u64(&mut self, cpu: usize, va: VirtAddr, v: u64) -> Result<(), Fault> {
        self.write(cpu, va, &v.to_le_bytes())
    }

    /// Permission-probe an access at `va` without transferring data (used
    /// by the platform's demand-paging path to detect faults before
    /// touching memory).
    ///
    /// # Errors
    /// Any MMU permission fault.
    pub fn probe(&mut self, cpu: usize, va: VirtAddr, kind: AccessKind) -> Result<(), Fault> {
        self.translate_cached(cpu, va, kind)?;
        Ok(())
    }

    /// Instruction-fetch permission probe at `va` (NX/SMEP and mapping
    /// checks). Used when control is transferred into a region.
    ///
    /// # Errors
    /// Any MMU permission fault.
    pub fn fetch_check(&mut self, cpu: usize, va: VirtAddr) -> Result<(), Fault> {
        self.translate_cached(cpu, va, AccessKind::Execute)?;
        Ok(())
    }

    // ----- TLB maintenance ----------------------------------------------

    /// Flush every entry of `cpu`'s TLB (the CR3-write side effect; also
    /// exposed for raw-CR3 boot/ablation paths that bypass
    /// [`Machine::write_cr3`]).
    pub fn flush_tlb(&mut self, cpu: usize) {
        // Machine-global effects first (epoch, stats, ledgers, trace) —
        // the core-local mutation itself goes through the core's handle,
        // the same seam parallel execution will take.
        self.bump_mmu_epoch();
        self.stats.tlb_flushes = self.stats.tlb_flushes.saturating_add(1);
        self.pending_shootdowns.retain(|&(c, _)| c != cpu);
        self.pending_asid_shootdowns.retain(|&(c, _)| c != cpu);
        if self.mmu_trace {
            self.trace_event(cpu, TraceEvent::TlbFlush);
        }
        self.core_split(cpu).tlb.flush_all();
    }

    /// `invlpg`-equivalent: drop `cpu`'s cached translation for `va`'s
    /// page. Privileged but not sensitive — like real `invlpg`, any ring-0
    /// code may shoot its own core.
    ///
    /// # Errors
    /// `#GP` from user mode.
    pub fn invalidate_page(&mut self, cpu: usize, va: VirtAddr) -> Result<(), Fault> {
        if self.cpus[cpu].mode != CpuMode::Supervisor {
            return Err(Fault::GeneralProtection("invlpg in user mode"));
        }
        self.bump_mmu_epoch();
        self.cycles.charge(self.costs.invlpg);
        self.core_split(cpu).tlb.invalidate_page(va);
        self.stats.tlb_page_invalidations = self.stats.tlb_page_invalidations.saturating_add(1);
        self.pending_shootdowns.remove(&(cpu, va.0 >> 12));
        if self.mmu_trace {
            self.trace_event(cpu, TraceEvent::TlbInvlpg { page: va.0 >> 12 });
        }
        Ok(())
    }

    /// TLB shootdown for `va`'s page: local `invlpg` on `initiator` plus
    /// an invalidation IPI to every other core, each charged at
    /// `interrupt_delivery` (the IPI round the monitor pays to close the
    /// stale-translation window after a downgrade/unmap). The privilege of
    /// the caller is the initiator's local `invlpg` check.
    ///
    /// # Errors
    /// `#GP` from user mode.
    pub fn tlb_shootdown(&mut self, initiator: usize, va: VirtAddr) -> Result<(), Fault> {
        self.tlb_shootdown_batch(initiator, &[va])
    }

    /// Above this many pages a shootdown full-flushes instead of issuing
    /// per-page `invlpg`s, mirroring Linux's
    /// `tlb_single_page_flush_ceiling` (33 on x86).
    pub const SHOOTDOWN_FULL_FLUSH_CEILING: usize = 32;

    /// Batched TLB shootdown: one invalidation IPI per remote core for the
    /// *whole* set of pages (how `flush_tlb_mm_range` amortizes a large
    /// munmap), rather than an IPI round per page. Past
    /// [`Machine::SHOOTDOWN_FULL_FLUSH_CEILING`] pages, every core
    /// full-flushes instead of walking the list, as real kernels do.
    ///
    /// # Errors
    /// `#GP` from user mode.
    pub fn tlb_shootdown_batch(&mut self, initiator: usize, vas: &[VirtAddr]) -> Result<(), Fault> {
        if self.cpus[initiator].mode != CpuMode::Supervisor {
            return Err(Fault::GeneralProtection("tlb shootdown in user mode"));
        }
        if vas.is_empty() {
            return Ok(());
        }
        self.shootdown_inner(initiator, None, vas)
    }

    /// Address-space-targeted shootdown (`flush_tlb_mm_range` with a real
    /// `mm_cpumask`): IPIs go only to cores whose CR3 currently holds
    /// `root`. Sound because a core that switched away flushed at that CR3
    /// write, so no other core can hold live entries tagged with `root`.
    /// Use only for per-address-space (user) mappings — ranges visible
    /// under every root (the direct map, kernel text) must broadcast via
    /// [`Machine::tlb_shootdown_batch`].
    ///
    /// # Errors
    /// `#GP` from user mode.
    pub fn tlb_shootdown_mm(
        &mut self,
        initiator: usize,
        root: Frame,
        vas: &[VirtAddr],
    ) -> Result<(), Fault> {
        self.shootdown_inner(initiator, Some(root), vas)
    }

    fn shootdown_inner(
        &mut self,
        initiator: usize,
        root: Option<Frame>,
        vas: &[VirtAddr],
    ) -> Result<(), Fault> {
        if self.cpus[initiator].mode != CpuMode::Supervisor {
            return Err(Fault::GeneralProtection("tlb shootdown in user mode"));
        }
        if vas.is_empty() {
            return Ok(());
        }
        // One bump covers every TLB/ledger mutation below: decisions are
        // only consulted between batch ops, never mid-shootdown.
        self.bump_mmu_epoch();
        let full = vas.len() > Self::SHOOTDOWN_FULL_FLUSH_CEILING;
        if self.mmu_trace {
            // Revocation edge for the happens-before race detector: the
            // permission change is published *before* any remote ack, so
            // a later cached use without an intervening invalidation on
            // that core is a stale-permission window.
            for va in vas {
                self.trace_event(
                    initiator,
                    TraceEvent::TlbShootdown {
                        root: root.map_or(0, |r| r.0),
                        page: va.0 >> 12,
                    },
                );
            }
        }
        for cpu in 0..self.cpus.len() {
            if cpu != initiator {
                if root.is_some_and(|r| self.cpus[cpu].cr3 != r) {
                    continue; // not in the mm's cpumask
                }
                // The remote handler's invalidation work is folded into
                // the IPI delivery cost.
                self.cycles.charge(self.costs.interrupt_delivery);
                self.stats.tlb_shootdown_ipis = self.stats.tlb_shootdown_ipis.saturating_add(1);
                self.trace_event(initiator, TraceEvent::IpiSent { to: cpu as u32 });
                let dropped = self
                    .injector
                    .as_ref()
                    .is_some_and(|h| inject::lock(h).drop_shootdown_ipi(initiator, cpu));
                if dropped {
                    // The IPI is lost in flight: the remote core keeps its
                    // stale entries. Record the staleness so invariant
                    // checks can tell a modelled loss from a real bug.
                    self.trace_event(initiator, TraceEvent::IpiDropped { to: cpu as u32 });
                    if full {
                        // A dropped coalesced flush strands the whole
                        // address space: one full-ASID ledger row covers
                        // every page the batch (and anything else under
                        // that root) may have left stale.
                        self.pending_asid_shootdowns
                            .insert((cpu, root.map_or(0, |r| r.0)));
                    } else {
                        for va in vas {
                            self.pending_shootdowns.insert((cpu, va.0 >> 12));
                        }
                    }
                    continue;
                }
                self.trace_event(
                    cpu,
                    TraceEvent::IpiReceived {
                        from: initiator as u32,
                    },
                );
            }
            if full {
                if cpu == initiator {
                    // Charged like a CR3 reload on the initiating core.
                    self.cycles.charge(self.costs.mov_cr);
                }
                self.tlbs[cpu].flush_all();
                self.stats.tlb_flushes = self.stats.tlb_flushes.saturating_add(1);
                self.pending_shootdowns.retain(|&(c, _)| c != cpu);
                self.pending_asid_shootdowns.retain(|&(c, _)| c != cpu);
                if self.mmu_trace {
                    self.trace_event(cpu, TraceEvent::TlbFlush);
                }
            } else {
                for va in vas {
                    if cpu == initiator {
                        self.cycles.charge(self.costs.invlpg);
                        self.stats.tlb_page_invalidations =
                            self.stats.tlb_page_invalidations.saturating_add(1);
                    }
                    self.tlbs[cpu].invalidate_page(*va);
                    self.pending_shootdowns.remove(&(cpu, va.0 >> 12));
                    if self.mmu_trace {
                        self.trace_event(cpu, TraceEvent::TlbInvlpg { page: va.0 >> 12 });
                    }
                }
            }
        }
        if self.injector.is_some() {
            // Spurious IPIs: unrequested remote flushes that a correct
            // system must tolerate (they only drop cached entries).
            for cpu in 0..self.cpus.len() {
                let spurious = self
                    .injector
                    .as_ref()
                    .is_some_and(|h| inject::lock(h).spurious_shootdown(cpu));
                if spurious {
                    self.cycles.charge(self.costs.interrupt_delivery);
                    self.stats.tlb_shootdown_ipis = self.stats.tlb_shootdown_ipis.saturating_add(1);
                    self.trace_event(cpu, TraceEvent::IpiSpurious);
                    self.tlbs[cpu].flush_all();
                    self.stats.tlb_flushes = self.stats.tlb_flushes.saturating_add(1);
                    self.pending_shootdowns.retain(|&(c, _)| c != cpu);
                    self.pending_asid_shootdowns.retain(|&(c, _)| c != cpu);
                    if self.mmu_trace {
                        self.trace_event(cpu, TraceEvent::TlbFlush);
                    }
                }
            }
        }
        Ok(())
    }

    // ----- per-core handles ---------------------------------------------

    /// Split out one core's core-local slots ([`CoreHandle`] fields).
    /// Lives here (not in `core_handle`) because the decision-cache and
    /// interrupt-depth vectors are module-private.
    pub(crate) fn core_split(&mut self, cpu: usize) -> crate::core_handle::CoreHandle<'_> {
        crate::core_handle::CoreHandle {
            index: cpu,
            cpu: &mut self.cpus[cpu],
            tlb: &mut self.tlbs[cpu],
            sstk: &mut self.sstk[cpu],
            decisions: &mut self.decisions[cpu],
            interrupt_depth: &mut self.interrupt_depth[cpu],
        }
    }

    /// Element-wise split of every per-core vector into simultaneous
    /// disjoint handles (see [`Machine::cores`]).
    pub(crate) fn cores_split(&mut self) -> Vec<crate::core_handle::CoreHandle<'_>> {
        let cpus = self.cpus.iter_mut();
        let tlbs = self.tlbs.iter_mut();
        let sstk = self.sstk.iter_mut();
        let decisions = self.decisions.iter_mut();
        let depths = self.interrupt_depth.iter_mut();
        cpus.zip(tlbs)
            .zip(sstk)
            .zip(decisions)
            .zip(depths)
            .enumerate()
            .map(
                |(index, ((((cpu, tlb), sstk), decisions), interrupt_depth))| {
                    crate::core_handle::CoreHandle {
                        index,
                        cpu,
                        tlb,
                        sstk,
                        decisions,
                        interrupt_depth,
                    }
                },
            )
            .collect()
    }

    // ----- privileged register writes (sensitive, Table 2) --------------

    /// Current CR3 of `cpu` (`mov %cr3, %r` — a read, not sensitive).
    /// Unprivileged callers use this instead of reaching into the
    /// register file.
    #[must_use]
    pub fn cr3(&self, cpu: usize) -> Frame {
        self.cpus[cpu].cr3
    }

    /// `mov %r, %cr0`.
    ///
    /// # Errors
    /// `#GP` from user mode; `#UD` from a domain whose image lacks the
    /// instruction.
    pub fn write_cr0(&mut self, cpu: usize, v: u64) -> Result<(), Fault> {
        self.sensitive_guard(cpu)?;
        self.chaos_fault(InjectionPoint::WriteCr { cpu, reg: 0 })?;
        self.cycles.charge(self.costs.mov_cr);
        self.cpus[cpu].cr0 = Cr0(v);
        Ok(())
    }

    /// `mov %r, %cr3` — switches the page-table root.
    ///
    /// # Errors
    /// As [`Machine::write_cr0`].
    pub fn write_cr3(&mut self, cpu: usize, root: Frame) -> Result<(), Fault> {
        self.sensitive_guard(cpu)?;
        self.chaos_fault(InjectionPoint::WriteCr { cpu, reg: 3 })?;
        self.cycles.charge(self.costs.mov_cr);
        self.cpus[cpu].cr3 = root;
        // Architectural side effect: flush the writing core's (non-global;
        // the PTE model has no G bit, so all) entries.
        self.flush_tlb(cpu);
        Ok(())
    }

    /// `mov %r, %cr4`.
    ///
    /// # Errors
    /// As [`Machine::write_cr0`].
    pub fn write_cr4(&mut self, cpu: usize, v: u64) -> Result<(), Fault> {
        self.sensitive_guard(cpu)?;
        self.chaos_fault(InjectionPoint::WriteCr { cpu, reg: 4 })?;
        self.cycles.charge(self.costs.mov_cr);
        self.cpus[cpu].cr4 = Cr4(v);
        Ok(())
    }

    /// `wrmsr`.
    ///
    /// # Errors
    /// As [`Machine::write_cr0`].
    pub fn wrmsr(&mut self, cpu: usize, msr: Msr, v: u64) -> Result<(), Fault> {
        self.sensitive_guard(cpu)?;
        self.chaos_fault(InjectionPoint::Wrmsr { cpu, msr })?;
        self.cycles.charge(self.costs.wrmsr);
        self.cpus[cpu].msrs.insert(msr, v);
        Ok(())
    }

    /// `rdmsr` — privileged but *not* sensitive: any ring-0 code may read.
    ///
    /// # Errors
    /// `#GP` from user mode.
    pub fn rdmsr(&mut self, cpu: usize, msr: Msr) -> Result<u64, Fault> {
        if self.cpus[cpu].mode != CpuMode::Supervisor {
            return Err(Fault::GeneralProtection("rdmsr in user mode"));
        }
        self.cycles.charge(self.costs.rdmsr);
        Ok(self.cpus[cpu].msr(msr))
    }

    /// `stac` — grants the kernel temporary access to user pages. Sensitive
    /// (Table 2): only the monitor's user-copy emulation may raise AC.
    ///
    /// # Errors
    /// As [`Machine::write_cr0`].
    pub fn stac(&mut self, cpu: usize) -> Result<(), Fault> {
        self.sensitive_guard(cpu)?;
        self.cycles.charge(self.costs.stac);
        self.cpus[cpu].ctx.rflags |= Rflags::AC;
        Ok(())
    }

    /// `clac` — *dropping* user access is never harmful, so any supervisor
    /// code may execute it.
    ///
    /// # Errors
    /// `#GP` from user mode.
    pub fn clac(&mut self, cpu: usize) -> Result<(), Fault> {
        if self.cpus[cpu].mode != CpuMode::Supervisor {
            return Err(Fault::GeneralProtection("clac in user mode"));
        }
        self.cycles.charge(self.costs.stac);
        self.cpus[cpu].ctx.rflags &= !Rflags::AC;
        Ok(())
    }

    /// `lidt`.
    ///
    /// # Errors
    /// As [`Machine::write_cr0`].
    pub fn lidt(&mut self, cpu: usize, base: VirtAddr) -> Result<(), Fault> {
        self.sensitive_guard(cpu)?;
        self.cycles.charge(self.costs.lidt);
        self.cpus[cpu].idtr = Some(Idtr { base });
        Ok(())
    }

    /// The ring/domain guard for `tdcall`, exported for the TDX-module
    /// simulator (the instruction itself is implemented in `erebor-tdx`).
    ///
    /// # Errors
    /// As [`Machine::write_cr0`].
    pub fn tdcall_guard(&mut self, cpu: usize) -> Result<(), Fault> {
        self.sensitive_guard(cpu)
    }

    /// `senduipi` — send a user-mode interrupt (§3.2 AV3: a sandbox could
    /// use user interrupts to signal attacker processes without a
    /// privileged exit). Requires a *valid* user-interrupt target table;
    /// the monitor clears `IA32_UINTR_TT.valid` before entering sandboxes
    /// holding client data (§6.2 ④).
    ///
    /// # Errors
    /// `#GP` when the target table is invalid or unconfigured.
    pub fn senduipi(&mut self, cpu: usize) -> Result<(), Fault> {
        self.cycles.charge(self.costs.alu + self.costs.mem_op);
        if self.cpus[cpu].msr(Msr::UintrTt) & 1 == 0 {
            return Err(Fault::GeneralProtection(
                "user-interrupt target table invalid",
            ));
        }
        Ok(())
    }

    // ----- control transfers --------------------------------------------

    /// An indirect `call`/`jmp` to `target`, with the CET IBT check.
    /// On success the core's domain follows the target's code region.
    ///
    /// # Errors
    /// `#CP` if IBT is active and `target` is not an `endbr64` landing pad;
    /// any fetch permission fault (NX, SMEP, unmapped).
    pub fn indirect_branch(&mut self, cpu: usize, target: VirtAddr) -> Result<(), Fault> {
        self.chaos_fault(InjectionPoint::IndirectBranch { cpu })?;
        self.fetch_check(cpu, target)?;
        if self.cpus[cpu].ibt_enabled() {
            self.cycles.charge(self.costs.endbr_check);
            if !self.endbr.is_target(target) {
                return Err(Fault::ControlProtection(CpReason::MissingEndbranch));
            }
        }
        self.cpus[cpu].domain = domain_of(target);
        self.cpus[cpu].ctx.rip = target.0;
        Ok(())
    }

    /// A direct `call`/`jmp` (target encoded in the verified image; no IBT
    /// check applies). Still subject to fetch permissions.
    ///
    /// # Errors
    /// Any fetch permission fault.
    pub fn direct_branch(&mut self, cpu: usize, target: VirtAddr) -> Result<(), Fault> {
        self.chaos_fault(InjectionPoint::DirectBranch { cpu })?;
        self.fetch_check(cpu, target)?;
        self.cycles.charge(self.costs.call_ret);
        self.cpus[cpu].domain = domain_of(target);
        self.cpus[cpu].ctx.rip = target.0;
        Ok(())
    }

    /// `syscall`: ring 3 → ring 0 transfer to `IA32_LSTAR`.
    /// Returns the entry address the kernel (or monitor interposer) runs at.
    ///
    /// # Errors
    /// `#UD` if called from supervisor mode (matches hardware: `syscall`
    /// is a user-mode instruction in this model).
    pub fn syscall(&mut self, cpu: usize) -> Result<VirtAddr, Fault> {
        if self.cpus[cpu].mode != CpuMode::User {
            return Err(Fault::UndefinedInstruction("syscall from supervisor mode"));
        }
        let target = VirtAddr(self.cpus[cpu].msr(Msr::Lstar));
        self.cycles
            .charge(self.costs.syscall_entry + self.costs.swapgs);
        let rip = self.cpus[cpu].ctx.rip;
        self.cpus[cpu].ctx.gpr[1] = rip; // rcx = return address
        self.cpus[cpu].mode = CpuMode::Supervisor;
        self.cpus[cpu].domain = domain_of(target);
        self.cpus[cpu].ctx.rip = target.0;
        Ok(target)
    }

    /// `sysret`: ring 0 → ring 3 return to the address in `rcx`.
    ///
    /// # Errors
    /// `#GP` from user mode.
    pub fn sysret(&mut self, cpu: usize) -> Result<(), Fault> {
        if self.cpus[cpu].mode != CpuMode::Supervisor {
            return Err(Fault::GeneralProtection("sysret in user mode"));
        }
        self.cycles
            .charge(self.costs.sysret_exit + self.costs.swapgs);
        let rcx = self.cpus[cpu].ctx.gpr[1];
        self.cpus[cpu].mode = CpuMode::User;
        self.cpus[cpu].domain = Domain::User;
        self.cpus[cpu].ctx.rip = rcx;
        Ok(())
    }

    /// Hardware interrupt/exception delivery on core `cpu`: reads the
    /// handler from the in-memory IDT (physical access — delivery cannot be
    /// blocked by mappings), saves the interrupted context, and switches to
    /// supervisor mode at the handler. Returns `(handler, saved context)`.
    ///
    /// # Errors
    /// [`Fault::Unrecoverable`] if no IDT is loaded or its page is unmapped
    /// (triple-fault analogue).
    pub fn deliver_interrupt(
        &mut self,
        cpu: usize,
        vec: u8,
    ) -> Result<(VirtAddr, GprContext), Fault> {
        let idtr = self.cpus[cpu]
            .idtr
            .ok_or(Fault::Unrecoverable("no IDT loaded"))?;
        let root = self.cpus[cpu].cr3;
        let handler = crate::idt::read_entry(&mut self.mem, root, idtr, vec)?;
        if handler.0 == 0 {
            return Err(Fault::Unrecoverable("unhandled vector (empty IDT entry)"));
        }
        self.cycles.charge(self.costs.interrupt_delivery);
        let saved = self.cpus[cpu].ctx;
        if self.cpus[cpu].sstk_enabled() {
            // Hardware pushes the interrupted rip onto the supervisor
            // shadow stack (§2.2).
            self.cycles.charge(self.costs.sstk_op);
            self.sstk[cpu].push(VirtAddr(saved.rip));
        }
        self.cpus[cpu].mode = CpuMode::Supervisor;
        self.cpus[cpu].domain = domain_of(handler);
        self.cpus[cpu].ctx.rip = handler.0;
        self.interrupt_depth[cpu] = self.interrupt_depth[cpu].saturating_add(1);
        Ok((handler, saved))
    }

    /// `iret`: restore a saved context (and its privilege mode, derived
    /// from the return address).
    ///
    /// # Errors
    /// `#GP` from user mode.
    pub fn iret(&mut self, cpu: usize, saved: GprContext) -> Result<(), Fault> {
        if self.cpus[cpu].mode != CpuMode::Supervisor {
            return Err(Fault::GeneralProtection("iret in user mode"));
        }
        self.cycles.charge(self.costs.iret);
        let target = VirtAddr(saved.rip);
        if self.cpus[cpu].sstk_enabled() {
            // `iret` verifies the return target against the shadow stack;
            // a mismatch (ROP into the kernel) is #CP.
            self.cycles.charge(self.costs.sstk_op);
            self.sstk[cpu].pop(target)?;
        }
        self.cpus[cpu].ctx = saved;
        self.cpus[cpu].mode = if layout::is_user(target) {
            CpuMode::User
        } else {
            CpuMode::Supervisor
        };
        self.cpus[cpu].domain = domain_of(target);
        self.interrupt_depth[cpu] = self.interrupt_depth[cpu].saturating_sub(1);
        Ok(())
    }
}

/// One element of a straight-line batch program for
/// [`Machine::run_batch`]. Each op has *exactly* the semantics of the
/// corresponding `Machine` method; the batch form only lets the executor
/// skip redundant permission-pipeline work between state changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchOp {
    /// Permission-probe an access ([`Machine::probe`]).
    Probe {
        /// Probed address.
        va: VirtAddr,
        /// Access kind.
        kind: AccessKind,
    },
    /// Checked 8-byte load ([`Machine::read_u64`]); the value is folded
    /// into [`BatchOutcome::digest`].
    ReadU64 {
        /// Load address.
        va: VirtAddr,
    },
    /// Checked 8-byte store ([`Machine::write_u64`]).
    WriteU64 {
        /// Store address.
        va: VirtAddr,
        /// Value to store.
        v: u64,
    },
    /// `wrmsr` ([`Machine::wrmsr`]) — a state change: the fast path
    /// revalidates its context afterwards.
    Wrmsr {
        /// Target MSR.
        msr: Msr,
        /// Value.
        v: u64,
    },
    /// `mov %r, %cr0` ([`Machine::write_cr0`]).
    WriteCr0 {
        /// Value.
        v: u64,
    },
    /// `mov %r, %cr3` ([`Machine::write_cr3`]) — flushes the TLB and
    /// bumps the MMU epoch.
    WriteCr3 {
        /// New page-table root.
        root: Frame,
    },
    /// `mov %r, %cr4` ([`Machine::write_cr4`]).
    WriteCr4 {
        /// Value.
        v: u64,
    },
    /// `invlpg` ([`Machine::invalidate_page`]) — bumps the MMU epoch, so
    /// a batch containing one exercises invalidation-during-batch.
    Invlpg {
        /// Address whose page is invalidated.
        va: VirtAddr,
    },
    /// `stac` ([`Machine::stac`]) — RFLAGS.AC is part of the context key.
    Stac,
    /// `clac` ([`Machine::clac`]).
    Clac,
}

/// Result of [`Machine::run_batch`]: how far the batch got, a fold of
/// every loaded value, and the fault that stopped it (if any). Equal
/// outcomes plus equal machine state is what the differential suite
/// asserts across fastpath-on and fastpath-off runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Ops completed before the first fault (== `ops.len()` if none).
    pub executed: usize,
    /// Rotate-xor fold of every value loaded by a `ReadU64` op.
    pub digest: u64,
    /// The fault that stopped the batch, if any.
    pub fault: Option<Fault>,
}

impl Machine {
    // ----- batched execution fast path ----------------------------------

    /// Execute a straight-line batch of ops on `cpu`, exactly as if each
    /// op had been issued through its ordinary [`Machine`] method in
    /// sequence, stopping at the first fault.
    ///
    /// With the fast path enabled (`fastpath_enabled && tlb_enabled`),
    /// accesses whose allow-verdict is cached in the core's
    /// [`DecisionCache`] are replayed without rebuilding the MMU
    /// environment or re-running the permission pipeline, charging and
    /// counting exactly what the slow TLB-hit path would. Everything else
    /// falls back to the slow path: decision misses (which then refill),
    /// privileged ops (`wrmsr`, CR writes, `invlpg`, `stac`/`clac` — each
    /// forces a context revalidation afterwards, so a mid-batch state
    /// change or injected fault can never leak a stale verdict), and
    /// cross-page `u64` accesses. Machine state, cycle totals, cycle
    /// attribution, `HwStats` and the trace evolve byte-identically
    /// whether the fast path is on or off; only [`Machine::fastpath`]
    /// (deliberately outside every snapshot) differs.
    pub fn run_batch(&mut self, cpu: usize, ops: &[BatchOp]) -> BatchOutcome {
        self.fastpath.batches = self.fastpath.batches.saturating_add(1);
        let mut out = BatchOutcome {
            executed: 0,
            digest: 0,
            fault: None,
        };
        let fast = self.fastpath_enabled && self.tlb_enabled;
        // `validated` == the decision cache is known keyed to the live
        // (ctx, epoch). Accesses never change either, so one validation
        // covers a whole run of accesses; privileged ops clear it.
        let mut validated = false;
        // Deferred side effects of decision hits: with MMU tracing off no
        // hit records a cycle-stamped event, so hit charges and counters
        // accumulate locally and flush before any slow-path op (slow ops
        // can record stamped events) and at batch end. Totals commute, so
        // the final cycles/attribution/stats are byte-identical to the
        // eager slow path. With tracing on, hits replay eagerly so each
        // `TlbHit` carries the exact slow-path stamp.
        let mut pend_hits = 0u64;
        let mut pend_mem = 0u64;
        let mut i = 0usize;
        'batch: while i < ops.len() {
            // Deferred-mode hot loop: with tracing off, a run of cached
            // accesses touches only the decision arrays, DRAM and local
            // accumulators — the context validation, cost constants and
            // field borrows are hoisted out of the per-op path. Every
            // side effect is the same one the generic arm below would
            // produce; the loop exits (without consuming the op) the
            // moment an op needs anything more.
            if fast
                && !self.mmu_trace
                && matches!(
                    ops[i],
                    BatchOp::Probe { .. } | BatchOp::ReadU64 { .. } | BatchOp::WriteU64 { .. }
                )
            {
                if !validated {
                    let live = self.live_ctx(cpu);
                    if !self.decisions[cpu].valid_for(&live, self.mmu_epoch) {
                        self.decisions[cpu].rekey(live, self.mmu_epoch);
                        self.fastpath.rekeys = self.fastpath.rekeys.saturating_add(1);
                    }
                    validated = true;
                }
                let mem_cost = self.costs.mem_op;
                let dc = &self.decisions[cpu];
                let mem = &mut self.mem;
                while i < ops.len() {
                    match ops[i] {
                        BatchOp::Probe { va, kind } => {
                            if dc.lookup(va, kind).is_none() {
                                break;
                            }
                            pend_hits = pend_hits.saturating_add(1);
                        }
                        BatchOp::ReadU64 { va }
                            if va.page_offset() + 8 <= crate::PAGE_SIZE as u64 =>
                        {
                            let Some(d) = dc.lookup(va, AccessKind::Read) else {
                                break;
                            };
                            pend_hits = pend_hits.saturating_add(1);
                            pend_mem = pend_mem.saturating_add(mem_cost);
                            let pa = crate::PhysAddr(d.frame.base().0 + va.page_offset());
                            match mem.read_u64(pa) {
                                Ok(v) => out.digest = out.digest.rotate_left(7) ^ v,
                                Err(_) => {
                                    out.fault = Some(Fault::Unrecoverable("read left DRAM"));
                                    break 'batch;
                                }
                            }
                        }
                        BatchOp::WriteU64 { va, v }
                            if va.page_offset() + 8 <= crate::PAGE_SIZE as u64 =>
                        {
                            let Some(d) = dc.lookup(va, AccessKind::Write) else {
                                break;
                            };
                            pend_hits = pend_hits.saturating_add(1);
                            pend_mem = pend_mem.saturating_add(mem_cost);
                            let pa = crate::PhysAddr(d.frame.base().0 + va.page_offset());
                            if mem.write_u64(pa, v).is_err() {
                                out.fault = Some(Fault::Unrecoverable("write left DRAM"));
                                break 'batch;
                            }
                        }
                        // Cross-page u64 accesses and privileged ops take
                        // the generic path below.
                        _ => break,
                    }
                    out.executed = out.executed.saturating_add(1);
                    i += 1;
                }
                if i >= ops.len() {
                    break 'batch;
                }
            }
            let step: Result<Option<u64>, Fault> = match ops[i] {
                BatchOp::Probe { va, kind } => {
                    if fast
                        && self
                            .fast_hit(cpu, &mut validated, va, kind, &mut pend_hits)
                            .is_some()
                    {
                        Ok(None)
                    } else {
                        self.flush_pending(&mut pend_hits, &mut pend_mem);
                        let r = self.probe(cpu, va, kind);
                        if r.is_ok() {
                            self.refill_decision(cpu, validated, va, kind);
                        }
                        self.fastpath.slow_ops = self.fastpath.slow_ops.saturating_add(1);
                        r.map(|()| None)
                    }
                }
                BatchOp::ReadU64 { va } => {
                    let in_page = va.page_offset() + 8 <= crate::PAGE_SIZE as u64;
                    let hit = if fast && in_page {
                        self.fast_hit(cpu, &mut validated, va, AccessKind::Read, &mut pend_hits)
                    } else {
                        None
                    };
                    if let Some(frame) = hit {
                        let pa = crate::PhysAddr(frame.base().0 + va.page_offset());
                        if self.mmu_trace {
                            self.cycles.charge(self.costs.mem_op);
                        } else {
                            pend_mem = pend_mem.saturating_add(self.costs.mem_op);
                        }
                        self.mem
                            .read_u64(pa)
                            .map(Some)
                            .map_err(|_| Fault::Unrecoverable("read left DRAM"))
                    } else {
                        self.flush_pending(&mut pend_hits, &mut pend_mem);
                        let r = self.read_u64(cpu, va);
                        if r.is_ok() && in_page {
                            self.refill_decision(cpu, validated, va, AccessKind::Read);
                        }
                        self.fastpath.slow_ops = self.fastpath.slow_ops.saturating_add(1);
                        r.map(Some)
                    }
                }
                BatchOp::WriteU64 { va, v } => {
                    let in_page = va.page_offset() + 8 <= crate::PAGE_SIZE as u64;
                    let hit = if fast && in_page {
                        self.fast_hit(cpu, &mut validated, va, AccessKind::Write, &mut pend_hits)
                    } else {
                        None
                    };
                    if let Some(frame) = hit {
                        let pa = crate::PhysAddr(frame.base().0 + va.page_offset());
                        if self.mmu_trace {
                            self.cycles.charge(self.costs.mem_op);
                        } else {
                            pend_mem = pend_mem.saturating_add(self.costs.mem_op);
                        }
                        self.mem
                            .write_u64(pa, v)
                            .map(|()| None)
                            .map_err(|_| Fault::Unrecoverable("write left DRAM"))
                    } else {
                        self.flush_pending(&mut pend_hits, &mut pend_mem);
                        let r = self.write_u64(cpu, va, v);
                        if r.is_ok() && in_page {
                            self.refill_decision(cpu, validated, va, AccessKind::Write);
                        }
                        self.fastpath.slow_ops = self.fastpath.slow_ops.saturating_add(1);
                        r.map(|()| None)
                    }
                }
                BatchOp::Wrmsr { msr, v } => {
                    self.slow_privileged(&mut validated, &mut pend_hits, &mut pend_mem);
                    self.wrmsr(cpu, msr, v).map(|()| None)
                }
                BatchOp::WriteCr0 { v } => {
                    self.slow_privileged(&mut validated, &mut pend_hits, &mut pend_mem);
                    self.write_cr0(cpu, v).map(|()| None)
                }
                BatchOp::WriteCr3 { root } => {
                    self.slow_privileged(&mut validated, &mut pend_hits, &mut pend_mem);
                    self.write_cr3(cpu, root).map(|()| None)
                }
                BatchOp::WriteCr4 { v } => {
                    self.slow_privileged(&mut validated, &mut pend_hits, &mut pend_mem);
                    self.write_cr4(cpu, v).map(|()| None)
                }
                BatchOp::Invlpg { va } => {
                    self.slow_privileged(&mut validated, &mut pend_hits, &mut pend_mem);
                    self.invalidate_page(cpu, va).map(|()| None)
                }
                BatchOp::Stac => {
                    self.slow_privileged(&mut validated, &mut pend_hits, &mut pend_mem);
                    self.stac(cpu).map(|()| None)
                }
                BatchOp::Clac => {
                    self.slow_privileged(&mut validated, &mut pend_hits, &mut pend_mem);
                    self.clac(cpu).map(|()| None)
                }
            };
            match step {
                Ok(loaded) => {
                    if let Some(v) = loaded {
                        out.digest = out.digest.rotate_left(7) ^ v;
                    }
                    out.executed = out.executed.saturating_add(1);
                    i += 1;
                }
                Err(f) => {
                    out.fault = Some(f);
                    break 'batch;
                }
            }
        }
        self.flush_pending(&mut pend_hits, &mut pend_mem);
        out
    }

    /// Try to serve an access from the core's decision cache, replaying
    /// (or deferring, see [`Machine::run_batch`]) the slow TLB-hit path's
    /// exact side effects. `None` means "take the slow path" — the cache
    /// is (re)keyed as a side effect, so the slow path's refill lands in a
    /// live cache.
    fn fast_hit(
        &mut self,
        cpu: usize,
        validated: &mut bool,
        va: VirtAddr,
        kind: AccessKind,
        pend_hits: &mut u64,
    ) -> Option<Frame> {
        if !*validated {
            let live = self.live_ctx(cpu);
            if !self.decisions[cpu].valid_for(&live, self.mmu_epoch) {
                self.decisions[cpu].rekey(live, self.mmu_epoch);
                self.fastpath.rekeys = self.fastpath.rekeys.saturating_add(1);
            }
            *validated = true;
        }
        let d = self.decisions[cpu].lookup(va, kind)?;
        if self.mmu_trace {
            self.stats.tlb_hits = self.stats.tlb_hits.saturating_add(1);
            self.fastpath.decision_hits = self.fastpath.decision_hits.saturating_add(1);
            self.cycles.charge_to(Bucket::PageWalk, self.costs.tlb_hit);
            let root = self.cpus[cpu].cr3.0;
            self.trace_event(
                cpu,
                TraceEvent::TlbHit {
                    root,
                    page: va.0 >> 12,
                },
            );
        } else {
            *pend_hits = pend_hits.saturating_add(1);
        }
        Some(d.frame)
    }

    /// Flush side effects deferred by decision hits (see
    /// [`Machine::run_batch`]): counters and cycle charges accumulate
    /// while no stamped event can observe them, and land here before any
    /// slow-path op runs.
    fn flush_pending(&mut self, pend_hits: &mut u64, pend_mem: &mut u64) {
        if *pend_hits > 0 {
            self.stats.tlb_hits = self.stats.tlb_hits.saturating_add(*pend_hits);
            self.fastpath.decision_hits = self.fastpath.decision_hits.saturating_add(*pend_hits);
            self.cycles
                .charge_to(Bucket::PageWalk, pend_hits.saturating_mul(self.costs.tlb_hit));
            *pend_hits = 0;
        }
        if *pend_mem > 0 {
            self.cycles.charge(*pend_mem);
            *pend_mem = 0;
        }
    }

    /// Bookkeeping shared by every privileged batch op: flush deferred hit
    /// effects (the op may record a stamped event) and drop the context
    /// validation (the op may change registers or the MMU epoch — this is
    /// the slow-path fallback on any state change or injected fault).
    fn slow_privileged(&mut self, validated: &mut bool, pend_hits: &mut u64, pend_mem: &mut u64) {
        self.flush_pending(pend_hits, pend_mem);
        *validated = false;
        self.fastpath.slow_ops = self.fastpath.slow_ops.saturating_add(1);
    }

    /// After a successful slow-path access inside a batch, copy the
    /// verdict into the decision cache — but only when the cache is known
    /// keyed to the live context (`validated`), so a verdict computed
    /// under one register state can never be served under another. Write
    /// decisions additionally require the backing TLB entry to be dirty,
    /// because a write hit on a clean entry must re-walk for dirty
    /// promotion.
    fn refill_decision(&mut self, cpu: usize, validated: bool, va: VirtAddr, kind: AccessKind) {
        if !validated {
            return;
        }
        let root = self.cpus[cpu].cr3;
        if let Some(e) = self.tlbs[cpu].lookup(root, va, kind) {
            if kind != AccessKind::Write || e.dirty {
                self.decisions[cpu].fill(va, kind, e.frame);
            }
        }
    }
}

/// Crate-internal constructor for the migration importer: `Cpu` keeps
/// its MSR map private, so rebuilding one lives here.
#[allow(clippy::too_many_arguments)]
pub(crate) fn cpu_from_parts(
    id: usize,
    mode: CpuMode,
    domain: Domain,
    ctx: GprContext,
    cr0: Cr0,
    cr3: Frame,
    cr4: Cr4,
    idtr: Option<Idtr>,
    msrs: BTreeMap<Msr, u64>,
) -> Cpu {
    Cpu {
        id,
        mode,
        domain,
        ctx,
        cr0,
        cr3,
        cr4,
        idtr,
        msrs,
    }
}

/// Crate-internal setter for the migration importer: installs the
/// private `Machine` fields in one shot (the importer builds the public
/// fields directly and hands the rest here).
pub(crate) fn machine_set_private(
    m: &mut Machine,
    sensitive_domains: BTreeSet<Domain>,
    pending_shootdowns: BTreeSet<(usize, u64)>,
    pending_asid_shootdowns: BTreeSet<(usize, u64)>,
    interrupt_depth: Vec<u32>,
    decisions: Vec<DecisionCache>,
    mmu_epoch: u64,
) {
    m.sensitive_domains = sensitive_domains;
    m.injector = None;
    m.pending_shootdowns = pending_shootdowns;
    m.pending_asid_shootdowns = pending_asid_shootdowns;
    m.interrupt_depth = interrupt_depth;
    m.decisions = decisions;
    m.mmu_epoch = mmu_epoch;
}

/// Test hook: plant staleness-ledger rows the way a chaos-dropped IPI
/// would, so quiesce-drain behaviour is testable without an injector.
#[cfg(test)]
pub(crate) fn machine_seed_ledgers_for_test(
    m: &mut Machine,
    pages: BTreeSet<(usize, u64)>,
    asids: BTreeSet<(usize, u64)>,
) {
    m.pending_shootdowns = pages;
    m.pending_asid_shootdowns = asids;
}

impl core::fmt::Debug for Machine {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Machine")
            .field("cores", &self.cpus.len())
            .field("cycles", &self.cycles.total())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paging::{map_raw, Pte, PteFlags};

    fn machine() -> Machine {
        let mut m = Machine::new(2, 64 * 1024 * 1024);
        let root = m.mem.alloc_frame().unwrap();
        for c in &mut m.cpus {
            c.cr3 = root;
            c.cr0 = Cr0(Cr0::WP | Cr0::PG);
            c.cr4 = Cr4(Cr4::SMEP | Cr4::SMAP | Cr4::PKS);
            c.domain = Domain::Kernel;
        }
        m
    }

    fn map(m: &mut Machine, va: u64, flags: PteFlags) -> Frame {
        let f = m.mem.alloc_frame().unwrap();
        let root = m.cpus[0].cr3;
        map_raw(
            &mut m.mem,
            root,
            VirtAddr(va),
            Pte::encode(f, flags),
            crate::paging::intermediate_for(flags),
        )
        .unwrap();
        f
    }

    #[test]
    fn checked_rw_roundtrip_charges_cycles() {
        let mut m = machine();
        map(&mut m, 0xffff_8000_0000_0000u64, PteFlags::kernel_rw(0));
        let before = m.cycles.total();
        m.write(0, VirtAddr(0xffff_8000_0000_0100), b"hello")
            .unwrap();
        let mut b = [0u8; 5];
        m.read(0, VirtAddr(0xffff_8000_0000_0100), &mut b).unwrap();
        assert_eq!(&b, b"hello");
        assert!(m.cycles.total() > before);
    }

    #[test]
    fn cross_page_write_checks_both_pages() {
        let mut m = machine();
        map(&mut m, 0xffff_8000_0000_0000u64, PteFlags::kernel_rw(0));
        // Second page intentionally unmapped.
        let err = m
            .write(0, VirtAddr(0xffff_8000_0000_0ffc), &[0u8; 16])
            .unwrap_err();
        assert!(err.is_pf(crate::fault::PfReason::NotPresent));
    }

    #[test]
    fn sensitive_ops_denied_in_user_mode_with_gp() {
        let mut m = machine();
        m.allow_sensitive(Domain::Kernel);
        m.cpus[0].mode = CpuMode::User;
        assert!(matches!(
            m.wrmsr(0, Msr::Lstar, 1),
            Err(Fault::GeneralProtection(_))
        ));
        assert!(matches!(
            m.write_cr3(0, Frame(0)),
            Err(Fault::GeneralProtection(_))
        ));
        assert!(matches!(m.stac(0), Err(Fault::GeneralProtection(_))));
        assert!(matches!(
            m.tdcall_guard(0),
            Err(Fault::GeneralProtection(_))
        ));
    }

    #[test]
    fn sensitive_ops_denied_in_unverified_domain_with_ud() {
        let mut m = machine(); // kernel domain, not registered as sensitive
        assert!(matches!(
            m.wrmsr(0, Msr::Pkrs, 0),
            Err(Fault::UndefinedInstruction(_))
        ));
        assert!(matches!(
            m.lidt(0, VirtAddr(0x1000)),
            Err(Fault::UndefinedInstruction(_))
        ));
        // rdmsr and clac remain available to the deprivileged kernel.
        assert!(m.rdmsr(0, Msr::Pkrs).is_ok());
        assert!(m.clac(0).is_ok());
    }

    #[test]
    fn sensitive_ops_allowed_in_registered_domain() {
        let mut m = machine();
        m.allow_sensitive(Domain::Monitor);
        m.cpus[0].domain = Domain::Monitor;
        m.wrmsr(0, Msr::Pkrs, 0b1100).unwrap();
        assert_eq!(m.cpus[0].msr(Msr::Pkrs), 0b1100);
        m.stac(0).unwrap();
        assert!(m.cpus[0].rflags().ac());
        m.clac(0).unwrap();
        assert!(!m.cpus[0].rflags().ac());
    }

    #[test]
    fn pkrs_is_per_core() {
        let mut m = machine();
        m.allow_sensitive(Domain::Monitor);
        m.cpus[0].domain = Domain::Monitor;
        m.wrmsr(0, Msr::Pkrs, 0b11).unwrap();
        assert_eq!(m.cpus[0].msr(Msr::Pkrs), 0b11);
        assert_eq!(m.cpus[1].msr(Msr::Pkrs), 0, "core 1 unaffected");
    }

    #[test]
    fn syscall_transfers_to_lstar() {
        let mut m = machine();
        m.allow_sensitive(Domain::Monitor);
        m.cpus[0].domain = Domain::Monitor;
        m.wrmsr(0, Msr::Lstar, layout::MONITOR_BASE.0).unwrap();
        m.cpus[0].mode = CpuMode::User;
        m.cpus[0].domain = Domain::User;
        m.cpus[0].ctx.rip = 0x40_1000;
        let entry = m.syscall(0).unwrap();
        assert_eq!(entry, layout::MONITOR_BASE);
        assert_eq!(m.cpus[0].mode, CpuMode::Supervisor);
        assert_eq!(m.cpus[0].domain, Domain::Monitor);
        assert_eq!(m.cpus[0].ctx.gpr[1], 0x40_1000, "rcx holds return rip");
        m.sysret(0).unwrap();
        assert_eq!(m.cpus[0].mode, CpuMode::User);
        assert_eq!(m.cpus[0].ctx.rip, 0x40_1000);
    }

    #[test]
    fn interrupt_delivery_reads_idt_and_saves_context() {
        let mut m = machine();
        m.allow_sensitive(Domain::Monitor);
        m.cpus[0].domain = Domain::Monitor;
        let base = 0xffff_8000_0010_0000u64;
        map(&mut m, base, PteFlags::kernel_ro(0));
        m.lidt(0, VirtAddr(base)).unwrap();
        let root = m.cpus[0].cr3;
        crate::idt::write_entry_raw(
            &mut m.mem,
            root,
            Idtr {
                base: VirtAddr(base),
            },
            crate::idt::vector::TIMER,
            VirtAddr(0xffff_8000_0000_7000),
        )
        .unwrap();
        m.cpus[0].ctx.gpr[0] = 0x4141;
        m.cpus[0].ctx.rip = 0x40_2000;
        let (handler, saved) = m.deliver_interrupt(0, crate::idt::vector::TIMER).unwrap();
        assert_eq!(handler, VirtAddr(0xffff_8000_0000_7000));
        assert_eq!(saved.gpr[0], 0x4141);
        assert_eq!(m.cpus[0].domain, Domain::Kernel);
        m.iret(0, saved).unwrap();
        assert_eq!(m.cpus[0].ctx.rip, 0x40_2000);
        assert_eq!(m.cpus[0].mode, CpuMode::User, "returned to a user rip");
    }

    #[test]
    fn ibt_blocks_non_endbr_targets() {
        let mut m = machine();
        m.allow_sensitive(Domain::Monitor);
        m.cpus[0].domain = Domain::Monitor;
        m.write_cr4(0, Cr4::SMEP | Cr4::SMAP | Cr4::PKS | Cr4::CET)
            .unwrap();
        m.wrmsr(0, Msr::SCet, s_cet::ENDBR_EN).unwrap();
        map(&mut m, layout::MONITOR_BASE.0, PteFlags::kernel_rx(0));
        let pad = VirtAddr(layout::MONITOR_BASE.0 + 0x10);
        m.endbr.add(pad);
        m.indirect_branch(0, pad).unwrap();
        let err = m.indirect_branch(0, pad.add(4)).unwrap_err();
        assert_eq!(err, Fault::ControlProtection(CpReason::MissingEndbranch));
    }

    #[test]
    fn indirect_branch_respects_nx_and_smep() {
        let mut m = machine();
        map(&mut m, 0xffff_8000_0000_0000u64, PteFlags::kernel_rw(0)); // NX data
        let err = m
            .indirect_branch(0, VirtAddr(0xffff_8000_0000_0000))
            .unwrap_err();
        assert!(err.is_pf(crate::fault::PfReason::NoExecute));
        map(&mut m, 0x40_0000, PteFlags::user_rx());
        let err = m.indirect_branch(0, VirtAddr(0x40_0000)).unwrap_err();
        assert!(err.is_pf(crate::fault::PfReason::Smep));
    }

    #[test]
    fn domain_of_layout() {
        assert_eq!(domain_of(layout::MONITOR_BASE), Domain::Monitor);
        assert_eq!(domain_of(layout::KERNEL_BASE), Domain::Kernel);
        assert_eq!(domain_of(VirtAddr(0x40_0000)), Domain::User);
    }

    // ----- TLB ----------------------------------------------------------

    #[test]
    fn tlb_hit_charges_one_cycle_not_a_walk() {
        let mut m = machine();
        map(&mut m, 0xffff_8000_0000_0000u64, PteFlags::kernel_rw(0));
        let va = VirtAddr(0xffff_8000_0000_0000);
        // Warm with a write so the dirty bit is set and later writes hit.
        m.probe(0, va, AccessKind::Write).unwrap();
        assert_eq!(m.stats.tlb_misses, 1);
        let before = m.cycles.total();
        m.probe(0, va, AccessKind::Read).unwrap();
        m.probe(0, va, AccessKind::Write).unwrap();
        assert_eq!(m.cycles.total() - before, 2 * m.costs.tlb_hit);
        assert_eq!(m.stats.tlb_hits, 2);
    }

    #[test]
    fn tlb_miss_charges_real_levels_walked() {
        let mut m = machine();
        map(&mut m, 0xffff_8000_0000_0000u64, PteFlags::kernel_rw(0));
        let before = m.cycles.total();
        m.probe(0, VirtAddr(0xffff_8000_0000_0000), AccessKind::Read)
            .unwrap();
        assert_eq!(m.cycles.total() - before, 4 * m.costs.walk_level);
    }

    #[test]
    fn cr3_write_flushes_only_the_writing_core() {
        let mut m = machine();
        m.allow_sensitive(Domain::Kernel);
        map(&mut m, 0xffff_8000_0000_0000u64, PteFlags::kernel_rw(0));
        let va = VirtAddr(0xffff_8000_0000_0000);
        m.probe(0, va, AccessKind::Read).unwrap();
        m.probe(1, va, AccessKind::Read).unwrap();
        let root = m.cpus[0].cr3;
        m.write_cr3(0, root).unwrap();
        assert_eq!(m.tlbs[0].occupancy(), 0, "writer flushed");
        assert_eq!(m.tlbs[1].occupancy(), 1, "other core keeps its entry");
        assert_eq!(m.stats.tlb_flushes, 1);
    }

    #[test]
    fn invlpg_drops_one_page_and_is_privileged() {
        let mut m = machine();
        map(&mut m, 0xffff_8000_0000_0000u64, PteFlags::kernel_rw(0));
        map(&mut m, 0xffff_8000_0000_1000u64, PteFlags::kernel_rw(0));
        let a = VirtAddr(0xffff_8000_0000_0000);
        let b = VirtAddr(0xffff_8000_0000_1000);
        m.probe(0, a, AccessKind::Read).unwrap();
        m.probe(0, b, AccessKind::Read).unwrap();
        m.invalidate_page(0, a).unwrap();
        assert_eq!(m.tlbs[0].occupancy(), 1, "only a's entry dropped");
        assert!(m.tlbs[0].lookup(m.cpus[0].cr3, b, AccessKind::Read).is_some());
        m.cpus[0].mode = CpuMode::User;
        assert!(matches!(
            m.invalidate_page(0, b),
            Err(Fault::GeneralProtection(_))
        ));
    }

    #[test]
    fn shootdown_invalidates_all_cores_and_charges_ipis() {
        let mut m = machine();
        map(&mut m, 0xffff_8000_0000_0000u64, PteFlags::kernel_rw(0));
        let va = VirtAddr(0xffff_8000_0000_0000);
        m.probe(0, va, AccessKind::Read).unwrap();
        m.probe(1, va, AccessKind::Read).unwrap();
        let before = m.cycles.total();
        m.tlb_shootdown(0, va).unwrap();
        assert_eq!(m.tlbs[0].occupancy(), 0);
        assert_eq!(m.tlbs[1].occupancy(), 0);
        assert_eq!(m.stats.tlb_shootdown_ipis, 1, "one remote core");
        assert_eq!(
            m.cycles.total() - before,
            m.costs.invlpg + m.costs.interrupt_delivery
        );
    }

    #[test]
    fn mm_targeted_shootdown_skips_cores_on_other_roots() {
        let mut m = machine();
        m.allow_sensitive(Domain::Kernel);
        map(&mut m, 0xffff_8000_0000_0000u64, PteFlags::kernel_rw(0));
        let va = VirtAddr(0xffff_8000_0000_0000);
        let root = m.cpus[0].cr3;
        m.probe(0, va, AccessKind::Read).unwrap();
        // Core 1 runs a different address space; any entries it once held
        // under `root` died at its CR3 switch, so no IPI is owed.
        let other = m.mem.alloc_frame().unwrap();
        m.write_cr3(1, other).unwrap();
        let before = m.cycles.total();
        m.tlb_shootdown_mm(0, root, &[va]).unwrap();
        assert_eq!(m.stats.tlb_shootdown_ipis, 0, "no core in the cpumask");
        assert_eq!(m.cycles.total() - before, m.costs.invlpg);
        assert!(m.tlbs[0].lookup(root, va, AccessKind::Read).is_none());
        // Pull core 1 back onto `root`: now it is in the cpumask.
        m.write_cr3(1, root).unwrap();
        m.probe(1, va, AccessKind::Read).unwrap();
        m.tlb_shootdown_mm(0, root, &[va]).unwrap();
        assert_eq!(m.stats.tlb_shootdown_ipis, 1);
        assert!(m.tlbs[1].lookup(root, va, AccessKind::Read).is_none());
    }

    #[test]
    fn pkrs_write_does_not_flush_but_is_enforced_on_hits() {
        let mut m = machine();
        m.allow_sensitive(Domain::Monitor);
        m.cpus[0].domain = Domain::Monitor;
        m.wrmsr(0, Msr::Pkrs, PkrsPerms::GRANT_ALL.0).unwrap();
        map(&mut m, 0xffff_8000_0000_0000u64, PteFlags::kernel_rw(5));
        let va = VirtAddr(0xffff_8000_0000_0000);
        m.probe(0, va, AccessKind::Read).unwrap();
        m.probe(0, va, AccessKind::Read).unwrap();
        assert_eq!(m.stats.tlb_hits, 1);
        // Revoke key 5. The entry must survive (no flush) yet the next
        // access must fault — the check re-runs against live PKRS.
        m.wrmsr(0, Msr::Pkrs, PkrsPerms::GRANT_ALL.with_access_disabled(5).0)
            .unwrap();
        assert_eq!(m.tlbs[0].occupancy(), 1, "PKRS write must not flush");
        let err = m.probe(0, va, AccessKind::Read).unwrap_err();
        assert!(err.is_pf(crate::fault::PfReason::PksAccessDisabled));
        // And granting it back works instantly, still without a walk.
        m.wrmsr(0, Msr::Pkrs, PkrsPerms::GRANT_ALL.0).unwrap();
        let misses = m.stats.tlb_misses;
        m.probe(0, va, AccessKind::Read).unwrap();
        assert_eq!(m.stats.tlb_misses, misses, "served from the TLB");
    }

    #[test]
    fn same_va_under_different_cr3_is_isolated() {
        let mut m = machine();
        map(&mut m, 0xffff_8000_0000_0000u64, PteFlags::kernel_rw(0));
        let va = VirtAddr(0xffff_8000_0000_0000);
        m.probe(0, va, AccessKind::Read).unwrap();
        // Same VA on core 1 under a different root: the cached entry is
        // keyed by root, so this must walk (and fault: nothing mapped).
        let other_root = m.mem.alloc_frame().unwrap();
        m.cpus[1].cr3 = other_root;
        let err = m.probe(1, va, AccessKind::Read).unwrap_err();
        assert!(err.is_pf(crate::fault::PfReason::NotPresent));
    }

    #[test]
    fn dirty_bit_lands_in_pte_on_cached_read_then_write() {
        let mut m = machine();
        map(&mut m, 0xffff_8000_0000_0000u64, PteFlags::kernel_rw(0));
        let va = VirtAddr(0xffff_8000_0000_0000);
        let root = m.cpus[0].cr3;
        m.probe(0, va, AccessKind::Read).unwrap();
        m.probe(0, va, AccessKind::Read).unwrap();
        assert_eq!(m.stats.tlb_hits, 1);
        let leaf = crate::paging::lookup_raw(&m.mem, root, va).unwrap().unwrap();
        assert!(!leaf.dirty(), "reads never set D");
        // The write hits a clean entry: it must re-walk (a miss) so the
        // dirty bit is set in the in-memory PTE, then later writes hit.
        m.probe(0, va, AccessKind::Write).unwrap();
        assert_eq!(m.stats.tlb_misses, 2, "dirty promotion re-walks");
        let leaf = crate::paging::lookup_raw(&m.mem, root, va).unwrap().unwrap();
        assert!(leaf.dirty(), "dirty bit landed in the PTE");
        let hits = m.stats.tlb_hits;
        m.probe(0, va, AccessKind::Write).unwrap();
        assert_eq!(m.stats.tlb_hits, hits + 1);
    }

    #[test]
    fn tlb_disabled_always_walks() {
        let mut m = machine();
        m.tlb_enabled = false;
        map(&mut m, 0xffff_8000_0000_0000u64, PteFlags::kernel_rw(0));
        let va = VirtAddr(0xffff_8000_0000_0000);
        m.probe(0, va, AccessKind::Read).unwrap();
        m.probe(0, va, AccessKind::Read).unwrap();
        assert_eq!(m.stats.tlb_hits, 0);
        assert_eq!(m.stats.tlb_misses, 0, "off means uncounted too");
        assert_eq!(m.tlbs[0].occupancy(), 0);
    }

    // ----- batched fast path --------------------------------------------

    fn batch_machine() -> Machine {
        let mut m = machine();
        m.allow_sensitive(Domain::Kernel);
        map(&mut m, 0xffff_8000_0000_0000u64, PteFlags::kernel_rw(0));
        map(&mut m, 0xffff_8000_0000_1000u64, PteFlags::kernel_rw(0));
        map(&mut m, 0xffff_8000_0000_2000u64, PteFlags::kernel_ro(0));
        m
    }

    #[test]
    fn run_batch_on_and_off_evolve_identically() {
        let a = VirtAddr(0xffff_8000_0000_0000);
        let b = VirtAddr(0xffff_8000_0000_1008);
        let ro = VirtAddr(0xffff_8000_0000_2000);
        let ops = vec![
            BatchOp::WriteU64 { va: a, v: 0x1111 },
            BatchOp::ReadU64 { va: a },
            BatchOp::ReadU64 { va: a },
            BatchOp::WriteU64 { va: b, v: 0x2222 },
            BatchOp::ReadU64 { va: b },
            BatchOp::Probe {
                va: ro,
                kind: AccessKind::Read,
            },
            BatchOp::Invlpg { va: a },
            BatchOp::ReadU64 { va: a },
            BatchOp::ReadU64 { va: a },
            BatchOp::WriteU64 { va: ro, v: 1 }, // faults: RO page, WP set
            BatchOp::ReadU64 { va: b },         // never reached
        ];
        let mut fast = batch_machine();
        let mut slow = batch_machine();
        slow.fastpath_enabled = false;
        let of = fast.run_batch(0, &ops);
        let os = slow.run_batch(0, &ops);
        assert_eq!(of, os);
        assert_eq!(of.executed, 9);
        assert!(matches!(of.fault, Some(Fault::PageFault { .. })));
        assert_eq!(fast.cycles.total(), slow.cycles.total());
        assert_eq!(fast.stats, slow.stats);
        assert_eq!(fast.tlbs[0].occupancy(), slow.tlbs[0].occupancy());
        assert!(fast.fastpath.decision_hits > 0, "fast path actually used");
        assert_eq!(slow.fastpath.decision_hits, 0);
    }

    #[test]
    fn decision_cache_replays_hits_and_register_writes_revalidate() {
        let mut m = batch_machine();
        let va = VirtAddr(0xffff_8000_0000_0000);
        let warm = [
            BatchOp::WriteU64 { va, v: 7 },
            BatchOp::ReadU64 { va },
            BatchOp::ReadU64 { va },
        ];
        let o = m.run_batch(0, &warm);
        assert_eq!(o.fault, None);
        assert_eq!(m.fastpath.decision_hits, 1, "third op hit the cache");
        assert!(m.decision_cache(0).occupancy() >= 2);
        // A wrmsr mid-batch is a state change: the context must be
        // revalidated, and the PKS downgrade must be enforced.
        m.cpus[0].domain = Domain::Monitor;
        m.allow_sensitive(Domain::Monitor);
        let key0_denied = PkrsPerms::GRANT_ALL.with_access_disabled(0).0;
        let ops = [
            BatchOp::ReadU64 { va },
            BatchOp::Wrmsr {
                msr: Msr::Pkrs,
                v: key0_denied,
            },
            BatchOp::ReadU64 { va },
        ];
        let o = m.run_batch(0, &ops);
        assert_eq!(o.executed, 2);
        assert!(
            o.fault.as_ref().is_some_and(|f| f.is_pf(crate::fault::PfReason::PksAccessDisabled)),
            "cached decision must not survive the PKRS downgrade: {o:?}"
        );
    }

    #[test]
    fn epoch_rollover_still_invalidates() {
        let mut m = batch_machine();
        let va = VirtAddr(0xffff_8000_0000_0000);
        m.force_mmu_epoch(u64::MAX);
        let warm = [BatchOp::ReadU64 { va }, BatchOp::ReadU64 { va }];
        m.run_batch(0, &warm);
        assert_eq!(m.decision_cache(0).epoch(), u64::MAX);
        // The bump wraps to 0; a cache keyed at u64::MAX must be dead.
        m.flush_tlb(0);
        assert_eq!(m.mmu_epoch(), 0);
        let misses = m.stats.tlb_misses;
        m.run_batch(0, &[BatchOp::ReadU64 { va }]);
        assert_eq!(m.stats.tlb_misses, misses + 1, "re-walked, no stale hit");
        assert_eq!(m.decision_cache(0).epoch(), 0, "rekeyed to the new epoch");
    }

    #[test]
    fn shootdown_between_batches_kills_decisions() {
        let mut m = batch_machine();
        let va = VirtAddr(0xffff_8000_0000_0000);
        m.run_batch(0, &[BatchOp::ReadU64 { va }, BatchOp::ReadU64 { va }]);
        assert!(m.decision_cache(0).occupancy() > 0);
        let epoch = m.mmu_epoch();
        m.tlb_shootdown(0, va).unwrap();
        assert_ne!(m.mmu_epoch(), epoch, "shootdown bumps the epoch");
        let misses = m.stats.tlb_misses;
        m.run_batch(0, &[BatchOp::ReadU64 { va }]);
        assert_eq!(m.stats.tlb_misses, misses + 1, "decision did not survive");
    }

    #[test]
    fn stale_read_through_until_invalidation() {
        // The hazard the monitor's shootdown obligation closes: a PTE
        // store in DRAM is invisible to a cached translation until an
        // explicit invalidation.
        let mut m = machine();
        map(&mut m, 0xffff_8000_0000_0000u64, PteFlags::kernel_rw(0));
        let va = VirtAddr(0xffff_8000_0000_0000);
        let root = m.cpus[0].cr3;
        m.probe(0, va, AccessKind::Read).unwrap();
        let slot = crate::paging::leaf_slot(&m.mem, root, va).unwrap().unwrap();
        m.mem.write_u64(slot, 0).unwrap(); // raw unmap, no invalidation
        assert!(m.probe(0, va, AccessKind::Read).is_ok(), "stale hit");
        m.invalidate_page(0, va).unwrap();
        let err = m.probe(0, va, AccessKind::Read).unwrap_err();
        assert!(err.is_pf(crate::fault::PfReason::NotPresent));
    }
}
