//! Per-core software TLB.
//!
//! Caches successful translations as `(root, page) → (frame, effective
//! permissions, pkey, A/D state)`, split into an instruction class
//! (`AccessKind::Execute`) and a data class (`Read`/`Write`), mirroring
//! the split iTLB/dTLB of the paper's Emerald Rapids machine. Entries are
//! direct-mapped on the low page-number bits — deterministic replacement,
//! so same-seed runs stay byte-identical.
//!
//! What is *not* cached is as important as what is: permission-register
//! state (`IA32_PKRS`, `CR4`, `CR0.WP`) is re-evaluated on every hit
//! against the cached effective permission bits and protection key, so
//! writing those registers never requires a flush — exactly the property
//! Erebor's EMC gate depends on (the PKRS write on entry/exit must not
//! cost a TLB refill). Conversely a PTE store in DRAM is *invisible* to
//! cached entries until software invalidates: CR3 writes flush the
//! writing core, `invlpg` drops one page, and cross-core staleness is
//! only closed by an explicit shootdown — the monitor's obligation that
//! [`crate::cpu::Machine::tlb_shootdown`] models.

use crate::fault::AccessKind;
use crate::mmu::{EffPerms, Translation};
use crate::phys::Frame;
use crate::VirtAddr;

/// Entries per class (instruction / data), direct-mapped.
pub const TLB_ENTRIES: usize = 64;

/// One cached translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// Page-table root (CR3) the walk ran under.
    pub root: Frame,
    /// Virtual page number (`va >> 12`).
    pub page: u64,
    /// Resolved physical frame.
    pub frame: Frame,
    /// Effective permissions accumulated over the walk, plus the leaf's
    /// protection key — everything the permission pipeline needs to
    /// re-check an access without touching the in-memory tables.
    pub eff: EffPerms,
    /// Whether the cached leaf already has its dirty bit set. A write hit
    /// on a clean entry must re-walk so the dirty bit lands in the PTE.
    pub dirty: bool,
}

/// A single core's TLB: direct-mapped instruction and data arrays.
#[derive(Debug, Clone)]
pub struct Tlb {
    instr: [Option<TlbEntry>; TLB_ENTRIES],
    data: [Option<TlbEntry>; TLB_ENTRIES],
}

impl Default for Tlb {
    fn default() -> Tlb {
        Tlb::new()
    }
}

fn index(va: VirtAddr) -> usize {
    ((va.0 >> 12) as usize) & (TLB_ENTRIES - 1)
}

impl Tlb {
    /// An empty TLB.
    #[must_use]
    pub fn new() -> Tlb {
        Tlb {
            instr: [None; TLB_ENTRIES],
            data: [None; TLB_ENTRIES],
        }
    }

    fn class(&self, kind: AccessKind) -> &[Option<TlbEntry>; TLB_ENTRIES] {
        if kind == AccessKind::Execute {
            &self.instr
        } else {
            &self.data
        }
    }

    fn class_mut(&mut self, kind: AccessKind) -> &mut [Option<TlbEntry>; TLB_ENTRIES] {
        if kind == AccessKind::Execute {
            &mut self.instr
        } else {
            &mut self.data
        }
    }

    /// Look up a cached translation for `va` under `root`.
    #[must_use]
    pub fn lookup(&self, root: Frame, va: VirtAddr, kind: AccessKind) -> Option<TlbEntry> {
        let page = va.0 >> 12;
        self.class(kind)[index(va)].filter(|e| e.root == root && e.page == page)
    }

    /// Fill from a successful walk result.
    pub fn insert(&mut self, root: Frame, va: VirtAddr, kind: AccessKind, t: &Translation) {
        let entry = TlbEntry {
            root,
            page: va.0 >> 12,
            frame: t.pte.frame(),
            eff: t.eff,
            dirty: t.pte.dirty(),
        };
        self.class_mut(kind)[index(va)] = Some(entry);
    }

    /// Drop every entry (CR3 write; the PTE model has no global bit, so
    /// "non-global entries" is the whole TLB).
    pub(crate) fn flush_all(&mut self) {
        self.instr = [None; TLB_ENTRIES];
        self.data = [None; TLB_ENTRIES];
    }

    /// Drop any entry for `va`'s page, in both classes and under any root
    /// (`invlpg` semantics: conservative across address spaces).
    pub fn invalidate_page(&mut self, va: VirtAddr) {
        let page = va.0 >> 12;
        let idx = index(va);
        for class in [&mut self.instr, &mut self.data] {
            if class[idx].is_some_and(|e| e.page == page) {
                class[idx] = None;
            }
        }
    }

    /// Number of live entries (diagnostics / tests).
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.instr.iter().chain(self.data.iter()).flatten().count()
    }

    /// Iterate over every live entry in both classes (invariant checkers
    /// re-walk each against the in-memory tables).
    pub fn entries(&self) -> impl Iterator<Item = &TlbEntry> + '_ {
        self.instr.iter().chain(self.data.iter()).flatten()
    }

    /// Raw slot arrays `(instr, data)` for migration export. Slot
    /// position matters — the TLB is direct-mapped, so an entry must
    /// land back in the same index on the destination.
    #[must_use]
    pub fn to_parts(&self) -> (&[Option<TlbEntry>; TLB_ENTRIES], &[Option<TlbEntry>; TLB_ENTRIES]) {
        (&self.instr, &self.data)
    }

    /// Rebuild from exported slot arrays. Returns `None` if any entry
    /// sits in the wrong direct-mapped slot for its page number — an
    /// imported TLB must be one the hardware could actually have built.
    #[must_use]
    pub fn from_parts(
        instr: [Option<TlbEntry>; TLB_ENTRIES],
        data: [Option<TlbEntry>; TLB_ENTRIES],
    ) -> Option<Tlb> {
        for class in [&instr, &data] {
            for (idx, entry) in class.iter().enumerate() {
                if let Some(e) = entry {
                    if (e.page as usize) & (TLB_ENTRIES - 1) != idx {
                        return None;
                    }
                }
            }
        }
        Some(Tlb { instr, data })
    }
}

/// Hardware-level counters exported into bench JSON next to
/// `MonitorStats`: translation-path observability for Table 3 / Fig 8.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HwStats {
    /// Translations served from the TLB (charged `Costs::tlb_hit`).
    pub tlb_hits: u64,
    /// Translations that walked the tables and filled the TLB (charged
    /// `levels_walked * Costs::walk_level`).
    pub tlb_misses: u64,
    /// Whole-TLB flushes (CR3 writes).
    pub tlb_flushes: u64,
    /// Single-page invalidations (`invlpg`, local half of shootdowns).
    pub tlb_page_invalidations: u64,
    /// Remote-core invalidation IPIs sent by shootdowns (charged
    /// `Costs::interrupt_delivery` each).
    pub tlb_shootdown_ipis: u64,
}

impl HwStats {
    /// Counter-wise difference `self - prev` (saturating).
    #[must_use]
    pub fn delta(&self, prev: &HwStats) -> HwStats {
        HwStats {
            tlb_hits: self.tlb_hits.saturating_sub(prev.tlb_hits),
            tlb_misses: self.tlb_misses.saturating_sub(prev.tlb_misses),
            tlb_flushes: self.tlb_flushes.saturating_sub(prev.tlb_flushes),
            tlb_page_invalidations: self
                .tlb_page_invalidations
                .saturating_sub(prev.tlb_page_invalidations),
            tlb_shootdown_ipis: self.tlb_shootdown_ipis.saturating_sub(prev.tlb_shootdown_ipis),
        }
    }

    /// Fraction of successful translations served from the TLB.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        // Widen before adding: on a long chaos run the two counters can
        // individually approach u64::MAX and their sum must not wrap.
        let total = u128::from(self.tlb_hits) + u128::from(self.tlb_misses);
        if total == 0 {
            0.0
        } else {
            self.tlb_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paging::Pte;
    use crate::phys::PhysAddr;

    fn entry_for(root: Frame, va: VirtAddr, frame: Frame, dirty: bool) -> Translation {
        let flags = crate::paging::PteFlags {
            present: true,
            writable: true,
            user: false,
            accessed: true,
            dirty,
            nx: true,
            pkey: 3,
        };
        Translation {
            pa: PhysAddr(frame.base().0 + va.page_offset()),
            pte: Pte::encode(frame, flags),
            levels_walked: 4,
            eff: EffPerms {
                writable: true,
                user: false,
                nx: true,
                pkey: 3,
                keyid: 0,
            },
        }
    }

    #[test]
    fn lookup_is_keyed_by_root_and_page() {
        let mut tlb = Tlb::new();
        let va = VirtAddr(0xffff_8000_0000_3000);
        let t = entry_for(Frame(1), va, Frame(9), false);
        tlb.insert(Frame(1), va, AccessKind::Read, &t);
        assert!(tlb.lookup(Frame(1), va, AccessKind::Read).is_some());
        assert!(
            tlb.lookup(Frame(2), va, AccessKind::Read).is_none(),
            "same VA under another root must miss"
        );
        assert!(
            tlb.lookup(Frame(1), VirtAddr(va.0 + 0x1000), AccessKind::Read)
                .is_none()
        );
        // Offsets within the page share the entry.
        assert!(tlb.lookup(Frame(1), VirtAddr(va.0 + 0x123), AccessKind::Read).is_some());
    }

    #[test]
    fn instruction_and_data_classes_are_separate() {
        let mut tlb = Tlb::new();
        let va = VirtAddr(0x40_0000);
        let t = entry_for(Frame(1), va, Frame(9), false);
        tlb.insert(Frame(1), va, AccessKind::Execute, &t);
        assert!(tlb.lookup(Frame(1), va, AccessKind::Execute).is_some());
        assert!(tlb.lookup(Frame(1), va, AccessKind::Read).is_none());
        assert!(
            tlb.lookup(Frame(1), va, AccessKind::Write).is_none(),
            "read and write share the data class, execute does not"
        );
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut tlb = Tlb::new();
        let a = VirtAddr(0x40_0000);
        let b = VirtAddr(a.0 + (TLB_ENTRIES as u64) * 0x1000); // same index
        tlb.insert(Frame(1), a, AccessKind::Read, &entry_for(Frame(1), a, Frame(7), false));
        tlb.insert(Frame(1), b, AccessKind::Read, &entry_for(Frame(1), b, Frame(8), false));
        assert!(tlb.lookup(Frame(1), a, AccessKind::Read).is_none(), "evicted");
        assert!(tlb.lookup(Frame(1), b, AccessKind::Read).is_some());
    }

    #[test]
    fn invalidate_page_drops_both_classes_any_root() {
        let mut tlb = Tlb::new();
        let va = VirtAddr(0x40_0000);
        tlb.insert(Frame(1), va, AccessKind::Read, &entry_for(Frame(1), va, Frame(7), false));
        tlb.insert(Frame(2), va, AccessKind::Execute, &entry_for(Frame(2), va, Frame(8), false));
        assert_eq!(tlb.occupancy(), 2);
        tlb.invalidate_page(VirtAddr(va.0 + 0xabc));
        assert_eq!(tlb.occupancy(), 0);
    }

    #[test]
    fn flush_all_empties() {
        let mut tlb = Tlb::new();
        for i in 0..10u64 {
            let va = VirtAddr(0x40_0000 + i * 0x1000);
            tlb.insert(Frame(1), va, AccessKind::Read, &entry_for(Frame(1), va, Frame(7), false));
        }
        assert_eq!(tlb.occupancy(), 10);
        tlb.flush_all();
        assert_eq!(tlb.occupancy(), 0);
    }

    #[test]
    fn hit_rate_math() {
        let s = HwStats {
            tlb_hits: 3,
            tlb_misses: 1,
            ..HwStats::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(HwStats::default().hit_rate(), 0.0);
        let d = s.delta(&HwStats {
            tlb_hits: 1,
            ..HwStats::default()
        });
        assert_eq!(d.tlb_hits, 2);
        assert_eq!(d.tlb_misses, 1);
    }

    #[test]
    fn hit_rate_does_not_overflow_on_saturated_counters() {
        let s = HwStats {
            tlb_hits: u64::MAX,
            tlb_misses: u64::MAX,
            ..HwStats::default()
        };
        let r = s.hit_rate();
        assert!(r.is_finite());
        assert!((r - 0.5).abs() < 1e-12, "hit rate {r}");
    }
}
