//! Synthetic executable images.
//!
//! The simulated platform loads software from *images*: a minimal ELF-like
//! container of named sections with virtual addresses and permissions. The
//! kernel image the monitor verifies at boot (§5.1), the monitor's own
//! measured image, and sandboxed program images all use this format.
//!
//! Section *bytes are real*: the monitor's verifier scans them with
//! [`crate::insn::scan`], and CET landing pads are genuine `endbr64` byte
//! sequences located by offset.

use crate::insn;
use crate::VirtAddr;

/// Permissions requested for a section's mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionKind {
    /// Executable code (mapped read-execute; W⊕X).
    Text,
    /// Read-only data.
    Rodata,
    /// Read-write data.
    Data,
}

/// A named section of an image.
#[derive(Debug, Clone)]
pub struct Section {
    /// Section name (".text", ".data", ...).
    pub name: String,
    /// Load virtual address.
    pub va: VirtAddr,
    /// Raw contents.
    pub bytes: Vec<u8>,
    /// Mapping permissions.
    pub kind: SectionKind,
}

/// A loadable image: sections plus an entry point.
#[derive(Debug, Clone, Default)]
pub struct Image {
    /// Image name, for measurement logs.
    pub name: String,
    /// All sections.
    pub sections: Vec<Section>,
    /// Entry-point virtual address.
    pub entry: u64,
}

impl Image {
    /// Start building an image.
    #[must_use]
    pub fn builder(name: &str) -> ImageBuilder {
        ImageBuilder {
            image: Image {
                name: name.to_string(),
                ..Image::default()
            },
        }
    }

    /// All executable sections.
    pub fn text_sections(&self) -> impl Iterator<Item = &Section> {
        self.sections.iter().filter(|s| s.kind == SectionKind::Text)
    }

    /// Scan every executable section for sensitive instructions; returns
    /// `(section name, finding)` pairs. Empty means the image is safe to run
    /// deprivileged.
    #[must_use]
    pub fn scan_sensitive(&self) -> Vec<(String, insn::Finding)> {
        let mut out = Vec::new();
        for s in self.text_sections() {
            for f in insn::scan(&s.bytes) {
                out.push((s.name.clone(), f));
            }
        }
        out
    }

    /// Virtual addresses of every `endbr64` landing pad in the image.
    #[must_use]
    pub fn endbr_targets(&self) -> Vec<VirtAddr> {
        let mut out = Vec::new();
        for s in self.text_sections() {
            for off in 0..s.bytes.len() {
                if insn::is_endbr_at(&s.bytes, off) {
                    out.push(s.va.add(off as u64));
                }
            }
        }
        out
    }

    /// Total image size in bytes.
    #[must_use]
    pub fn size(&self) -> usize {
        self.sections.iter().map(|s| s.bytes.len()).sum()
    }

    /// A stable serialization of the image for measurement (hashed into the
    /// attestation digest by the TDX module simulator).
    #[must_use]
    pub fn measurement_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.size() + 64);
        out.extend_from_slice(self.name.as_bytes());
        out.extend_from_slice(&self.entry.to_le_bytes());
        for s in &self.sections {
            out.extend_from_slice(s.name.as_bytes());
            out.extend_from_slice(&s.va.0.to_le_bytes());
            out.extend_from_slice(&(s.bytes.len() as u64).to_le_bytes());
            out.push(match s.kind {
                SectionKind::Text => 1,
                SectionKind::Rodata => 2,
                SectionKind::Data => 3,
            });
            out.extend_from_slice(&s.bytes);
        }
        out
    }
}

/// Builder for [`Image`].
#[derive(Debug)]
pub struct ImageBuilder {
    image: Image,
}

impl ImageBuilder {
    /// Add a section.
    #[must_use]
    pub fn section(mut self, name: &str, va: VirtAddr, kind: SectionKind, bytes: Vec<u8>) -> Self {
        self.image.sections.push(Section {
            name: name.to_string(),
            va,
            bytes,
            kind,
        });
        self
    }

    /// Add an executable section of deterministic *benign* filler code of
    /// `len` bytes (guaranteed free of sensitive instructions), derived
    /// from `seed`.
    #[must_use]
    pub fn benign_text(self, name: &str, va: VirtAddr, len: usize, seed: u64) -> Self {
        let mut bytes: Vec<u8> = (0..len)
            .map(|i| {
                let x = ((i as u64) ^ seed.rotate_left(17))
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(seed);
                (x >> 32) as u8
            })
            .collect();
        insn::neutralize(&mut bytes);
        self.section(name, va, SectionKind::Text, bytes)
    }

    /// Set the entry point.
    #[must_use]
    pub fn entry(mut self, va: VirtAddr) -> Self {
        self.image.entry = va.0;
        self
    }

    /// Finish the image.
    #[must_use]
    pub fn build(self) -> Image {
        self.image
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{encode, SensitiveClass, ENDBR64};

    #[test]
    fn benign_text_scans_clean() {
        let img = Image::builder("k")
            .benign_text(".text", VirtAddr(0x1000), 64 * 1024, 42)
            .build();
        assert!(img.scan_sensitive().is_empty());
    }

    #[test]
    fn injected_wrmsr_is_found() {
        let mut bytes = vec![0x90; 128];
        bytes.splice(64..64, encode(SensitiveClass::Wrmsr));
        let img = Image::builder("evil")
            .section(".text", VirtAddr(0x1000), SectionKind::Text, bytes)
            .build();
        let findings = img.scan_sensitive();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].1.class, SensitiveClass::Wrmsr);
        assert_eq!(findings[0].1.offset, 64);
    }

    #[test]
    fn sensitive_bytes_in_data_sections_are_not_code() {
        // Data may legitimately contain sensitive byte patterns (W⊕X plus
        // NX makes them unexecutable); the scanner only covers text.
        let img = Image::builder("k")
            .section(
                ".data",
                VirtAddr(0x2000),
                SectionKind::Data,
                encode(SensitiveClass::Tdcall),
            )
            .build();
        assert!(img.scan_sensitive().is_empty());
    }

    #[test]
    fn endbr_targets_located() {
        let mut bytes = vec![0x90; 32];
        bytes.extend(ENDBR64);
        bytes.extend(vec![0x90; 8]);
        let img = Image::builder("m")
            .section(".text", VirtAddr(0x7000), SectionKind::Text, bytes)
            .build();
        assert_eq!(img.endbr_targets(), vec![VirtAddr(0x7020)]);
    }

    #[test]
    fn measurement_changes_with_contents() {
        let a = Image::builder("k")
            .benign_text(".text", VirtAddr(0x1000), 256, 1)
            .build();
        let b = Image::builder("k")
            .benign_text(".text", VirtAddr(0x1000), 256, 2)
            .build();
        assert_ne!(a.measurement_bytes(), b.measurement_bytes());
    }
}
