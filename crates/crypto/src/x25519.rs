//! X25519 Diffie-Hellman (RFC 7748) and the underlying field arithmetic
//! over GF(2²⁵⁵ − 19), shared with [`crate::ed25519`].
//!
//! Field elements use five 51-bit limbs with 128-bit intermediate products
//! ("fe51"). The Montgomery ladder uses constant-time conditional swaps.

use crate::ct::cswap_u64;

const MASK51: u64 = (1 << 51) - 1;

/// A field element of GF(2²⁵⁵ − 19) in radix-2⁵¹ representation.
///
/// Methods use plain names (`add`/`sub`/`mul`) rather than operator traits
/// to keep carry behaviour explicit at call sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fe(pub(crate) [u64; 5]);

#[allow(clippy::should_implement_trait)]
impl Fe {
    /// Zero.
    pub const ZERO: Fe = Fe([0; 5]);
    /// One.
    pub const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    /// Parse 32 little-endian bytes (top bit masked off, per RFC 7748).
    #[must_use]
    pub fn from_bytes(b: &[u8; 32]) -> Fe {
        let load = |i: usize| -> u64 {
            let mut v = [0u8; 8];
            v.copy_from_slice(&b[i..i + 8]);
            u64::from_le_bytes(v)
        };
        Fe([
            load(0) & MASK51,
            (load(6) >> 3) & MASK51,
            (load(12) >> 6) & MASK51,
            (load(19) >> 1) & MASK51,
            (load(24) >> 12) & MASK51,
        ])
    }

    /// Serialize to 32 little-endian bytes, fully reduced mod p.
    #[must_use]
    pub fn to_bytes(self) -> [u8; 32] {
        let mut l = self.carry().0;
        // Compute the quotient of (self + 19) / 2^255 to detect >= p.
        let mut q = (l[0] + 19) >> 51;
        q = (l[1] + q) >> 51;
        q = (l[2] + q) >> 51;
        q = (l[3] + q) >> 51;
        q = (l[4] + q) >> 51;
        l[0] += 19 * q;
        let mut carry = l[0] >> 51;
        l[0] &= MASK51;
        l[1] += carry;
        carry = l[1] >> 51;
        l[1] &= MASK51;
        l[2] += carry;
        carry = l[2] >> 51;
        l[2] &= MASK51;
        l[3] += carry;
        carry = l[3] >> 51;
        l[3] &= MASK51;
        l[4] += carry;
        l[4] &= MASK51;

        let mut out = [0u8; 32];
        let words = [
            l[0] | (l[1] << 51),
            (l[1] >> 13) | (l[2] << 38),
            (l[2] >> 26) | (l[3] << 25),
            (l[3] >> 39) | (l[4] << 12),
        ];
        for (i, w) in words.iter().enumerate() {
            out[8 * i..8 * i + 8].copy_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Weakly reduce limbs below 2⁵² (propagate carries once).
    #[must_use]
    fn carry(self) -> Fe {
        let mut l = self.0;
        let mut c: u64;
        c = l[0] >> 51;
        l[0] &= MASK51;
        l[1] += c;
        c = l[1] >> 51;
        l[1] &= MASK51;
        l[2] += c;
        c = l[2] >> 51;
        l[2] &= MASK51;
        l[3] += c;
        c = l[3] >> 51;
        l[3] &= MASK51;
        l[4] += c;
        c = l[4] >> 51;
        l[4] &= MASK51;
        l[0] += 19 * c;
        Fe(l)
    }

    /// Addition.
    #[must_use]
    pub fn add(self, o: Fe) -> Fe {
        Fe([
            self.0[0] + o.0[0],
            self.0[1] + o.0[1],
            self.0[2] + o.0[2],
            self.0[3] + o.0[3],
            self.0[4] + o.0[4],
        ])
        .carry()
    }

    /// Subtraction (adds 2p to keep limbs non-negative).
    #[must_use]
    pub fn sub(self, o: Fe) -> Fe {
        const TWO_P: [u64; 5] = [
            0xfffffffffffda,
            0xffffffffffffe,
            0xffffffffffffe,
            0xffffffffffffe,
            0xffffffffffffe,
        ];
        Fe([
            self.0[0] + TWO_P[0] - o.0[0],
            self.0[1] + TWO_P[1] - o.0[1],
            self.0[2] + TWO_P[2] - o.0[2],
            self.0[3] + TWO_P[3] - o.0[3],
            self.0[4] + TWO_P[4] - o.0[4],
        ])
        .carry()
    }

    /// Multiplication.
    #[must_use]
    pub fn mul(self, o: Fe) -> Fe {
        let a = self.carry().0;
        let b = o.carry().0;
        let m = |x: u64, y: u64| u128::from(x) * u128::from(y);
        let r0 =
            m(a[0], b[0]) + 19 * (m(a[1], b[4]) + m(a[2], b[3]) + m(a[3], b[2]) + m(a[4], b[1]));
        let r1 =
            m(a[0], b[1]) + m(a[1], b[0]) + 19 * (m(a[2], b[4]) + m(a[3], b[3]) + m(a[4], b[2]));
        let r2 =
            m(a[0], b[2]) + m(a[1], b[1]) + m(a[2], b[0]) + 19 * (m(a[3], b[4]) + m(a[4], b[3]));
        let r3 = m(a[0], b[3]) + m(a[1], b[2]) + m(a[2], b[1]) + m(a[3], b[0]) + 19 * m(a[4], b[4]);
        let r4 = m(a[0], b[4]) + m(a[1], b[3]) + m(a[2], b[2]) + m(a[3], b[1]) + m(a[4], b[0]);
        Fe::reduce_wide([r0, r1, r2, r3, r4])
    }

    /// Squaring.
    #[must_use]
    pub fn square(self) -> Fe {
        self.mul(self)
    }

    fn reduce_wide(r: [u128; 5]) -> Fe {
        let mut l = [0u64; 5];
        let mut c: u128 = 0;
        for i in 0..5 {
            let v = r[i] + c;
            l[i] = (v as u64) & MASK51;
            c = v >> 51;
        }
        let mut l0 = u128::from(l[0]) + 19 * c;
        l[0] = (l0 as u64) & MASK51;
        l0 >>= 51;
        l[1] += l0 as u64;
        Fe(l).carry()
    }

    /// Exponentiation by a little-endian 256-bit exponent (public exponent;
    /// square-and-multiply).
    #[must_use]
    pub fn pow_le(self, e: &[u8; 32]) -> Fe {
        let mut acc = Fe::ONE;
        for i in (0..256).rev() {
            acc = acc.square();
            if (e[i / 8] >> (i % 8)) & 1 == 1 {
                acc = acc.mul(self);
            }
        }
        acc
    }

    /// Multiplicative inverse (x^(p−2)).
    #[must_use]
    pub fn invert(self) -> Fe {
        // p - 2 = 2^255 - 21, little-endian bytes: eb ff .. ff 7f
        let mut e = [0xffu8; 32];
        e[0] = 0xeb;
        e[31] = 0x7f;
        self.pow_le(&e)
    }

    /// Whether the element is zero (after full reduction).
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.to_bytes() == [0u8; 32]
    }

    /// Constant-time conditional swap.
    pub fn cswap(swap: u64, a: &mut Fe, b: &mut Fe) {
        for i in 0..5 {
            cswap_u64(swap, &mut a.0[i], &mut b.0[i]);
        }
    }

    /// Multiply by a small constant.
    #[must_use]
    pub fn mul_small(self, k: u64) -> Fe {
        let a = self.carry().0;
        let r: [u128; 5] = core::array::from_fn(|i| u128::from(a[i]) * u128::from(k));
        Fe::reduce_wide(r)
    }
}

/// Clamp an X25519 private scalar per RFC 7748 §5.
#[must_use]
pub fn clamp_scalar(mut k: [u8; 32]) -> [u8; 32] {
    k[0] &= 248;
    k[31] &= 127;
    k[31] |= 64;
    k
}

/// The X25519 function: scalar multiplication on the Montgomery curve.
#[must_use]
pub fn x25519(scalar: &[u8; 32], u: &[u8; 32]) -> [u8; 32] {
    let k = clamp_scalar(*scalar);
    let x1 = Fe::from_bytes(u);
    let mut x2 = Fe::ONE;
    let mut z2 = Fe::ZERO;
    let mut x3 = x1;
    let mut z3 = Fe::ONE;
    let mut swap: u64 = 0;

    for t in (0..255).rev() {
        let k_t = u64::from((k[t / 8] >> (t % 8)) & 1);
        swap ^= k_t;
        Fe::cswap(swap, &mut x2, &mut x3);
        Fe::cswap(swap, &mut z2, &mut z3);
        swap = k_t;

        let a = x2.add(z2);
        let aa = a.square();
        let b = x2.sub(z2);
        let bb = b.square();
        let e = aa.sub(bb);
        let c = x3.add(z3);
        let d = x3.sub(z3);
        let da = d.mul(a);
        let cb = c.mul(b);
        x3 = da.add(cb).square();
        z3 = x1.mul(da.sub(cb).square());
        x2 = aa.mul(bb);
        z2 = e.mul(aa.add(e.mul_small(121_665)));
    }
    Fe::cswap(swap, &mut x2, &mut x3);
    Fe::cswap(swap, &mut z2, &mut z3);
    x2.mul(z2.invert()).to_bytes()
}

/// The X25519 base point (u = 9).
pub const BASE_POINT: [u8; 32] = {
    let mut b = [0u8; 32];
    b[0] = 9;
    b
};

/// Derive the public key for a private scalar.
#[must_use]
pub fn public_key(private: &[u8; 32]) -> [u8; 32] {
    x25519(private, &BASE_POINT)
}

/// Compute the shared secret between `private` and `their_public`.
#[must_use]
pub fn shared_secret(private: &[u8; 32], their_public: &[u8; 32]) -> [u8; 32] {
    x25519(private, their_public)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex32(s: &str) -> [u8; 32] {
        let v: Vec<u8> = (0..64)
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect();
        v.try_into().unwrap()
    }

    #[test]
    fn fe_roundtrip() {
        let b = unhex32("0102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f20");
        assert_eq!(Fe::from_bytes(&b).to_bytes(), {
            let mut e = b;
            e[31] &= 0x7f;
            e
        });
    }

    #[test]
    fn fe_arith_identities() {
        let a = Fe::from_bytes(&unhex32(
            "4701d08488451f545a409fb58ae3e58581ca40ac3f7f114698cd8deb2c4a9d37",
        ));
        assert_eq!(a.mul(a.invert()).to_bytes(), Fe::ONE.to_bytes());
        assert_eq!(a.sub(a).to_bytes(), Fe::ZERO.to_bytes());
        assert_eq!(a.add(Fe::ZERO).to_bytes(), a.to_bytes());
        assert_eq!(a.mul(Fe::ONE).to_bytes(), a.to_bytes());
        assert_eq!(a.square().to_bytes(), a.mul(a).to_bytes());
    }

    // RFC 7748 §5.2 vector 1.
    #[test]
    fn rfc7748_vector1() {
        let scalar = unhex32("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
        let u = unhex32("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
        assert_eq!(
            x25519(&scalar, &u),
            unhex32("c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552")
        );
    }

    // RFC 7748 §5.2 vector 2.
    #[test]
    fn rfc7748_vector2() {
        let scalar = unhex32("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
        let u = unhex32("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
        assert_eq!(
            x25519(&scalar, &u),
            unhex32("95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957")
        );
    }

    // RFC 7748 §6.1 Diffie-Hellman.
    #[test]
    fn rfc7748_dh() {
        let a_priv = unhex32("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
        let b_priv = unhex32("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
        let a_pub = public_key(&a_priv);
        let b_pub = public_key(&b_priv);
        assert_eq!(
            a_pub,
            unhex32("8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a")
        );
        assert_eq!(
            b_pub,
            unhex32("de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f")
        );
        let k1 = shared_secret(&a_priv, &b_pub);
        let k2 = shared_secret(&b_priv, &a_pub);
        assert_eq!(k1, k2);
        assert_eq!(
            k1,
            unhex32("4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742")
        );
    }

    #[test]
    fn clamping_applied() {
        let k = clamp_scalar([0xff; 32]);
        assert_eq!(k[0] & 7, 0);
        assert_eq!(k[31] & 0x80, 0);
        assert_eq!(k[31] & 0x40, 0x40);
    }
}
