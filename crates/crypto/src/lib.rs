//! # erebor-crypto — the cryptographic substrate
//!
//! From-scratch implementations of the primitives Erebor's end-to-end data
//! shepherding (§6.3) relies on:
//!
//! * [`mod@sha256`] / [`mod@sha512`] — FIPS 180-4 hashes
//! * [`hmac`] / [`hkdf`] — RFC 2104 / RFC 5869 (TDREPORT binding, KDF)
//! * [`chacha20`] / [`poly1305`] / [`aead`] — RFC 8439 AEAD (session records)
//! * [`x25519`] — RFC 7748 Diffie-Hellman (client ↔ monitor key exchange)
//! * [`ed25519`] — RFC 8032 signatures (the simulated CPU attestation root)
//! * [`kx`] — the attested authenticated key exchange built from the above
//!
//! Everything is implemented in-repo so the *trusted* path of the
//! reproduction has no external dependency, and each primitive is checked
//! against its RFC test vectors. The implementations favour clarity over
//! constant-time rigor where the distinction does not affect the modelled
//! threat (the paper places micro-architectural side channels out of scope,
//! §3.2); secret-dependent *branches* on key material are still avoided in
//! the ladder and verifier via constant-time selects and [`ct::eq`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aead;
pub mod chacha20;
pub mod ct;
pub mod ed25519;
pub mod frame;
pub mod hkdf;
pub mod hmac;
pub mod kx;
pub mod poly1305;
pub mod sha256;
pub mod sha512;
pub mod x25519;

pub use aead::{open, seal, AeadError};
pub use ed25519::{SigningKey, VerifyingKey};
pub use frame::{FrameError, FrameReceiver, FrameSender};
pub use kx::{SecureChannel, SessionKeys};
pub use sha256::sha256;
pub use sha512::sha512;
