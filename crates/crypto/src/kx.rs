//! The attested authenticated key exchange (§6.3) and the resulting
//! bidirectional secure channel.
//!
//! Protocol (one round trip, TLS-1.3-flavoured):
//!
//! 1. Client → monitor: ephemeral X25519 public key `C`.
//! 2. Monitor → client: ephemeral public key `M` plus an attestation quote
//!    whose `report_data` binds `SHA-256("erebor-kx" ‖ C ‖ M)`. Quote
//!    generation and verification live in `erebor-tdx` / `erebor-core`;
//!    this module provides the binding hash and the key schedule.
//! 3. Both sides derive `SessionKeys` from the X25519 shared secret and the
//!    transcript; all records are ChaCha20-Poly1305 with direction-split
//!    keys and counter nonces.

use crate::aead::{self, AeadError};
use crate::hkdf;
use crate::sha256::Sha256;

/// Direction-split session keys derived from the key exchange.
#[derive(Clone)]
pub struct SessionKeys {
    /// Client-to-server record key.
    pub c2s: [u8; 32],
    /// Server-to-client record key.
    pub s2c: [u8; 32],
}

impl core::fmt::Debug for SessionKeys {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("SessionKeys {{ .. }}")
    }
}

/// The transcript binding hash placed in the quote's `report_data`.
#[must_use]
pub fn binding_hash(client_pub: &[u8; 32], monitor_pub: &[u8; 32]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"erebor-kx-v1");
    h.update(client_pub);
    h.update(monitor_pub);
    h.finalize()
}

/// Derive direction-split session keys from the X25519 shared secret and
/// the two ephemeral public keys.
#[must_use]
pub fn derive_session_keys(
    shared: &[u8; 32],
    client_pub: &[u8; 32],
    monitor_pub: &[u8; 32],
) -> SessionKeys {
    let transcript = binding_hash(client_pub, monitor_pub);
    let okm: [u8; 64] = hkdf::derive(&transcript, shared, b"erebor session keys");
    let mut c2s = [0u8; 32];
    let mut s2c = [0u8; 32];
    c2s.copy_from_slice(&okm[..32]);
    s2c.copy_from_slice(&okm[32..]);
    SessionKeys { c2s, s2c }
}

/// Which end of the channel this instance is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The remote client.
    Client,
    /// The Erebor monitor.
    Monitor,
}

/// A bidirectional AEAD channel with per-direction record counters.
///
/// Nonces are the 64-bit record counter in the low bytes; a counter reuse
/// is impossible by construction (the counter is strictly increasing and
/// `send`/`recv` fail once exhausted).
pub struct SecureChannel {
    keys: SessionKeys,
    role: Role,
    send_ctr: u64,
    recv_ctr: u64,
}

/// Channel receive failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelError {
    /// The record failed authentication (tampering or reordering).
    Aead(AeadError),
    /// Record counter exhausted.
    CounterExhausted,
}

impl core::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ChannelError::Aead(e) => write!(f, "channel record rejected: {e}"),
            ChannelError::CounterExhausted => write!(f, "channel record counter exhausted"),
        }
    }
}

impl std::error::Error for ChannelError {}

fn nonce_for(ctr: u64) -> [u8; 12] {
    let mut n = [0u8; 12];
    n[..8].copy_from_slice(&ctr.to_le_bytes());
    n
}

impl SecureChannel {
    /// Create one end of the channel.
    #[must_use]
    pub fn new(keys: SessionKeys, role: Role) -> SecureChannel {
        SecureChannel {
            keys,
            role,
            send_ctr: 0,
            recv_ctr: 0,
        }
    }

    fn send_key(&self) -> &[u8; 32] {
        match self.role {
            Role::Client => &self.keys.c2s,
            Role::Monitor => &self.keys.s2c,
        }
    }

    fn recv_key(&self) -> &[u8; 32] {
        match self.role {
            Role::Client => &self.keys.s2c,
            Role::Monitor => &self.keys.c2s,
        }
    }

    /// Seal `plaintext` into the next outbound record.
    ///
    /// # Errors
    /// [`ChannelError::CounterExhausted`] after 2⁶⁴−1 records.
    pub fn send(&mut self, plaintext: &[u8]) -> Result<Vec<u8>, ChannelError> {
        let ctr = self.send_ctr;
        self.send_ctr = ctr.checked_add(1).ok_or(ChannelError::CounterExhausted)?;
        let aad = ctr.to_le_bytes();
        Ok(aead::seal(
            self.send_key(),
            &nonce_for(ctr),
            &aad,
            plaintext,
        ))
    }

    /// Open the next inbound record. Records must arrive in order; a
    /// replayed or reordered record fails authentication because the
    /// counter is bound as AAD and nonce.
    ///
    /// # Errors
    /// [`ChannelError`] on tampering, replay, or counter exhaustion.
    pub fn recv(&mut self, record: &[u8]) -> Result<Vec<u8>, ChannelError> {
        let ctr = self.recv_ctr;
        let aad = ctr.to_le_bytes();
        let pt = aead::open(self.recv_key(), &nonce_for(ctr), &aad, record)
            .map_err(ChannelError::Aead)?;
        self.recv_ctr = ctr.checked_add(1).ok_or(ChannelError::CounterExhausted)?;
        Ok(pt)
    }

    /// Number of records sent so far.
    #[must_use]
    pub fn records_sent(&self) -> u64 {
        self.send_ctr
    }

    /// Raw migration parts: keys, role, send counter, receive counter. A
    /// migrated channel must resume at the *exact* counters — rewinding
    /// would reuse a nonce, skipping would deadlock the peer.
    #[must_use]
    pub fn to_parts(&self) -> (&SessionKeys, Role, u64, u64) {
        (&self.keys, self.role, self.send_ctr, self.recv_ctr)
    }

    /// Rebuild a channel mid-stream from [`SecureChannel::to_parts`]
    /// output (migration import, and the counter-rollover tests).
    #[must_use]
    pub fn from_parts(keys: SessionKeys, role: Role, send_ctr: u64, recv_ctr: u64) -> SecureChannel {
        SecureChannel {
            keys,
            role,
            send_ctr,
            recv_ctr,
        }
    }
}

impl core::fmt::Debug for SecureChannel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SecureChannel")
            .field("role", &self.role)
            .field("send_ctr", &self.send_ctr)
            .field("recv_ctr", &self.recv_ctr)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::x25519;

    fn handshake() -> (SecureChannel, SecureChannel) {
        let c_priv = [11u8; 32];
        let m_priv = [22u8; 32];
        let c_pub = x25519::public_key(&c_priv);
        let m_pub = x25519::public_key(&m_priv);
        let c_shared = x25519::shared_secret(&c_priv, &m_pub);
        let m_shared = x25519::shared_secret(&m_priv, &c_pub);
        assert_eq!(c_shared, m_shared);
        let ck = derive_session_keys(&c_shared, &c_pub, &m_pub);
        let mk = derive_session_keys(&m_shared, &c_pub, &m_pub);
        (
            SecureChannel::new(ck, Role::Client),
            SecureChannel::new(mk, Role::Monitor),
        )
    }

    #[test]
    fn bidirectional_roundtrip() -> Result<(), ChannelError> {
        let (mut client, mut monitor) = handshake();
        let r1 = client.send(b"the prompt")?;
        assert_eq!(monitor.recv(&r1)?, b"the prompt");
        let r2 = monitor.send(b"the result")?;
        assert_eq!(client.recv(&r2)?, b"the result");
        Ok(())
    }

    #[test]
    fn replay_rejected() -> Result<(), ChannelError> {
        let (mut client, mut monitor) = handshake();
        let r1 = client.send(b"msg-0")?;
        monitor.recv(&r1)?;
        assert!(monitor.recv(&r1).is_err(), "replayed record must fail");
        Ok(())
    }

    #[test]
    fn reorder_rejected() -> Result<(), ChannelError> {
        let (mut client, mut monitor) = handshake();
        let r0 = client.send(b"msg-0")?;
        let r1 = client.send(b"msg-1")?;
        assert!(monitor.recv(&r1).is_err(), "out-of-order record must fail");
        monitor.recv(&r0)?;
        monitor.recv(&r1)?;
        Ok(())
    }

    #[test]
    fn directions_use_distinct_keys() -> Result<(), ChannelError> {
        let (mut client, mut monitor) = handshake();
        let from_client = client.send(b"x")?;
        let from_monitor = monitor.send(b"x")?;
        assert_ne!(from_client, from_monitor);
        Ok(())
    }

    #[test]
    fn ciphertext_hides_plaintext() -> Result<(), ChannelError> {
        let (mut client, _monitor) = handshake();
        let record = client.send(b"super secret healthcare data")?;
        // The proxy sees this record; the plaintext must not appear in it.
        let needle = b"healthcare";
        assert!(!record.windows(needle.len()).any(|w| w == needle));
        Ok(())
    }

    /// Counter rollover: the 2⁶⁴−1'th record is the last — both sides
    /// refuse to wrap the nonce sequence rather than reuse a nonce.
    #[test]
    fn counter_rollover_rejected() {
        let (client, monitor) = handshake();
        let (keys, role, _, _) = client.to_parts();
        let mut c = SecureChannel::from_parts(keys.clone(), role, u64::MAX, 0);
        assert_eq!(c.send(b"one too many"), Err(ChannelError::CounterExhausted));
        let (keys, role, _, _) = monitor.to_parts();
        let mut m = SecureChannel::from_parts(keys.clone(), role, 0, u64::MAX);
        // The peer can't even produce record 2⁶⁴−1, but a forged one must
        // not advance the counter past the edge: recv fails closed.
        assert!(m.recv(b"junk").is_err());
    }

    /// A migrated channel resumes at the exact counters: the next record
    /// sealed on the destination opens on the unmoved peer.
    #[test]
    fn channel_parts_resume_mid_stream() -> Result<(), ChannelError> {
        let (mut client, mut monitor) = handshake();
        for i in 0..5u8 {
            let r = client.send(&[i])?;
            monitor.recv(&r)?;
        }
        let (keys, role, s, rr) = monitor.to_parts();
        let mut migrated = SecureChannel::from_parts(keys.clone(), role, s, rr);
        let r = client.send(b"post-migration")?;
        assert_eq!(migrated.recv(&r)?, b"post-migration");
        let back = migrated.send(b"ack")?;
        assert_eq!(client.recv(&back)?, b"ack");
        Ok(())
    }

    #[test]
    fn binding_hash_depends_on_both_keys() {
        let a = binding_hash(&[1; 32], &[2; 32]);
        let b = binding_hash(&[1; 32], &[3; 32]);
        let c = binding_hash(&[4; 32], &[2; 32]);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
