//! Ed25519 signatures (RFC 8032) — used by the simulated TDX hardware root
//! to sign attestation quotes.
//!
//! Reuses the GF(2²⁵⁵ − 19) field arithmetic from [`crate::x25519`]. Curve
//! constants (`d`, `√−1`, the base point) are *derived* at first use from
//! their defining equations rather than transcribed, and the whole module is
//! validated against the RFC 8032 test vectors.

use crate::sha512::sha512;
use crate::x25519::Fe;
use std::sync::OnceLock;

// --- curve constants (computed once) ------------------------------------

fn fe_small(v: u64) -> Fe {
    Fe([v, 0, 0, 0, 0])
}

/// d = −121665 / 121666 (the Edwards curve constant).
fn d() -> Fe {
    static D: OnceLock<Fe> = OnceLock::new();
    *D.get_or_init(|| {
        Fe::ZERO
            .sub(fe_small(121_665))
            .mul(fe_small(121_666).invert())
    })
}

/// √−1 = 2^((p−1)/4).
fn sqrt_m1() -> Fe {
    static S: OnceLock<Fe> = OnceLock::new();
    *S.get_or_init(|| {
        // (p-1)/4 = 2^253 - 5, little-endian bytes fb ff .. ff 1f.
        let mut e = [0xffu8; 32];
        e[0] = 0xfb;
        e[31] = 0x1f;
        fe_small(2).pow_le(&e)
    })
}

// --- points in extended coordinates --------------------------------------

/// A curve point in extended twisted-Edwards coordinates (X:Y:Z:T) with
/// x = X/Z, y = Y/Z, T = XY/Z.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    x: Fe,
    y: Fe,
    z: Fe,
    t: Fe,
}

/// Point decompression failure (not a valid curve point encoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidPoint;

impl core::fmt::Display for InvalidPoint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid ed25519 point encoding")
    }
}

impl std::error::Error for InvalidPoint {}

fn fe_is_negative(f: Fe) -> bool {
    f.to_bytes()[0] & 1 == 1
}

impl Point {
    /// The identity element.
    #[must_use]
    pub fn identity() -> Point {
        Point {
            x: Fe::ZERO,
            y: Fe::ONE,
            z: Fe::ONE,
            t: Fe::ZERO,
        }
    }

    /// The standard base point B (y = 4/5, x positive).
    #[must_use]
    pub fn base() -> Point {
        static B: OnceLock<Point> = OnceLock::new();
        *B.get_or_init(|| {
            let y = fe_small(4).mul(fe_small(5).invert());
            let mut enc = y.to_bytes();
            enc[31] &= 0x7f; // sign bit 0
            // A compile-time constant: silently substituting a wrong
            // base point would be worse than aborting.
            Point::decompress(&enc).expect("base point must decompress") // lint:allow(panic)
        })
    }

    /// Unified point addition (complete formulas for a = −1 twisted
    /// Edwards).
    #[must_use]
    pub fn add(&self, o: &Point) -> Point {
        let d2 = d().add(d());
        let a = self.y.sub(self.x).mul(o.y.sub(o.x));
        let b = self.y.add(self.x).mul(o.y.add(o.x));
        let c = self.t.mul(d2).mul(o.t);
        let dd = self.z.add(self.z).mul(o.z);
        let e = b.sub(a);
        let f = dd.sub(c);
        let g = dd.add(c);
        let h = b.add(a);
        Point {
            x: e.mul(f),
            y: g.mul(h),
            z: f.mul(g),
            t: e.mul(h),
        }
    }

    /// Point doubling.
    #[must_use]
    pub fn double(&self) -> Point {
        self.add(self)
    }

    /// Scalar multiplication by a little-endian 256-bit scalar.
    #[must_use]
    pub fn mul_scalar(&self, k: &[u8; 32]) -> Point {
        let mut acc = Point::identity();
        for i in (0..256).rev() {
            acc = acc.double();
            if (k[i / 8] >> (i % 8)) & 1 == 1 {
                acc = acc.add(self);
            }
        }
        acc
    }

    /// Compress to the 32-byte encoding (y with the sign of x in bit 255).
    #[must_use]
    pub fn compress(&self) -> [u8; 32] {
        let zi = self.z.invert();
        let x = self.x.mul(zi);
        let y = self.y.mul(zi);
        let mut out = y.to_bytes();
        if fe_is_negative(x) {
            out[31] |= 0x80;
        }
        out
    }

    /// Decompress a 32-byte encoding.
    ///
    /// # Errors
    /// [`InvalidPoint`] if the encoding is not on the curve.
    pub fn decompress(enc: &[u8; 32]) -> Result<Point, InvalidPoint> {
        let sign = enc[31] >> 7;
        let mut ybytes = *enc;
        ybytes[31] &= 0x7f;
        let y = Fe::from_bytes(&ybytes);
        // x^2 = (y^2 - 1) / (d y^2 + 1)
        let y2 = y.square();
        let u = y2.sub(Fe::ONE);
        let v = d().mul(y2).add(Fe::ONE);
        // candidate root: x = u v^3 (u v^7)^((p-5)/8)
        let v3 = v.square().mul(v);
        let v7 = v3.square().mul(v);
        let mut e = [0xffu8; 32];
        e[0] = 0xfd;
        e[31] = 0x0f; // (p-5)/8 = 2^252 - 3
        let mut x = u.mul(v3).mul(u.mul(v7).pow_le(&e));
        let vx2 = v.mul(x.square());
        if vx2.sub(u).is_zero() {
            // x is the root
        } else if vx2.add(u).is_zero() {
            x = x.mul(sqrt_m1());
        } else {
            return Err(InvalidPoint);
        }
        if x.is_zero() && sign == 1 {
            return Err(InvalidPoint);
        }
        if u8::from(fe_is_negative(x)) != sign {
            x = Fe::ZERO.sub(x);
        }
        Ok(Point {
            x,
            y,
            z: Fe::ONE,
            t: x.mul(y),
        })
    }
}

// --- scalar arithmetic mod L ---------------------------------------------

/// L = 2²⁵² + 27742317777372353535851937790883648493, the group order.
const L: [u64; 4] = [
    0x5812_631a_5cf5_d3ed,
    0x14de_f9de_a2f7_9cd6,
    0,
    0x1000_0000_0000_0000,
];

fn ge_512(a: &[u64; 8], b: &[u64; 8]) -> bool {
    for i in (0..8).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

fn sub_512(a: &mut [u64; 8], b: &[u64; 8]) {
    let mut borrow = 0u64;
    for i in 0..8 {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        a[i] = d2;
        borrow = u64::from(b1) + u64::from(b2);
    }
    debug_assert_eq!(borrow, 0);
}

fn shl_512(a: &[u64; 8], bits: usize) -> [u64; 8] {
    let mut out = [0u64; 8];
    let limb = bits / 64;
    let off = bits % 64;
    for i in (0..8).rev() {
        if i >= limb {
            let mut v = a[i - limb] << off;
            if off > 0 && i > limb {
                v |= a[i - limb - 1] >> (64 - off);
            }
            out[i] = v;
        }
    }
    out
}

/// Reduce a 512-bit little-endian value mod L (shift-subtract long
/// division; L is public so variable time is acceptable here).
fn mod_l_512(x: &[u64; 8]) -> [u64; 4] {
    let mut acc = *x;
    let l8 = [L[0], L[1], L[2], L[3], 0, 0, 0, 0];
    for shift in (0..=259usize).rev() {
        let shifted = shl_512(&l8, shift);
        // Skip shifts that overflowed to zero (L<<shift >= 2^512).
        if shifted.iter().all(|&w| w == 0) {
            continue;
        }
        // Only subtract when no bits were shifted out the top.
        if shift <= 512 - 253 && ge_512(&acc, &shifted) {
            sub_512(&mut acc, &shifted);
        }
    }
    [acc[0], acc[1], acc[2], acc[3]]
}

/// Reduce a 64-byte hash output mod L.
#[must_use]
pub fn reduce_wide(bytes: &[u8; 64]) -> [u8; 32] {
    let mut limbs = [0u64; 8];
    for i in 0..8 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&bytes[8 * i..8 * i + 8]);
        limbs[i] = u64::from_le_bytes(b);
    }
    scalar_to_bytes(&mod_l_512(&limbs))
}

fn scalar_from_bytes(b: &[u8; 32]) -> [u64; 4] {
    core::array::from_fn(|i| {
        let mut v = [0u8; 8];
        v.copy_from_slice(&b[8 * i..8 * i + 8]);
        u64::from_le_bytes(v)
    })
}

fn scalar_to_bytes(s: &[u64; 4]) -> [u8; 32] {
    let mut out = [0u8; 32];
    for (i, w) in s.iter().enumerate() {
        out[8 * i..8 * i + 8].copy_from_slice(&w.to_le_bytes());
    }
    out
}

/// (a·b + c) mod L over 32-byte little-endian scalars.
#[must_use]
pub fn mul_add(a: &[u8; 32], b: &[u8; 32], c: &[u8; 32]) -> [u8; 32] {
    let a = scalar_from_bytes(a);
    let b = scalar_from_bytes(b);
    let c = scalar_from_bytes(c);
    let mut wide = [0u64; 8];
    // Schoolbook multiply with 128-bit partials.
    for i in 0..4 {
        let mut carry: u128 = 0;
        for j in 0..4 {
            let cur = u128::from(wide[i + j]) + u128::from(a[i]) * u128::from(b[j]) + carry;
            wide[i + j] = cur as u64;
            carry = cur >> 64;
        }
        wide[i + 4] = wide[i + 4].wrapping_add(carry as u64);
    }
    // Add c.
    let mut carry: u128 = 0;
    for i in 0..8 {
        let add = if i < 4 { u128::from(c[i]) } else { 0 };
        let cur = u128::from(wide[i]) + add + carry;
        wide[i] = cur as u64;
        carry = cur >> 64;
    }
    scalar_to_bytes(&mod_l_512(&wide))
}

/// Whether a 32-byte scalar is fully reduced (< L), required of `S` in a
/// signature to prevent malleability.
#[must_use]
pub fn is_canonical_scalar(s: &[u8; 32]) -> bool {
    let v = scalar_from_bytes(s);
    for i in (0..4).rev() {
        if v[i] != L[i] {
            return v[i] < L[i];
        }
    }
    false
}

// --- keys and signatures ---------------------------------------------------

/// Signature verification failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidSignature;

impl core::fmt::Display for InvalidSignature {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid ed25519 signature")
    }
}

impl std::error::Error for InvalidSignature {}

/// An Ed25519 signing key (32-byte seed).
#[derive(Clone)]
pub struct SigningKey {
    seed: [u8; 32],
    scalar: [u8; 32],
    prefix: [u8; 32],
    public: [u8; 32],
}

impl SigningKey {
    /// Derive the full key from a 32-byte seed.
    #[must_use]
    pub fn from_seed(seed: [u8; 32]) -> SigningKey {
        let h = sha512(&seed);
        let mut scalar = [0u8; 32];
        scalar.copy_from_slice(&h[..32]);
        scalar[0] &= 248;
        scalar[31] &= 127;
        scalar[31] |= 64;
        let mut prefix = [0u8; 32];
        prefix.copy_from_slice(&h[32..]);
        let public = Point::base().mul_scalar(&scalar).compress();
        SigningKey {
            seed,
            scalar,
            prefix,
            public,
        }
    }

    /// The seed this key was derived from.
    #[must_use]
    pub fn seed(&self) -> [u8; 32] {
        self.seed
    }

    /// The corresponding verifying key.
    #[must_use]
    pub fn verifying_key(&self) -> VerifyingKey {
        VerifyingKey { bytes: self.public }
    }

    /// Sign `msg`, producing the 64-byte signature R ‖ S.
    #[must_use]
    pub fn sign(&self, msg: &[u8]) -> [u8; 64] {
        let mut rh = crate::sha512::Sha512::new();
        rh.update(&self.prefix);
        rh.update(msg);
        let r = reduce_wide(&rh.finalize());
        let big_r = Point::base().mul_scalar(&r).compress();
        let mut kh = crate::sha512::Sha512::new();
        kh.update(&big_r);
        kh.update(&self.public);
        kh.update(msg);
        let k = reduce_wide(&kh.finalize());
        let s = mul_add(&k, &self.scalar, &r);
        let mut sig = [0u8; 64];
        sig[..32].copy_from_slice(&big_r);
        sig[32..].copy_from_slice(&s);
        sig
    }
}

impl core::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never print key material.
        f.debug_struct("SigningKey")
            .field("public", &self.public)
            .finish_non_exhaustive()
    }
}

/// An Ed25519 verifying (public) key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyingKey {
    bytes: [u8; 32],
}

impl VerifyingKey {
    /// Wrap a 32-byte compressed public key.
    #[must_use]
    pub fn from_bytes(bytes: [u8; 32]) -> VerifyingKey {
        VerifyingKey { bytes }
    }

    /// The compressed encoding.
    #[must_use]
    pub fn to_bytes(self) -> [u8; 32] {
        self.bytes
    }

    /// Verify `sig` over `msg`.
    ///
    /// # Errors
    /// [`InvalidSignature`] on any failure (bad encodings, non-canonical S,
    /// equation mismatch).
    pub fn verify(&self, msg: &[u8], sig: &[u8; 64]) -> Result<(), InvalidSignature> {
        let mut r_enc = [0u8; 32];
        r_enc.copy_from_slice(&sig[..32]);
        let mut s = [0u8; 32];
        s.copy_from_slice(&sig[32..]);
        if !is_canonical_scalar(&s) {
            return Err(InvalidSignature);
        }
        let a = Point::decompress(&self.bytes).map_err(|_| InvalidSignature)?;
        let r = Point::decompress(&r_enc).map_err(|_| InvalidSignature)?;
        let mut kh = crate::sha512::Sha512::new();
        kh.update(&r_enc);
        kh.update(&self.bytes);
        kh.update(msg);
        let k = reduce_wide(&kh.finalize());
        // Check [S]B == R + [k]A.
        let lhs = Point::base().mul_scalar(&s).compress();
        let rhs = r.add(&a.mul_scalar(&k)).compress();
        if crate::ct::eq(&lhs, &rhs) {
            Ok(())
        } else {
            Err(InvalidSignature)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex32(s: &str) -> [u8; 32] {
        let v: Vec<u8> = (0..64)
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect();
        v.try_into().unwrap()
    }

    fn unhex64(s: &str) -> [u8; 64] {
        let v: Vec<u8> = (0..128)
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect();
        v.try_into().unwrap()
    }

    // RFC 8032 §7.1 TEST 1 (empty message).
    #[test]
    fn rfc8032_test1() {
        let sk = SigningKey::from_seed(unhex32(
            "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
        ));
        assert_eq!(
            sk.verifying_key().to_bytes(),
            unhex32("d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a")
        );
        let sig = sk.sign(b"");
        assert_eq!(
            sig.to_vec(),
            unhex64(
                "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e065224901555fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"
            )
            .to_vec()
        );
        sk.verifying_key().verify(b"", &sig).unwrap();
    }

    // RFC 8032 §7.1 TEST 2 (one-byte message 0x72).
    #[test]
    fn rfc8032_test2() {
        let sk = SigningKey::from_seed(unhex32(
            "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
        ));
        assert_eq!(
            sk.verifying_key().to_bytes(),
            unhex32("3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c")
        );
        let sig = sk.sign(&[0x72]);
        assert_eq!(
            sig.to_vec(),
            unhex64(
                "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"
            )
            .to_vec()
        );
        sk.verifying_key().verify(&[0x72], &sig).unwrap();
    }

    // RFC 8032 §7.1 TEST 3 (two-byte message).
    #[test]
    fn rfc8032_test3() {
        let sk = SigningKey::from_seed(unhex32(
            "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
        ));
        let msg = [0xaf, 0x82];
        let sig = sk.sign(&msg);
        assert_eq!(
            sig.to_vec(),
            unhex64(
                "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a"
            )
            .to_vec()
        );
        sk.verifying_key().verify(&msg, &sig).unwrap();
    }

    #[test]
    fn rejects_wrong_message_and_tampered_sig() {
        let sk = SigningKey::from_seed([7u8; 32]);
        let vk = sk.verifying_key();
        let sig = sk.sign(b"attested report data");
        vk.verify(b"attested report data", &sig).unwrap();
        assert!(vk.verify(b"attested report datA", &sig).is_err());
        let mut bad = sig;
        bad[0] ^= 1;
        assert!(vk.verify(b"attested report data", &bad).is_err());
        let mut bad_s = sig;
        bad_s[40] ^= 1;
        assert!(vk.verify(b"attested report data", &bad_s).is_err());
    }

    #[test]
    fn rejects_wrong_key() {
        let sk1 = SigningKey::from_seed([1u8; 32]);
        let sk2 = SigningKey::from_seed([2u8; 32]);
        let sig = sk1.sign(b"m");
        assert!(sk2.verifying_key().verify(b"m", &sig).is_err());
    }

    #[test]
    fn rejects_non_canonical_s() {
        let sk = SigningKey::from_seed([3u8; 32]);
        let sig = sk.sign(b"m");
        let mut malleable = sig;
        // Add L to S: the classic malleability vector.
        let s = scalar_from_bytes(&malleable[32..].try_into().unwrap());
        let mut carry = 0u128;
        let mut s_plus_l = [0u64; 4];
        for i in 0..4 {
            let cur = u128::from(s[i]) + u128::from(L[i]) + carry;
            s_plus_l[i] = cur as u64;
            carry = cur >> 64;
        }
        malleable[32..].copy_from_slice(&scalar_to_bytes(&s_plus_l));
        assert!(sk.verifying_key().verify(b"m", &malleable).is_err());
    }

    #[test]
    fn scalar_reduce_wide_matches_identities() {
        // reduce(L padded to 64 bytes) == 0
        let mut l_bytes = [0u8; 64];
        l_bytes[..32].copy_from_slice(&scalar_to_bytes(&L));
        assert_eq!(reduce_wide(&l_bytes), [0u8; 32]);
        // reduce(1) == 1
        let mut one = [0u8; 64];
        one[0] = 1;
        let mut expect = [0u8; 32];
        expect[0] = 1;
        assert_eq!(reduce_wide(&one), expect);
    }

    #[test]
    fn mul_add_matches_small_numbers() {
        // 3*4 + 5 = 17
        let n = |v: u8| {
            let mut b = [0u8; 32];
            b[0] = v;
            b
        };
        assert_eq!(mul_add(&n(3), &n(4), &n(5)), n(17));
    }

    #[test]
    fn point_identities() {
        let b = Point::base();
        let id = Point::identity();
        assert_eq!(b.add(&id).compress(), b.compress());
        assert_eq!(b.double().compress(), b.add(&b).compress());
        // 2B + B == 3B
        let mut three = [0u8; 32];
        three[0] = 3;
        assert_eq!(
            b.double().add(&b).compress(),
            b.mul_scalar(&three).compress()
        );
    }

    #[test]
    fn decompress_compress_roundtrip() {
        let b = Point::base();
        let enc = b.compress();
        let p = Point::decompress(&enc).unwrap();
        assert_eq!(p.compress(), enc);
    }

    #[test]
    fn decompress_rejects_non_points() {
        // x = 0 (identity's y = 1) with the sign bit set is invalid.
        let mut enc = [0u8; 32];
        enc[0] = 1;
        enc[31] |= 0x80;
        assert!(Point::decompress(&enc).is_err());
        // Some y must yield a non-square x^2; find the first and assert the
        // decoder rejects it (about half of all y values qualify).
        let mut rejected = 0;
        for y in 2u8..40 {
            let mut e = [0u8; 32];
            e[0] = y;
            if Point::decompress(&e).is_err() {
                rejected += 1;
            }
        }
        assert!(
            rejected > 5,
            "non-square y² candidates must be rejected (got {rejected})"
        );
    }
}
