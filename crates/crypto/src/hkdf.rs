//! HKDF-SHA256 (RFC 5869) — the channel key schedule.

use crate::hmac::hmac_sha256;

/// HKDF-Extract: derive a pseudorandom key from input keying material.
#[must_use]
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; 32] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand: derive `out.len()` bytes (≤ 255·32) of output keying
/// material bound to `info`.
///
/// # Panics
/// Panics if more than 8160 bytes are requested (RFC 5869 limit).
pub fn expand(prk: &[u8; 32], info: &[u8], out: &mut [u8]) {
    assert!(out.len() <= 255 * 32, "HKDF-Expand output too long");
    let mut t: Vec<u8> = Vec::new();
    let mut done = 0usize;
    let mut counter = 1u8;
    while done < out.len() {
        let mut msg = Vec::with_capacity(t.len() + info.len() + 1);
        msg.extend_from_slice(&t);
        msg.extend_from_slice(info);
        msg.push(counter);
        let block = hmac_sha256(prk, &msg);
        let take = (out.len() - done).min(32);
        out[done..done + take].copy_from_slice(&block[..take]);
        t = block.to_vec();
        done += take;
        // The length assert above caps the loop at 255 blocks, so the
        // counter never wraps into a *used* value — the final increment
        // (255 → 0 at exactly 8160 bytes) is dead, making wrapping the
        // precise, panic-free semantics.
        counter = counter.wrapping_add(1);
    }
}

/// Extract-then-expand convenience.
#[must_use]
pub fn derive<const N: usize>(salt: &[u8], ikm: &[u8], info: &[u8]) -> [u8; N] {
    let prk = extract(salt, ikm);
    let mut out = [0u8; N];
    expand(&prk, info, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 5869 test case 1.
    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0b; 22];
        let salt = unhex("000102030405060708090a0b0c");
        let info = unhex("f0f1f2f3f4f5f6f7f8f9");
        let prk = extract(&salt, &ikm);
        assert_eq!(
            hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let mut okm = [0u8; 42];
        expand(&prk, &info, &mut okm);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    // RFC 5869 test case 3 (zero-length salt and info).
    #[test]
    fn rfc5869_case3() {
        let ikm = [0x0b; 22];
        let mut okm = [0u8; 42];
        let prk = extract(&[], &ikm);
        expand(&prk, &[], &mut okm);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn derive_convenience_matches_steps() {
        let okm: [u8; 64] = derive(b"salt", b"ikm", b"info");
        let prk = extract(b"salt", b"ikm");
        let mut manual = [0u8; 64];
        expand(&prk, b"info", &mut manual);
        assert_eq!(okm, manual);
    }
}
