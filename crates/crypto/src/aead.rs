//! ChaCha20-Poly1305 AEAD (RFC 8439 §2.8) — the record protection for the
//! client ↔ monitor channel.

use crate::chacha20;
use crate::ct;
use crate::poly1305::poly1305;

/// AEAD failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AeadError {
    /// Authentication tag mismatch: the ciphertext or AAD was tampered with.
    TagMismatch,
    /// Ciphertext shorter than a tag.
    Truncated,
}

impl core::fmt::Display for AeadError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AeadError::TagMismatch => write!(f, "AEAD tag mismatch"),
            AeadError::Truncated => write!(f, "AEAD ciphertext truncated"),
        }
    }
}

impl std::error::Error for AeadError {}

fn poly_key(key: &[u8; 32], nonce: &[u8; 12]) -> [u8; 32] {
    let block = chacha20::block(key, nonce, 0);
    let mut k = [0u8; 32];
    k.copy_from_slice(&block[..32]);
    k
}

fn mac_data(aad: &[u8], ct: &[u8]) -> Vec<u8> {
    let mut m = Vec::with_capacity(aad.len() + ct.len() + 32);
    m.extend_from_slice(aad);
    m.extend_from_slice(&[0u8; 16][..(16 - aad.len() % 16) % 16]);
    m.extend_from_slice(ct);
    m.extend_from_slice(&[0u8; 16][..(16 - ct.len() % 16) % 16]);
    m.extend_from_slice(&(aad.len() as u64).to_le_bytes());
    m.extend_from_slice(&(ct.len() as u64).to_le_bytes());
    m
}

/// Encrypt-and-authenticate `plaintext` with additional data `aad`.
/// Returns ciphertext ‖ 16-byte tag.
#[must_use]
pub fn seal(key: &[u8; 32], nonce: &[u8; 12], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
    let mut ct = plaintext.to_vec();
    chacha20::xor_stream(key, nonce, 1, &mut ct);
    let tag = poly1305(&poly_key(key, nonce), &mac_data(aad, &ct));
    ct.extend_from_slice(&tag);
    ct
}

/// Verify-and-decrypt `sealed` (ciphertext ‖ tag) with additional data
/// `aad`.
///
/// # Errors
/// [`AeadError`] if the record is truncated or fails authentication.
pub fn open(
    key: &[u8; 32],
    nonce: &[u8; 12],
    aad: &[u8],
    sealed: &[u8],
) -> Result<Vec<u8>, AeadError> {
    if sealed.len() < 16 {
        return Err(AeadError::Truncated);
    }
    let (ct, tag) = sealed.split_at(sealed.len() - 16);
    let expect = poly1305(&poly_key(key, nonce), &mac_data(aad, ct));
    if !ct::eq(&expect, tag) {
        return Err(AeadError::TagMismatch);
    }
    let mut pt = ct.to_vec();
    chacha20::xor_stream(key, nonce, 1, &mut pt);
    Ok(pt)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 8439 §2.8.2 AEAD test vector.
    #[test]
    fn rfc8439_aead_vector() {
        let key: [u8; 32] =
            unhex("808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f")
                .try_into()
                .unwrap();
        let nonce: [u8; 12] = unhex("070000004041424344454647").try_into().unwrap();
        let aad = unhex("50515253c0c1c2c3c4c5c6c7");
        let pt = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";
        let sealed = seal(&key, &nonce, &aad, pt);
        let expect_ct = unhex(
            "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6
             3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36
             92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc
             3ff4def08e4b7a9de576d26586cec64b6116",
        );
        let expect_tag = unhex("1ae10b594f09e26a7e902ecbd0600691");
        assert_eq!(&sealed[..pt.len()], &expect_ct[..]);
        assert_eq!(&sealed[pt.len()..], &expect_tag[..]);
        assert_eq!(open(&key, &nonce, &aad, &sealed).unwrap(), pt.to_vec());
    }

    #[test]
    fn tamper_detected() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let mut sealed = seal(&key, &nonce, b"hdr", b"secret payload");
        sealed[3] ^= 1;
        assert_eq!(
            open(&key, &nonce, b"hdr", &sealed),
            Err(AeadError::TagMismatch)
        );
    }

    #[test]
    fn aad_binding() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let sealed = seal(&key, &nonce, b"session-1", b"data");
        assert!(open(&key, &nonce, b"session-2", &sealed).is_err());
        assert!(open(&key, &nonce, b"session-1", &sealed).is_ok());
    }

    #[test]
    fn truncation_detected() {
        assert_eq!(
            open(&[0; 32], &[0; 12], b"", &[0u8; 10]),
            Err(AeadError::Truncated)
        );
    }

    /// Every length below a full tag is `Truncated`, never a panic and
    /// never `TagMismatch` — the boundary at 16 must be exact.
    #[test]
    fn truncation_sweep_every_boundary() {
        let key = [3u8; 32];
        let nonce = [4u8; 12];
        let sealed = seal(&key, &nonce, b"aad", b"0123456789");
        for cut in 0..16 {
            assert_eq!(
                open(&key, &nonce, b"aad", &sealed[..cut]),
                Err(AeadError::Truncated),
                "cut at {cut} bytes"
            );
        }
        // Exactly one tag's worth of bytes is *structurally* valid (an
        // empty ciphertext) and must fail authentication, not length.
        assert_eq!(
            open(&key, &nonce, b"aad", &sealed[..16]),
            Err(AeadError::TagMismatch)
        );
    }

    /// A record at the migration frame cap (64 MiB) seals and opens
    /// intact, and still authenticates — the multi-block Poly1305 and
    /// ChaCha20 counter paths hold at scale.
    #[test]
    fn max_length_record_roundtrip() {
        let key = [5u8; 32];
        let nonce = [6u8; 12];
        let mut pt = vec![0u8; crate::frame::MAX_FRAME_PAYLOAD];
        for (i, b) in pt.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let mut sealed = seal(&key, &nonce, b"max", &pt);
        assert_eq!(sealed.len(), pt.len() + 16);
        assert_eq!(open(&key, &nonce, b"max", &sealed).unwrap(), pt);
        let last = sealed.len() - 17;
        sealed[last] ^= 1;
        assert_eq!(
            open(&key, &nonce, b"max", &sealed),
            Err(AeadError::TagMismatch)
        );
    }

    #[test]
    fn empty_plaintext_roundtrip() {
        let key = [9u8; 32];
        let nonce = [8u8; 12];
        let sealed = seal(&key, &nonce, b"", b"");
        assert_eq!(sealed.len(), 16);
        assert_eq!(open(&key, &nonce, b"", &sealed).unwrap(), Vec::<u8>::new());
    }
}
