//! Sequence-numbered sealed record framing for the migration stream.
//!
//! The base [`crate::kx::SecureChannel`] binds its record counter as both
//! nonce and AAD, which makes a replayed, reordered, or truncated record
//! *indistinguishable* from a tampered one — every failure collapses to
//! a tag mismatch. A migration stream needs better forensics: the source
//! must abort with a *typed* reason (the chaos campaigns assert the exact
//! fault class), and an operator debugging a torn transfer needs to know
//! whether bytes were lost or flipped.
//!
//! Each frame therefore carries a cleartext header — sequence number,
//! record type, payload length — checked *before* the AEAD open:
//!
//! ```text
//! [ seq: u64 LE ][ type: u8 ][ len: u32 LE ][ ciphertext ‖ tag (len bytes) ]
//! ```
//!
//! The header is also bound as the AEAD's additional data, so a forged
//! header that passes the structural checks still dies on the tag. The
//! nonce is the sequence number, strictly monotonic per direction by
//! construction: [`FrameSender::seal`] refuses to wrap, and
//! [`FrameReceiver::open`] accepts exactly the next expected sequence —
//! a lower one is [`FrameError::Replay`], a higher one
//! [`FrameError::OutOfOrder`], short bytes [`FrameError::Truncated`],
//! and a bad tag [`FrameError::TagMismatch`]. Nothing advances the
//! receive counter except a fully verified frame, so any fault leaves
//! the stream in a known, resumable state.

use crate::aead::{self, AeadError};

/// Cleartext frame header size: seq (8) + type (1) + len (4).
pub const FRAME_HEADER: usize = 13;

/// AEAD tag size appended to every payload.
pub const FRAME_TAG: usize = 16;

/// Largest payload a single frame may carry (matches the wire codec's
/// field cap so a hostile length can't force a huge allocation).
pub const MAX_FRAME_PAYLOAD: usize = 64 * 1024 * 1024;

/// Typed framing failure — the migration abort reasons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than the header + declared length require.
    Truncated {
        /// Bytes required.
        need: usize,
        /// Bytes present.
        have: usize,
    },
    /// The frame's sequence number was already consumed.
    Replay {
        /// Sequence number carried by the frame.
        got: u64,
        /// Next sequence number the receiver will accept.
        want: u64,
    },
    /// The frame skips ahead — an earlier frame was lost or withheld.
    OutOfOrder {
        /// Sequence number carried by the frame.
        got: u64,
        /// Next sequence number the receiver will accept.
        want: u64,
    },
    /// Header or payload failed authentication (bit flips, a forged
    /// header, or a payload spliced from another frame).
    TagMismatch,
    /// The declared length is impossible (shorter than a tag, longer
    /// than [`MAX_FRAME_PAYLOAD`], or disagrees with the bytes present).
    BadLength {
        /// Declared ciphertext+tag length.
        len: usize,
    },
    /// The 64-bit sequence space is exhausted.
    CounterExhausted,
}

impl core::fmt::Display for FrameError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FrameError::Truncated { need, have } => {
                write!(f, "frame truncated: need {need} bytes, have {have}")
            }
            FrameError::Replay { got, want } => {
                write!(f, "frame replayed: seq {got}, expected {want}")
            }
            FrameError::OutOfOrder { got, want } => {
                write!(f, "frame out of order: seq {got}, expected {want}")
            }
            FrameError::TagMismatch => write!(f, "frame authentication failed"),
            FrameError::BadLength { len } => write!(f, "frame declares impossible length {len}"),
            FrameError::CounterExhausted => write!(f, "frame sequence space exhausted"),
        }
    }
}

impl std::error::Error for FrameError {}

fn nonce_for(seq: u64) -> [u8; 12] {
    let mut n = [0u8; 12];
    n[..8].copy_from_slice(&seq.to_le_bytes());
    n
}

fn header_for(seq: u64, rtype: u8, sealed_len: u32) -> [u8; FRAME_HEADER] {
    let mut h = [0u8; FRAME_HEADER];
    h[..8].copy_from_slice(&seq.to_le_bytes());
    h[8] = rtype;
    h[9..].copy_from_slice(&sealed_len.to_le_bytes());
    h
}

/// The sealing half of one stream direction.
#[derive(Clone)]
pub struct FrameSender {
    key: [u8; 32],
    next: u64,
}

impl core::fmt::Debug for FrameSender {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FrameSender").field("next", &self.next).finish_non_exhaustive()
    }
}

impl FrameSender {
    /// A sender starting at sequence 0 under `key`.
    #[must_use]
    pub fn new(key: [u8; 32]) -> FrameSender {
        FrameSender { key, next: 0 }
    }

    /// Test/rollover hook: a sender resuming at `next`.
    #[must_use]
    pub fn at_sequence(key: [u8; 32], next: u64) -> FrameSender {
        FrameSender { key, next }
    }

    /// Frames sealed so far (== the next sequence number).
    #[must_use]
    pub fn sealed_count(&self) -> u64 {
        self.next
    }

    /// Seal `payload` as the next frame of type `rtype`.
    ///
    /// # Errors
    /// [`FrameError::BadLength`] for an oversized payload,
    /// [`FrameError::CounterExhausted`] once the sequence space is spent.
    pub fn seal(&mut self, rtype: u8, payload: &[u8]) -> Result<Vec<u8>, FrameError> {
        if payload.len() > MAX_FRAME_PAYLOAD {
            return Err(FrameError::BadLength { len: payload.len() });
        }
        let seq = self.next;
        self.next = seq.checked_add(1).ok_or(FrameError::CounterExhausted)?;
        let sealed_len = (payload.len() + FRAME_TAG) as u32;
        let header = header_for(seq, rtype, sealed_len);
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len() + FRAME_TAG);
        frame.extend_from_slice(&header);
        frame.extend_from_slice(&aead::seal(&self.key, &nonce_for(seq), &header, payload));
        Ok(frame)
    }
}

/// The verifying half of one stream direction.
#[derive(Clone)]
pub struct FrameReceiver {
    key: [u8; 32],
    next: u64,
}

impl core::fmt::Debug for FrameReceiver {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FrameReceiver").field("next", &self.next).finish_non_exhaustive()
    }
}

impl FrameReceiver {
    /// A receiver expecting sequence 0 under `key`.
    #[must_use]
    pub fn new(key: [u8; 32]) -> FrameReceiver {
        FrameReceiver { key, next: 0 }
    }

    /// Test/rollover hook: a receiver resuming at `next`.
    #[must_use]
    pub fn at_sequence(key: [u8; 32], next: u64) -> FrameReceiver {
        FrameReceiver { key, next }
    }

    /// Frames verified so far (== the next expected sequence number).
    #[must_use]
    pub fn opened_count(&self) -> u64 {
        self.next
    }

    /// Verify and open `frame`, returning `(record type, plaintext)`.
    /// The receive counter advances only on full success.
    ///
    /// # Errors
    /// The typed [`FrameError`] for exactly what went wrong — see the
    /// module docs for the taxonomy.
    pub fn open(&mut self, frame: &[u8]) -> Result<(u8, Vec<u8>), FrameError> {
        if frame.len() < FRAME_HEADER {
            return Err(FrameError::Truncated {
                need: FRAME_HEADER,
                have: frame.len(),
            });
        }
        let mut seq8 = [0u8; 8];
        seq8.copy_from_slice(&frame[..8]);
        let seq = u64::from_le_bytes(seq8);
        let rtype = frame[8];
        let mut len4 = [0u8; 4];
        len4.copy_from_slice(&frame[9..13]);
        let sealed_len = u32::from_le_bytes(len4) as usize;
        if !(FRAME_TAG..=MAX_FRAME_PAYLOAD + FRAME_TAG).contains(&sealed_len) {
            return Err(FrameError::BadLength { len: sealed_len });
        }
        let total = FRAME_HEADER + sealed_len;
        if frame.len() < total {
            return Err(FrameError::Truncated {
                need: total,
                have: frame.len(),
            });
        }
        if frame.len() > total {
            // Trailing bytes mean the stream is desynchronized — a
            // spliced or corrupted length, not a short read.
            return Err(FrameError::BadLength { len: sealed_len });
        }
        // Sequence check before the expensive open: replay and reorder
        // get their own verdicts even though the tag would also fail
        // (the nonce/AAD differ).
        if seq < self.next {
            return Err(FrameError::Replay {
                got: seq,
                want: self.next,
            });
        }
        if seq > self.next {
            return Err(FrameError::OutOfOrder {
                got: seq,
                want: self.next,
            });
        }
        let header = header_for(seq, rtype, sealed_len as u32);
        let pt = aead::open(&self.key, &nonce_for(seq), &header, &frame[FRAME_HEADER..])
            .map_err(|e| match e {
                AeadError::TagMismatch => FrameError::TagMismatch,
                AeadError::Truncated => FrameError::Truncated {
                    need: FRAME_TAG,
                    have: sealed_len,
                },
            })?;
        self.next = seq.checked_add(1).ok_or(FrameError::CounterExhausted)?;
        Ok((rtype, pt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: [u8; 32] = [7u8; 32];

    #[test]
    fn roundtrip_preserves_type_and_payload() -> Result<(), FrameError> {
        let mut tx = FrameSender::new(KEY);
        let mut rx = FrameReceiver::new(KEY);
        for (t, p) in [(1u8, &b"alpha"[..]), (2, b""), (9, &[0xAA; 4096])] {
            let f = tx.seal(t, p)?;
            let (rt, rp) = rx.open(&f)?;
            assert_eq!((rt, rp.as_slice()), (t, p));
        }
        assert_eq!(tx.sealed_count(), 3);
        assert_eq!(rx.opened_count(), 3);
        Ok(())
    }

    #[test]
    fn replay_and_reorder_get_distinct_verdicts() -> Result<(), FrameError> {
        let mut tx = FrameSender::new(KEY);
        let mut rx = FrameReceiver::new(KEY);
        let f0 = tx.seal(1, b"zero")?;
        let f1 = tx.seal(1, b"one")?;
        let f2 = tx.seal(1, b"two")?;
        rx.open(&f0)?;
        assert_eq!(
            rx.open(&f0),
            Err(FrameError::Replay { got: 0, want: 1 }),
            "replay must be typed as replay, not tag mismatch"
        );
        assert_eq!(
            rx.open(&f2),
            Err(FrameError::OutOfOrder { got: 2, want: 1 }),
            "skip must be typed as out-of-order"
        );
        // The stream is still resumable at the right frame.
        rx.open(&f1)?;
        rx.open(&f2)?;
        Ok(())
    }

    #[test]
    fn truncation_at_every_boundary_is_typed() -> Result<(), FrameError> {
        let mut tx = FrameSender::new(KEY);
        let f = tx.seal(3, b"truncate me")?;
        for cut in 0..f.len() {
            let mut rx = FrameReceiver::new(KEY);
            let err = rx.open(&f[..cut]).expect_err("short frame accepted");
            assert!(
                matches!(err, FrameError::Truncated { .. }),
                "cut {cut}: got {err:?}"
            );
            assert_eq!(rx.opened_count(), 0, "counter moved on a bad frame");
        }
        Ok(())
    }

    #[test]
    fn every_flipped_bit_in_header_or_body_is_rejected() -> Result<(), FrameError> {
        let mut tx = FrameSender::new(KEY);
        let f = tx.seal(5, b"bits")?;
        for byte in 0..f.len() {
            let mut evil = f.clone();
            evil[byte] ^= 0x01;
            let mut rx = FrameReceiver::new(KEY);
            assert!(rx.open(&evil).is_err(), "flip at byte {byte} accepted");
        }
        // The pristine frame still opens.
        let mut rx = FrameReceiver::new(KEY);
        rx.open(&f)?;
        Ok(())
    }

    #[test]
    fn wrong_key_is_tag_mismatch() -> Result<(), FrameError> {
        let mut tx = FrameSender::new(KEY);
        let f = tx.seal(1, b"payload")?;
        let mut rx = FrameReceiver::new([8u8; 32]);
        assert_eq!(rx.open(&f), Err(FrameError::TagMismatch));
        Ok(())
    }

    #[test]
    fn hostile_length_rejected_without_allocation() {
        // A header declaring a huge payload over 13 real bytes must be
        // refused by the length cap, not by attempting the read.
        let mut evil = Vec::new();
        evil.extend_from_slice(&0u64.to_le_bytes());
        evil.push(1);
        evil.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut rx = FrameReceiver::new(KEY);
        assert!(matches!(
            rx.open(&evil),
            Err(FrameError::BadLength { .. })
        ));
    }

    #[test]
    fn sequence_rollover_refused_on_both_ends() {
        let mut tx = FrameSender::at_sequence(KEY, u64::MAX);
        assert_eq!(tx.seal(1, b"last"), Err(FrameError::CounterExhausted));
        // Receiver at the edge: a frame built for seq MAX verifies but
        // cannot advance — the stream ends rather than wrapping.
        let mut forge = FrameSender::at_sequence(KEY, u64::MAX - 1);
        let f = forge
            .seal(1, b"edge")
            .expect("MAX-1 is the last valid sequence");
        let mut rx = FrameReceiver::at_sequence(KEY, u64::MAX - 1);
        rx.open(&f).expect("edge frame is valid");
        assert_eq!(rx.opened_count(), u64::MAX);
    }

    #[test]
    fn oversized_payload_refused_at_seal() {
        let mut tx = FrameSender::new(KEY);
        let big = vec![0u8; MAX_FRAME_PAYLOAD + 1];
        assert_eq!(
            tx.seal(1, &big),
            Err(FrameError::BadLength {
                len: MAX_FRAME_PAYLOAD + 1
            })
        );
        assert_eq!(tx.sealed_count(), 0, "failed seal must not burn a sequence");
    }
}
