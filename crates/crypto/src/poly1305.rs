//! The Poly1305 one-time authenticator (RFC 8439 §2.5).
//!
//! Implemented with five 26-bit limbs and 64-bit intermediate products —
//! the classic "donna" representation, chosen for clarity and easy overflow
//! reasoning.

/// Compute the 16-byte Poly1305 tag of `msg` under the 32-byte one-time
/// `key` (r ‖ s).
#[must_use]
pub fn poly1305(key: &[u8; 32], msg: &[u8]) -> [u8; 16] {
    // Clamp r per RFC 8439.
    let t0 = u32::from_le_bytes([key[0], key[1], key[2], key[3]]);
    let t1 = u32::from_le_bytes([key[4], key[5], key[6], key[7]]);
    let t2 = u32::from_le_bytes([key[8], key[9], key[10], key[11]]);
    let t3 = u32::from_le_bytes([key[12], key[13], key[14], key[15]]);
    let r0 = u64::from(t0) & 0x3ff_ffff;
    let r1 = u64::from((t0 >> 26) | (t1 << 6)) & 0x3ff_ff03;
    let r2 = u64::from((t1 >> 20) | (t2 << 12)) & 0x3ff_c0ff;
    let r3 = u64::from((t2 >> 14) | (t3 << 18)) & 0x3f0_3fff;
    let r4 = u64::from(t3 >> 8) & 0x00f_ffff;

    let s1 = r1 * 5;
    let s2 = r2 * 5;
    let s3 = r3 * 5;
    let s4 = r4 * 5;

    let mut h0: u64 = 0;
    let mut h1: u64 = 0;
    let mut h2: u64 = 0;
    let mut h3: u64 = 0;
    let mut h4: u64 = 0;

    let mut rest = msg;
    while !rest.is_empty() {
        let take = rest.len().min(16);
        let mut block = [0u8; 17];
        block[..take].copy_from_slice(&rest[..take]);
        block[take] = 1; // the 2^(8*len) pad bit
        rest = &rest[take..];

        let b0 = u64::from(u32::from_le_bytes([block[0], block[1], block[2], block[3]]));
        let b1 = u64::from(u32::from_le_bytes([block[4], block[5], block[6], block[7]]));
        let b2 = u64::from(u32::from_le_bytes([
            block[8], block[9], block[10], block[11],
        ]));
        let b3 = u64::from(u32::from_le_bytes([
            block[12], block[13], block[14], block[15],
        ]));
        let b4 = u64::from(block[16]);

        h0 += b0 & 0x3ff_ffff;
        h1 += ((b0 >> 26) | (b1 << 6)) & 0x3ff_ffff;
        h2 += ((b1 >> 20) | (b2 << 12)) & 0x3ff_ffff;
        h3 += ((b2 >> 14) | (b3 << 18)) & 0x3ff_ffff;
        h4 += (b3 >> 8) | (b4 << 24);

        // h *= r (mod 2^130 - 5), using 128-bit products.
        let d0 = u128::from(h0) * u128::from(r0)
            + u128::from(h1) * u128::from(s4)
            + u128::from(h2) * u128::from(s3)
            + u128::from(h3) * u128::from(s2)
            + u128::from(h4) * u128::from(s1);
        let d1 = u128::from(h0) * u128::from(r1)
            + u128::from(h1) * u128::from(r0)
            + u128::from(h2) * u128::from(s4)
            + u128::from(h3) * u128::from(s3)
            + u128::from(h4) * u128::from(s2);
        let d2 = u128::from(h0) * u128::from(r2)
            + u128::from(h1) * u128::from(r1)
            + u128::from(h2) * u128::from(r0)
            + u128::from(h3) * u128::from(s4)
            + u128::from(h4) * u128::from(s3);
        let d3 = u128::from(h0) * u128::from(r3)
            + u128::from(h1) * u128::from(r2)
            + u128::from(h2) * u128::from(r1)
            + u128::from(h3) * u128::from(r0)
            + u128::from(h4) * u128::from(s4);
        let d4 = u128::from(h0) * u128::from(r4)
            + u128::from(h1) * u128::from(r3)
            + u128::from(h2) * u128::from(r2)
            + u128::from(h3) * u128::from(r1)
            + u128::from(h4) * u128::from(r0);

        // Carry propagation.
        let mut c: u128;
        c = d0 >> 26;
        h0 = (d0 as u64) & 0x3ff_ffff;
        let d1 = d1 + c;
        c = d1 >> 26;
        h1 = (d1 as u64) & 0x3ff_ffff;
        let d2 = d2 + c;
        c = d2 >> 26;
        h2 = (d2 as u64) & 0x3ff_ffff;
        let d3 = d3 + c;
        c = d3 >> 26;
        h3 = (d3 as u64) & 0x3ff_ffff;
        let d4 = d4 + c;
        c = d4 >> 26;
        h4 = (d4 as u64) & 0x3ff_ffff;
        h0 += (c as u64) * 5;
        h1 += h0 >> 26;
        h0 &= 0x3ff_ffff;
    }

    // Final reduction mod 2^130 - 5.
    let mut c = h1 >> 26;
    h1 &= 0x3ff_ffff;
    h2 += c;
    c = h2 >> 26;
    h2 &= 0x3ff_ffff;
    h3 += c;
    c = h3 >> 26;
    h3 &= 0x3ff_ffff;
    h4 += c;
    c = h4 >> 26;
    h4 &= 0x3ff_ffff;
    h0 += c * 5;
    c = h0 >> 26;
    h0 &= 0x3ff_ffff;
    h1 += c;

    // Compute h + -p and constant-time select.
    let mut g0 = h0.wrapping_add(5);
    c = g0 >> 26;
    g0 &= 0x3ff_ffff;
    let mut g1 = h1.wrapping_add(c);
    c = g1 >> 26;
    g1 &= 0x3ff_ffff;
    let mut g2 = h2.wrapping_add(c);
    c = g2 >> 26;
    g2 &= 0x3ff_ffff;
    let mut g3 = h3.wrapping_add(c);
    c = g3 >> 26;
    g3 &= 0x3ff_ffff;
    let g4 = h4.wrapping_add(c).wrapping_sub(1 << 26);

    let mask = (g4 >> 63).wrapping_sub(1); // all-ones if h >= p
    h0 = (h0 & !mask) | (g0 & mask);
    h1 = (h1 & !mask) | (g1 & mask);
    h2 = (h2 & !mask) | (g2 & mask);
    h3 = (h3 & !mask) | (g3 & mask);
    h4 = (h4 & !mask) | (g4 & 0x3ff_ffff & mask);

    // Serialize h to 128 bits and add s.
    let f0 = (h0 | (h1 << 26)) as u128;
    let f1 = ((h1 >> 6) | (h2 << 20)) as u128;
    let f2 = ((h2 >> 12) | (h3 << 14)) as u128;
    let f3 = ((h3 >> 18) | (h4 << 8)) as u128;
    let h128 = (f0 & 0xffff_ffff)
        | ((f1 & 0xffff_ffff) << 32)
        | ((f2 & 0xffff_ffff) << 64)
        | ((f3 & 0xffff_ffff) << 96);
    let s = u128::from_le_bytes([
        key[16], key[17], key[18], key[19], key[20], key[21], key[22], key[23], key[24], key[25],
        key[26], key[27], key[28], key[29], key[30], key[31],
    ]);
    h128.wrapping_add(s).to_le_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 8439 §2.5.2 test vector.
    #[test]
    fn rfc8439_tag_vector() {
        let key: [u8; 32] =
            unhex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b")
                .try_into()
                .unwrap();
        let msg = b"Cryptographic Forum Research Group";
        assert_eq!(
            poly1305(&key, msg).to_vec(),
            unhex("a8061dc1305136c6c22b8baf0c0127a9")
        );
    }

    // RFC 8439 appendix A.3 vector #1: all-zero key and message.
    #[test]
    fn zero_key_zero_msg() {
        assert_eq!(poly1305(&[0u8; 32], &[0u8; 64]), [0u8; 16]);
    }

    // RFC 8439 appendix A.3 vector #3: r with all clamp bits.
    #[test]
    fn appendix_a3_vector2() {
        let mut key = [0u8; 32];
        let text = b"Any submission to the IETF intended by the Contributor for publi\
cation as all or part of an IETF Internet-Draft or RFC and any statement made within the cont\
ext of an IETF activity is considered an \"IETF Contribution\". Such statements include oral \
statements in IETF sessions, as well as written and electronic communications made at any tim\
e or place, which are addressed to";
        // Vector 2: r = 0, s = 36e5f6b5c5e06070f0efca96227a863e → tag = s.
        key[16..].copy_from_slice(&unhex("36e5f6b5c5e06070f0efca96227a863e"));
        assert_eq!(
            poly1305(&key, &text[..]).to_vec(),
            unhex("36e5f6b5c5e06070f0efca96227a863e")
        );
    }

    #[test]
    fn partial_block_lengths() {
        // Differing lengths must give differing tags (pad bit position).
        let key = [9u8; 32];
        let t1 = poly1305(&key, &[0u8; 15]);
        let t2 = poly1305(&key, &[0u8; 16]);
        assert_ne!(t1, t2);
    }
}
