//! Constant-time helpers.

/// Constant-time byte-slice equality. Returns `false` for length mismatch
/// (length is not secret in any of our protocols).
#[must_use]
pub fn eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

/// Constant-time conditional swap of two u64 values when `swap` is 1.
pub fn cswap_u64(swap: u64, a: &mut u64, b: &mut u64) {
    debug_assert!(swap <= 1);
    let mask = swap.wrapping_neg();
    let t = mask & (*a ^ *b);
    *a ^= t;
    *b ^= t;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_basic() {
        assert!(eq(b"abc", b"abc"));
        assert!(!eq(b"abc", b"abd"));
        assert!(!eq(b"abc", b"abcd"));
        assert!(eq(b"", b""));
    }

    #[test]
    fn cswap_behaviour() {
        let (mut a, mut b) = (1u64, 2u64);
        cswap_u64(0, &mut a, &mut b);
        assert_eq!((a, b), (1, 2));
        cswap_u64(1, &mut a, &mut b);
        assert_eq!((a, b), (2, 1));
    }
}
