//! Property-based tests for the crypto substrate: round trips, incremental
//! equivalence, algebraic identities, and channel ordering.

use erebor_crypto::ed25519::{self, SigningKey};
use erebor_crypto::kx::{derive_session_keys, Role, SecureChannel};
use erebor_crypto::x25519::{self, Fe};
use erebor_crypto::{aead, hkdf, sha256, sha512};
use erebor_testkit::collection;
use erebor_testkit::prelude::*;

proptest! {
    #[test]
    fn sha256_incremental_equals_oneshot(
        data in collection::vec(any::<u8>(), 0..4096),
        split_frac in 0.0f64..1.0,
    ) {
        let split = (data.len() as f64 * split_frac) as usize;
        let mut h = sha256::Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256::sha256(&data));
    }

    #[test]
    fn sha512_incremental_equals_oneshot(
        data in collection::vec(any::<u8>(), 0..4096),
        splits in collection::vec(0.0f64..1.0, 0..4),
    ) {
        let mut h = sha512::Sha512::new();
        let mut idxs: Vec<usize> =
            splits.iter().map(|f| (data.len() as f64 * f) as usize).collect();
        idxs.sort_unstable();
        let mut prev = 0;
        for i in idxs {
            h.update(&data[prev..i]);
            prev = i;
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finalize().to_vec(), sha512::sha512(&data).to_vec());
    }

    #[test]
    fn aead_roundtrip_any_inputs(
        key in any::<[u8; 32]>(),
        nonce in any::<[u8; 12]>(),
        aad in collection::vec(any::<u8>(), 0..128),
        pt in collection::vec(any::<u8>(), 0..2048),
    ) {
        let sealed = aead::seal(&key, &nonce, &aad, &pt);
        prop_assert_eq!(sealed.len(), pt.len() + 16);
        prop_assert_eq!(aead::open(&key, &nonce, &aad, &sealed).unwrap(), pt);
    }

    #[test]
    fn aead_any_single_bitflip_rejected(
        key in any::<[u8; 32]>(),
        nonce in any::<[u8; 12]>(),
        pt in collection::vec(any::<u8>(), 1..256),
        bit in any::<u16>(),
    ) {
        let mut sealed = aead::seal(&key, &nonce, b"aad", &pt);
        let bit = (bit as usize) % (sealed.len() * 8);
        sealed[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(aead::open(&key, &nonce, b"aad", &sealed).is_err());
    }

    #[test]
    fn hkdf_prefix_consistency(
        ikm in collection::vec(any::<u8>(), 1..64),
        info in collection::vec(any::<u8>(), 0..32),
    ) {
        // A longer expansion starts with the shorter one.
        let prk = hkdf::extract(b"salt", &ikm);
        let mut short = [0u8; 16];
        let mut long = [0u8; 80];
        hkdf::expand(&prk, &info, &mut short);
        hkdf::expand(&prk, &info, &mut long);
        prop_assert_eq!(&long[..16], &short[..]);
    }

    #[test]
    fn fe_field_axioms(a in any::<[u8; 32]>(), b in any::<[u8; 32]>()) {
        let x = Fe::from_bytes(&a);
        let y = Fe::from_bytes(&b);
        // Commutativity.
        prop_assert_eq!(x.add(y).to_bytes(), y.add(x).to_bytes());
        prop_assert_eq!(x.mul(y).to_bytes(), y.mul(x).to_bytes());
        // Distributivity: x(y + y) = xy + xy.
        prop_assert_eq!(
            x.mul(y.add(y)).to_bytes(),
            x.mul(y).add(x.mul(y)).to_bytes()
        );
        // a - a = 0; a * 1 = a.
        prop_assert_eq!(x.sub(x).to_bytes(), Fe::ZERO.to_bytes());
        prop_assert_eq!(x.mul(Fe::ONE).to_bytes(), x.to_bytes());
    }

    #[test]
    fn fe_inverse_identity(a in any::<[u8; 32]>()) {
        let x = Fe::from_bytes(&a);
        prop_assume!(!x.is_zero());
        prop_assert_eq!(x.mul(x.invert()).to_bytes(), Fe::ONE.to_bytes());
    }

    #[test]
    fn scalar_mul_add_is_associative_with_reduction(
        a in any::<[u8; 16]>(),
        b in any::<[u8; 16]>(),
    ) {
        // With small (definitely < L) scalars: (a*b + 0) computed via
        // mul_add matches u128 arithmetic reduced trivially.
        let mut a32 = [0u8; 32];
        a32[..16].copy_from_slice(&a);
        let mut b32 = [0u8; 32];
        b32[..16].copy_from_slice(&b);
        let zero = [0u8; 32];
        let via_mod = ed25519::mul_add(&a32, &b32, &zero);
        let ai = u128::from_le_bytes(a);
        let bi = u128::from_le_bytes(b);
        // a,b < 2^128 so a*b < 2^256; reduce through reduce_wide.
        let prod = {
            let lo = ai.wrapping_mul(bi);
            let hi = u128_mulhi(ai, bi);
            let mut bytes = [0u8; 64];
            bytes[..16].copy_from_slice(&lo.to_le_bytes());
            bytes[16..32].copy_from_slice(&hi.to_le_bytes());
            ed25519::reduce_wide(&bytes)
        };
        prop_assert_eq!(via_mod, prod);
    }
}

fn u128_mulhi(a: u128, b: u128) -> u128 {
    let (a_lo, a_hi) = (a & u128::from(u64::MAX), a >> 64);
    let (b_lo, b_hi) = (b & u128::from(u64::MAX), b >> 64);
    let mid1 = a_lo * b_hi;
    let mid2 = a_hi * b_lo;
    let carry = ((a_lo * b_lo) >> 64).wrapping_add(mid1 & u128::from(u64::MAX))
        + (mid2 & u128::from(u64::MAX));
    a_hi * b_hi + (mid1 >> 64) + (mid2 >> 64) + (carry >> 64)
}

// X25519 / Ed25519 cases are expensive; run fewer of them.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn x25519_dh_commutes(a in any::<[u8; 32]>(), b in any::<[u8; 32]>()) {
        let pa = x25519::public_key(&a);
        let pb = x25519::public_key(&b);
        prop_assert_eq!(x25519::shared_secret(&a, &pb), x25519::shared_secret(&b, &pa));
    }

    #[test]
    fn ed25519_sign_verify_any_message(
        seed in any::<[u8; 32]>(),
        msg in collection::vec(any::<u8>(), 0..512),
    ) {
        let sk = SigningKey::from_seed(seed);
        let sig = sk.sign(&msg);
        prop_assert!(sk.verifying_key().verify(&msg, &sig).is_ok());
        // Appending a byte invalidates it.
        let mut msg2 = msg.clone();
        msg2.push(0x7e);
        prop_assert!(sk.verifying_key().verify(&msg2, &sig).is_err());
    }

    #[test]
    fn secure_channel_in_order_stream(
        msgs in collection::vec(collection::vec(any::<u8>(), 0..256), 1..16),
        shared in any::<[u8; 32]>(),
    ) {
        let keys_c = derive_session_keys(&shared, &[1; 32], &[2; 32]);
        let keys_m = derive_session_keys(&shared, &[1; 32], &[2; 32]);
        let mut client = SecureChannel::new(keys_c, Role::Client);
        let mut monitor = SecureChannel::new(keys_m, Role::Monitor);
        for msg in &msgs {
            let rec = client.send(msg).unwrap();
            prop_assert_eq!(&monitor.recv(&rec).unwrap(), msg);
        }
        prop_assert_eq!(client.records_sent(), msgs.len() as u64);
    }
}
