//! Integration tests for kernel subsystems: swap-preserving reclaim, the
//! scheduler, housekeeping, and signals.

use erebor_core::boot::{BootConfig, Cvm};
use erebor_core::config::{ExecConfig, Mode};
use erebor_hw::VirtAddr;
use erebor_kernel::image::benign_kernel;
use erebor_kernel::syscall::nr;
use erebor_kernel::{Hw, Kernel, TaskState};

fn booted(mode: Mode) -> (Cvm, Kernel) {
    let cfg = BootConfig {
        cores: 2,
        dram_bytes: 48 * 1024 * 1024,
        config: ExecConfig::new(mode),
        seed: 21,
        paravisor: false,
    };
    let mut cvm = Cvm::boot_all(cfg, &benign_kernel(21)).expect("boot");
    let mut kernel = Kernel::new();
    {
        let mut hw = hw(&mut cvm);
        kernel.init(&mut hw).expect("init");
    }
    (cvm, kernel)
}

fn hw(cvm: &mut Cvm) -> Hw<'_> {
    Hw {
        machine: &mut cvm.machine,
        tdx: &mut cvm.tdx,
        monitor: &mut cvm.monitor,
        cpu: 0,
    }
}

#[test]
fn reclaim_swaps_out_and_faults_back_contents() {
    let (mut cvm, mut kernel) = booted(Mode::Full);
    let pid = kernel.spawn_native(&mut hw(&mut cvm)).expect("spawn");
    kernel.schedule(&mut hw(&mut cvm), pid).expect("sched");
    // A 32-page region with distinctive contents per page.
    let addr = kernel.handle_syscall(&mut hw(&mut cvm), pid, nr::MMAP, [0, 32 * 4096, 3, 0, 0, 0]);
    for i in 0..32u64 {
        kernel
            .write_user(
                &mut hw(&mut cvm),
                pid,
                VirtAddr(addr + i * 4096),
                &[i as u8 + 1; 16],
            )
            .expect("write");
    }
    let pf_before = kernel.stats.page_faults;
    // Reclaim half of it.
    let reclaimed = kernel.reclaim_pages(&mut hw(&mut cvm), 16);
    assert!(reclaimed > 0, "reclaim must evict from a large VMA");
    // Contents must survive the swap cycle.
    for i in 0..32u64 {
        let back = kernel
            .read_user(&mut hw(&mut cvm), pid, VirtAddr(addr + i * 4096), 16)
            .expect("read");
        assert_eq!(back, vec![i as u8 + 1; 16], "page {i} corrupted by reclaim");
    }
    assert!(kernel.stats.page_faults > pf_before, "swap-ins fault");
}

#[test]
fn reclaim_skips_small_vmas() {
    let (mut cvm, mut kernel) = booted(Mode::Full);
    let pid = kernel.spawn_native(&mut hw(&mut cvm)).expect("spawn");
    kernel.schedule(&mut hw(&mut cvm), pid).expect("sched");
    let addr = kernel.handle_syscall(&mut hw(&mut cvm), pid, nr::MMAP, [0, 8 * 4096, 3, 0, 0, 0]);
    for i in 0..8u64 {
        kernel
            .write_user(&mut hw(&mut cvm), pid, VirtAddr(addr + i * 4096), b"x")
            .expect("write");
    }
    assert_eq!(
        kernel.reclaim_pages(&mut hw(&mut cvm), 16),
        0,
        "8 pages < threshold"
    );
}

#[test]
fn scheduler_round_robin_rotates_ready_tasks() {
    let (mut cvm, mut kernel) = booted(Mode::Full);
    let a = kernel.spawn_native(&mut hw(&mut cvm)).expect("a");
    let b = kernel.spawn_native(&mut hw(&mut cvm)).expect("b");
    let c = kernel.spawn_native(&mut hw(&mut cvm)).expect("c");
    kernel.schedule(&mut hw(&mut cvm), a).expect("sched");
    let mut seen = std::collections::BTreeSet::new();
    for _ in 0..6 {
        if let Some(pid) = kernel.on_timer(&mut hw(&mut cvm)) {
            seen.insert(pid);
        }
    }
    assert!(
        seen.contains(&a) && seen.contains(&b) && seen.contains(&c),
        "{seen:?}"
    );
}

#[test]
fn blocked_and_zombie_tasks_are_skipped() {
    let (mut cvm, mut kernel) = booted(Mode::Full);
    let a = kernel.spawn_native(&mut hw(&mut cvm)).expect("a");
    let b = kernel.spawn_native(&mut hw(&mut cvm)).expect("b");
    kernel.schedule(&mut hw(&mut cvm), a).expect("sched");
    // Block b (futex wait) and exit nothing; scheduler must stick to a.
    kernel.handle_syscall(&mut hw(&mut cvm), b, nr::FUTEX, [0x1000, 0, 0, 0, 0, 0]);
    assert_eq!(kernel.task(b).unwrap().state, TaskState::Blocked);
    for _ in 0..4 {
        let next = kernel.on_timer(&mut hw(&mut cvm)).expect("next");
        assert_eq!(next, a, "blocked task must not be scheduled");
    }
    // Exit a: nothing runnable remains.
    kernel.handle_syscall(&mut hw(&mut cvm), a, nr::EXIT, [0; 6]);
    assert_eq!(kernel.task(a).unwrap().state, TaskState::Zombie);
}

#[test]
fn housekeeping_generates_emc_traffic_under_monitor() {
    let (mut cvm, mut kernel) = booted(Mode::Full);
    let a = kernel.spawn_native(&mut hw(&mut cvm)).expect("a");
    kernel.schedule(&mut hw(&mut cvm), a).expect("sched");
    let before = cvm.monitor.stats.emc_calls;
    for _ in 0..10 {
        kernel.on_timer(&mut hw(&mut cvm));
    }
    let per_tick = (cvm.monitor.stats.emc_calls - before) / 10;
    // 34 map/unmap pairs + 2 MSR writes ≈ 70 EMC/tick (the Table 6
    // system-wide EMC rate at 1 kHz).
    assert!((60..90).contains(&per_tick), "EMC/tick = {per_tick}");
}

#[test]
fn housekeeping_is_cheap_natively() {
    let (mut cvm, mut kernel) = booted(Mode::Native);
    let a = kernel.spawn_native(&mut hw(&mut cvm)).expect("a");
    kernel.schedule(&mut hw(&mut cvm), a).expect("sched");
    let before = cvm.machine.cycles.total();
    for _ in 0..10 {
        kernel.on_timer(&mut hw(&mut cvm));
    }
    let per_tick = (cvm.machine.cycles.total() - before) / 10;
    assert!(per_tick < 15_000, "native housekeeping {per_tick} cyc/tick");
    assert_eq!(cvm.monitor.stats.emc_calls, 0);
}

#[test]
fn exit_reaps_current() {
    let (mut cvm, mut kernel) = booted(Mode::Full);
    let a = kernel.spawn_native(&mut hw(&mut cvm)).expect("a");
    kernel.schedule(&mut hw(&mut cvm), a).expect("sched");
    assert_eq!(kernel.current(), Some(a));
    kernel.handle_syscall(&mut hw(&mut cvm), a, nr::EXIT, [7, 0, 0, 0, 0, 0]);
    assert_eq!(kernel.current(), None);
    assert_eq!(kernel.task(a).unwrap().exit_status, Some(7));
}

#[test]
fn mmap_fixed_hint_placement_and_overlap_rejection() {
    let (mut cvm, mut kernel) = booted(Mode::Full);
    let pid = kernel.spawn_native(&mut hw(&mut cvm)).expect("spawn");
    kernel.schedule(&mut hw(&mut cvm), pid).expect("sched");
    let hint = 0x7a00_0000_0000u64;
    let a = kernel.handle_syscall(&mut hw(&mut cvm), pid, nr::MMAP, [hint, 8192, 3, 0, 0, 0]);
    assert_eq!(a, hint, "fixed placement honoured");
    // Overlapping hint refused.
    let e = kernel.handle_syscall(
        &mut hw(&mut cvm),
        pid,
        nr::MMAP,
        [hint + 4096, 4096, 3, 0, 0, 0],
    );
    assert_eq!(e as i64, -22, "overlap → EINVAL");
    // Unaligned or kernel-half hints refused.
    for bad in [hint + 5, 0xffff_8000_0000_0000u64] {
        let e = kernel.handle_syscall(&mut hw(&mut cvm), pid, nr::MMAP, [bad, 4096, 3, 0, 0, 0]);
        assert_eq!(e as i64, -22, "{bad:#x}");
    }
    // After munmap, the same hint is reusable (page tables recycled).
    kernel.handle_syscall(&mut hw(&mut cvm), pid, nr::MUNMAP, [hint, 8192, 0, 0, 0, 0]);
    let b = kernel.handle_syscall(&mut hw(&mut cvm), pid, nr::MMAP, [hint, 4096, 3, 0, 0, 0]);
    assert_eq!(b, hint);
}
