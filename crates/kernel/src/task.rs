//! Tasks: process control blocks, VMAs and file descriptor tables.

use crate::vfs::FileDesc;
use erebor_core::sandbox::SandboxId;
use erebor_hw::regs::GprContext;
use erebor_hw::{Frame, VirtAddr};
use std::collections::BTreeMap;

/// Process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u32);

/// What kind of task this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// An ordinary (non-sandboxed) process — proxies, servers, tooling.
    Native,
    /// The userspace host of an EREBOR-SANDBOX container.
    Sandbox(SandboxId),
}

/// Scheduler state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Runnable.
    Ready,
    /// Currently on a CPU.
    Running,
    /// Waiting (futex, sleep).
    Blocked,
    /// Exited; awaiting reap.
    Zombie,
}

/// A virtual memory area.
#[derive(Debug, Clone)]
pub struct Vma {
    /// Inclusive start (page aligned).
    pub start: VirtAddr,
    /// Exclusive end (page aligned).
    pub end: VirtAddr,
    /// Writable.
    pub writable: bool,
    /// Executable.
    pub executable: bool,
    /// Pages actually materialized (demand paging).
    pub mapped: Vec<VirtAddr>,
}

impl Vma {
    /// Whether `va` falls inside the area.
    #[must_use]
    pub fn contains(&self, va: VirtAddr) -> bool {
        va.0 >= self.start.0 && va.0 < self.end.0
    }

    /// Size in pages.
    #[must_use]
    pub fn pages(&self) -> u64 {
        (self.end.0 - self.start.0) / erebor_hw::PAGE_SIZE as u64
    }
}

/// A process control block.
#[derive(Debug)]
pub struct Task {
    /// Identifier.
    pub pid: Pid,
    /// Kind (native vs sandbox host).
    pub kind: TaskKind,
    /// Address-space root.
    pub root: Frame,
    /// Scheduler state.
    pub state: TaskState,
    /// Saved user context.
    pub ctx: GprContext,
    /// Open file descriptors.
    pub fds: BTreeMap<u64, FileDesc>,
    /// Program-break top (heap).
    pub brk: VirtAddr,
    /// Memory areas.
    pub vmas: Vec<Vma>,
    /// Registered signal handlers (sig → user handler address).
    pub sig_handlers: BTreeMap<u64, VirtAddr>,
    /// Pending signals.
    pub pending_signals: Vec<u64>,
    /// Exit status if zombie.
    pub exit_status: Option<i64>,
    /// Next free mmap address (simple bump).
    pub mmap_cursor: VirtAddr,
}

impl Task {
    /// A fresh task with the conventional layout.
    #[must_use]
    pub fn new(pid: Pid, kind: TaskKind, root: Frame) -> Task {
        let mut fds = BTreeMap::new();
        fds.insert(0, FileDesc::Stdin);
        fds.insert(1, FileDesc::Stdout);
        fds.insert(2, FileDesc::Stdout);
        Task {
            pid,
            kind,
            root,
            state: TaskState::Ready,
            ctx: GprContext::default(),
            fds,
            brk: VirtAddr(0x0000_1000_0000),
            vmas: vec![Vma {
                start: VirtAddr(0x0000_1000_0000),
                end: VirtAddr(0x0000_1000_0000),
                writable: true,
                executable: false,
                mapped: Vec::new(),
            }],
            sig_handlers: BTreeMap::new(),
            pending_signals: Vec::new(),
            exit_status: None,
            mmap_cursor: VirtAddr(0x0000_2000_0000),
        }
    }

    /// The VMA containing `va`, if any.
    #[must_use]
    pub fn vma_for(&self, va: VirtAddr) -> Option<&Vma> {
        self.vmas.iter().find(|v| v.contains(va))
    }

    /// Mutable VMA lookup.
    pub fn vma_for_mut(&mut self, va: VirtAddr) -> Option<&mut Vma> {
        self.vmas.iter_mut().find(|v| v.contains(va))
    }

    /// Allocate the next free fd number.
    #[must_use]
    pub fn next_fd(&self) -> u64 {
        // `(3..)` is unbounded and `fds` is finite, so `find` always
        // yields; the fallback is unreachable.
        (3..)
            .find(|fd| !self.fds.contains_key(fd))
            .unwrap_or(u64::MAX)
    }

    /// The sandbox this task hosts, if any.
    #[must_use]
    pub fn sandbox(&self) -> Option<SandboxId> {
        match self.kind {
            TaskKind::Sandbox(id) => Some(id),
            TaskKind::Native => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_task_layout() {
        let t = Task::new(Pid(1), TaskKind::Native, Frame(10));
        assert_eq!(t.state, TaskState::Ready);
        assert!(t.fds.contains_key(&0) && t.fds.contains_key(&1) && t.fds.contains_key(&2));
        assert_eq!(t.next_fd(), 3);
        assert!(t.sandbox().is_none());
    }

    #[test]
    fn vma_lookup() {
        let mut t = Task::new(Pid(1), TaskKind::Native, Frame(10));
        t.vmas.push(Vma {
            start: VirtAddr(0x2000_0000),
            end: VirtAddr(0x2000_4000),
            writable: true,
            executable: false,
            mapped: Vec::new(),
        });
        assert!(t.vma_for(VirtAddr(0x2000_1234)).is_some());
        assert!(t.vma_for(VirtAddr(0x3000_0000)).is_none());
        assert_eq!(t.vma_for(VirtAddr(0x2000_0000)).unwrap().pages(), 4);
    }
}
