//! Tasks: process control blocks, VMAs and file descriptor tables.

use crate::vfs::FileDesc;
use erebor_core::sandbox::SandboxId;
use erebor_hw::regs::GprContext;
use erebor_hw::{Frame, VirtAddr};
use erebor_wire::{WireError, WireReader, WireWriter};
use std::collections::BTreeMap;

/// Process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u32);

/// What kind of task this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// An ordinary (non-sandboxed) process — proxies, servers, tooling.
    Native,
    /// The userspace host of an EREBOR-SANDBOX container.
    Sandbox(SandboxId),
}

/// Scheduler state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Runnable.
    Ready,
    /// Currently on a CPU.
    Running,
    /// Waiting (futex, sleep).
    Blocked,
    /// Exited; awaiting reap.
    Zombie,
}

/// A virtual memory area.
#[derive(Debug, Clone)]
pub struct Vma {
    /// Inclusive start (page aligned).
    pub start: VirtAddr,
    /// Exclusive end (page aligned).
    pub end: VirtAddr,
    /// Writable.
    pub writable: bool,
    /// Executable.
    pub executable: bool,
    /// Pages actually materialized (demand paging).
    pub mapped: Vec<VirtAddr>,
}

impl Vma {
    /// Whether `va` falls inside the area.
    #[must_use]
    pub fn contains(&self, va: VirtAddr) -> bool {
        va.0 >= self.start.0 && va.0 < self.end.0
    }

    /// Size in pages.
    #[must_use]
    pub fn pages(&self) -> u64 {
        (self.end.0 - self.start.0) / erebor_hw::PAGE_SIZE as u64
    }
}

/// A process control block.
#[derive(Debug)]
pub struct Task {
    /// Identifier.
    pub pid: Pid,
    /// Kind (native vs sandbox host).
    pub kind: TaskKind,
    /// Address-space root.
    pub root: Frame,
    /// Scheduler state.
    pub state: TaskState,
    /// Saved user context.
    pub ctx: GprContext,
    /// Open file descriptors.
    pub fds: BTreeMap<u64, FileDesc>,
    /// Program-break top (heap).
    pub brk: VirtAddr,
    /// Memory areas.
    pub vmas: Vec<Vma>,
    /// Registered signal handlers (sig → user handler address).
    pub sig_handlers: BTreeMap<u64, VirtAddr>,
    /// Pending signals.
    pub pending_signals: Vec<u64>,
    /// Exit status if zombie.
    pub exit_status: Option<i64>,
    /// Next free mmap address (simple bump).
    pub mmap_cursor: VirtAddr,
}

impl Task {
    /// A fresh task with the conventional layout.
    #[must_use]
    pub fn new(pid: Pid, kind: TaskKind, root: Frame) -> Task {
        let mut fds = BTreeMap::new();
        fds.insert(0, FileDesc::Stdin);
        fds.insert(1, FileDesc::Stdout);
        fds.insert(2, FileDesc::Stdout);
        Task {
            pid,
            kind,
            root,
            state: TaskState::Ready,
            ctx: GprContext::default(),
            fds,
            brk: VirtAddr(0x0000_1000_0000),
            vmas: vec![Vma {
                start: VirtAddr(0x0000_1000_0000),
                end: VirtAddr(0x0000_1000_0000),
                writable: true,
                executable: false,
                mapped: Vec::new(),
            }],
            sig_handlers: BTreeMap::new(),
            pending_signals: Vec::new(),
            exit_status: None,
            mmap_cursor: VirtAddr(0x0000_2000_0000),
        }
    }

    /// The VMA containing `va`, if any.
    #[must_use]
    pub fn vma_for(&self, va: VirtAddr) -> Option<&Vma> {
        self.vmas.iter().find(|v| v.contains(va))
    }

    /// Mutable VMA lookup.
    pub fn vma_for_mut(&mut self, va: VirtAddr) -> Option<&mut Vma> {
        self.vmas.iter_mut().find(|v| v.contains(va))
    }

    /// Allocate the next free fd number.
    #[must_use]
    pub fn next_fd(&self) -> u64 {
        // `(3..)` is unbounded and `fds` is finite, so `find` always
        // yields; the fallback is unreachable.
        (3..)
            .find(|fd| !self.fds.contains_key(fd))
            .unwrap_or(u64::MAX)
    }

    /// The sandbox this task hosts, if any.
    #[must_use]
    pub fn sandbox(&self) -> Option<SandboxId> {
        match self.kind {
            TaskKind::Sandbox(id) => Some(id),
            TaskKind::Native => None,
        }
    }

    /// Serialise the task for migration: identity, scheduler state, the
    /// saved user context, fd table, VMAs, and signal machinery.
    #[must_use]
    pub fn export_state(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u32(self.pid.0);
        match self.kind {
            TaskKind::Native => w.u8(0),
            TaskKind::Sandbox(id) => {
                w.u8(1);
                w.u32(id.0);
            }
        }
        w.u64(self.root.0);
        w.u8(match self.state {
            TaskState::Ready => 0,
            TaskState::Running => 1,
            TaskState::Blocked => 2,
            TaskState::Zombie => 3,
        });
        for g in self.ctx.gpr {
            w.u64(g);
        }
        w.u64(self.ctx.rip);
        w.u64(self.ctx.rflags);
        w.seq(self.fds.len());
        for (fd, desc) in &self.fds {
            w.u64(*fd);
            desc.export_to(&mut w);
        }
        w.u64(self.brk.0);
        w.seq(self.vmas.len());
        for vma in &self.vmas {
            w.u64(vma.start.0);
            w.u64(vma.end.0);
            w.bool(vma.writable);
            w.bool(vma.executable);
            w.seq(vma.mapped.len());
            for p in &vma.mapped {
                w.u64(p.0);
            }
        }
        w.seq(self.sig_handlers.len());
        for (sig, handler) in &self.sig_handlers {
            w.u64(*sig);
            w.u64(handler.0);
        }
        w.seq(self.pending_signals.len());
        for sig in &self.pending_signals {
            w.u64(*sig);
        }
        match self.exit_status {
            None => w.bool(false),
            Some(s) => {
                w.bool(true);
                w.i64(s);
            }
        }
        w.u64(self.mmap_cursor.0);
        w.finish()
    }

    /// Rebuild a task from [`Task::export_state`] bytes.
    ///
    /// # Errors
    /// [`WireError`] on any malformed field.
    pub fn import_state(bytes: &[u8]) -> Result<Task, WireError> {
        let mut r = WireReader::new(bytes);
        let pid = Pid(r.u32()?);
        let kind = match r.u8()? {
            0 => TaskKind::Native,
            1 => TaskKind::Sandbox(SandboxId(r.u32()?)),
            t => {
                return Err(WireError::BadTag {
                    what: "TaskKind",
                    tag: u64::from(t),
                })
            }
        };
        let root = Frame(r.u64()?);
        let state = match r.u8()? {
            0 => TaskState::Ready,
            1 => TaskState::Running,
            2 => TaskState::Blocked,
            3 => TaskState::Zombie,
            t => {
                return Err(WireError::BadTag {
                    what: "TaskState",
                    tag: u64::from(t),
                })
            }
        };
        let mut gpr = [0u64; 16];
        for g in &mut gpr {
            *g = r.u64()?;
        }
        let rip = r.u64()?;
        let rflags = r.u64()?;
        let ctx = GprContext { gpr, rip, rflags };
        let n = r.seq(9)?;
        let mut fds = BTreeMap::new();
        for _ in 0..n {
            let fd = r.u64()?;
            let desc = FileDesc::import_from(&mut r)?;
            if fds.insert(fd, desc).is_some() {
                return Err(WireError::BadValue {
                    what: "duplicate fd",
                });
            }
        }
        let brk = VirtAddr(r.u64()?);
        let n = r.seq(26)?;
        let mut vmas = Vec::with_capacity(n);
        for _ in 0..n {
            let start = VirtAddr(r.u64()?);
            let end = VirtAddr(r.u64()?);
            let writable = r.bool()?;
            let executable = r.bool()?;
            let m = r.seq(8)?;
            let mut mapped = Vec::with_capacity(m);
            for _ in 0..m {
                mapped.push(VirtAddr(r.u64()?));
            }
            vmas.push(Vma {
                start,
                end,
                writable,
                executable,
                mapped,
            });
        }
        let n = r.seq(16)?;
        let mut sig_handlers = BTreeMap::new();
        for _ in 0..n {
            let sig = r.u64()?;
            let handler = VirtAddr(r.u64()?);
            sig_handlers.insert(sig, handler);
        }
        let n = r.seq(8)?;
        let mut pending_signals = Vec::with_capacity(n);
        for _ in 0..n {
            pending_signals.push(r.u64()?);
        }
        let exit_status = if r.bool()? { Some(r.i64()?) } else { None };
        let mmap_cursor = VirtAddr(r.u64()?);
        r.finish()?;
        Ok(Task {
            pid,
            kind,
            root,
            state,
            ctx,
            fds,
            brk,
            vmas,
            sig_handlers,
            pending_signals,
            exit_status,
            mmap_cursor,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_task_layout() {
        let t = Task::new(Pid(1), TaskKind::Native, Frame(10));
        assert_eq!(t.state, TaskState::Ready);
        assert!(t.fds.contains_key(&0) && t.fds.contains_key(&1) && t.fds.contains_key(&2));
        assert_eq!(t.next_fd(), 3);
        assert!(t.sandbox().is_none());
    }

    #[test]
    fn vma_lookup() {
        let mut t = Task::new(Pid(1), TaskKind::Native, Frame(10));
        t.vmas.push(Vma {
            start: VirtAddr(0x2000_0000),
            end: VirtAddr(0x2000_4000),
            writable: true,
            executable: false,
            mapped: Vec::new(),
        });
        assert!(t.vma_for(VirtAddr(0x2000_1234)).is_some());
        assert!(t.vma_for(VirtAddr(0x3000_0000)).is_none());
        assert_eq!(t.vma_for(VirtAddr(0x2000_0000)).map(Vma::pages), Some(4));
    }

    #[test]
    fn state_roundtrips_byte_exact() -> Result<(), WireError> {
        let mut t = Task::new(Pid(4), TaskKind::Sandbox(SandboxId(2)), Frame(99));
        t.state = TaskState::Blocked;
        t.ctx.gpr[0] = 0xdead;
        t.ctx.rip = 0x40_1000;
        t.fds.insert(5, FileDesc::File {
            path: "/tmp/x".to_string(),
            offset: 12,
        });
        t.vmas[0].mapped.push(VirtAddr(0x1000_0000));
        t.sig_handlers.insert(10, VirtAddr(0x40_2000));
        t.pending_signals.push(10);
        t.exit_status = Some(-3);
        let bytes = t.export_state();
        let back = Task::import_state(&bytes)?;
        assert_eq!(back.export_state(), bytes);
        assert_eq!(back.sandbox(), Some(SandboxId(2)));
        assert_eq!(back.state, TaskState::Blocked);
        for cut in 0..bytes.len() {
            assert!(Task::import_state(&bytes[..cut]).is_err());
        }
        Ok(())
    }
}
