//! An in-memory virtual filesystem, including the devices the Erebor
//! artifact exposes: `/dev/erebor` (the EMC driver used by the LibOS) and
//! the DebugFS-emulated I/O channel
//! (`/sys/kernel/debug/encos-IO-emulate/{in,out}`) used in the paper's
//! artifact evaluation (§A.4).

use crate::syscall::Errno;
use erebor_wire::{WireError, WireReader, WireWriter};
use std::collections::BTreeMap;

/// Path of the Erebor pseudo-device.
pub const EREBOR_DEV: &str = "/dev/erebor-psudeo-io-dev";
/// DebugFS emulated input channel (artifact parity).
pub const DEBUG_IN: &str = "/sys/kernel/debug/encos-IO-emulate/in";
/// DebugFS emulated output channel (artifact parity).
pub const DEBUG_OUT: &str = "/sys/kernel/debug/encos-IO-emulate/out";

/// A file descriptor's backing object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileDesc {
    /// Standard input (reads empty).
    Stdin,
    /// Standard output (captured per task).
    Stdout,
    /// A regular in-memory file with a cursor.
    File {
        /// Path.
        path: String,
        /// Read/write offset.
        offset: u64,
    },
    /// The `/dev/erebor` EMC driver.
    EreborDev,
    /// DebugFS emulated input channel.
    DebugIn,
    /// DebugFS emulated output channel.
    DebugOut,
}

impl FileDesc {
    /// Append the descriptor to a wire stream (migration).
    pub fn export_to(&self, w: &mut WireWriter) {
        match self {
            FileDesc::Stdin => w.u8(0),
            FileDesc::Stdout => w.u8(1),
            FileDesc::File { path, offset } => {
                w.u8(2);
                w.str(path);
                w.u64(*offset);
            }
            FileDesc::EreborDev => w.u8(3),
            FileDesc::DebugIn => w.u8(4),
            FileDesc::DebugOut => w.u8(5),
        }
    }

    /// Decode one descriptor from a wire stream.
    ///
    /// # Errors
    /// [`WireError`] on truncation or unknown tags.
    pub fn import_from(r: &mut WireReader<'_>) -> Result<FileDesc, WireError> {
        Ok(match r.u8()? {
            0 => FileDesc::Stdin,
            1 => FileDesc::Stdout,
            2 => FileDesc::File {
                path: r.str()?.to_string(),
                offset: r.u64()?,
            },
            3 => FileDesc::EreborDev,
            4 => FileDesc::DebugIn,
            5 => FileDesc::DebugOut,
            t => {
                return Err(WireError::BadTag {
                    what: "FileDesc",
                    tag: u64::from(t),
                })
            }
        })
    }
}

/// The filesystem: path → contents, plus the debug channel buffers.
#[derive(Debug, Default)]
pub struct Vfs {
    files: BTreeMap<String, Vec<u8>>,
    /// Bytes queued on the emulated input channel.
    pub debug_in: Vec<u8>,
    /// Bytes written to the emulated output channel.
    pub debug_out: Vec<u8>,
}

impl Vfs {
    /// An empty filesystem.
    #[must_use]
    pub fn new() -> Vfs {
        Vfs::default()
    }

    /// Create or replace a file.
    pub fn put(&mut self, path: &str, contents: Vec<u8>) {
        self.files.insert(path.to_string(), contents);
    }

    /// Read a whole file.
    #[must_use]
    pub fn get(&self, path: &str) -> Option<&Vec<u8>> {
        self.files.get(path)
    }

    /// Open: classify the path into a descriptor.
    ///
    /// # Errors
    /// [`Errno::Enoent`] for unknown regular paths.
    pub fn open(&mut self, path: &str, create: bool) -> Result<FileDesc, Errno> {
        match path {
            EREBOR_DEV => Ok(FileDesc::EreborDev),
            DEBUG_IN => Ok(FileDesc::DebugIn),
            DEBUG_OUT => Ok(FileDesc::DebugOut),
            _ => {
                if !self.files.contains_key(path) {
                    if create {
                        self.files.insert(path.to_string(), Vec::new());
                    } else {
                        return Err(Errno::Enoent);
                    }
                }
                Ok(FileDesc::File {
                    path: path.to_string(),
                    offset: 0,
                })
            }
        }
    }

    /// Read from a descriptor into `buf`; returns bytes read and advances
    /// file cursors.
    ///
    /// # Errors
    /// [`Errno::Ebadf`] for write-only descriptors.
    pub fn read(&mut self, fd: &mut FileDesc, buf: &mut [u8]) -> Result<usize, Errno> {
        match fd {
            FileDesc::Stdin => Ok(0),
            FileDesc::Stdout => Err(Errno::Ebadf),
            FileDesc::File { path, offset } => {
                let data = self.files.get(path.as_str()).ok_or(Errno::Enoent)?;
                let start = (*offset as usize).min(data.len());
                let n = buf.len().min(data.len() - start);
                buf[..n].copy_from_slice(&data[start..start + n]);
                *offset += n as u64;
                Ok(n)
            }
            FileDesc::DebugIn => {
                let n = buf.len().min(self.debug_in.len());
                buf[..n].copy_from_slice(&self.debug_in[..n]);
                self.debug_in.drain(..n);
                Ok(n)
            }
            FileDesc::DebugOut => {
                let n = buf.len().min(self.debug_out.len());
                buf[..n].copy_from_slice(&self.debug_out[..n]);
                Ok(n)
            }
            FileDesc::EreborDev => Err(Errno::Einval),
        }
    }

    /// Write `buf` through a descriptor; returns bytes written.
    ///
    /// # Errors
    /// [`Errno::Ebadf`] for read-only descriptors.
    pub fn write(&mut self, fd: &mut FileDesc, buf: &[u8]) -> Result<usize, Errno> {
        match fd {
            FileDesc::Stdin => Err(Errno::Ebadf),
            FileDesc::Stdout => Ok(buf.len()),
            FileDesc::File { path, offset } => {
                let data = self.files.entry(path.clone()).or_default();
                let start = *offset as usize;
                if data.len() < start + buf.len() {
                    data.resize(start + buf.len(), 0);
                }
                data[start..start + buf.len()].copy_from_slice(buf);
                *offset += buf.len() as u64;
                Ok(buf.len())
            }
            FileDesc::DebugIn => {
                self.debug_in.extend_from_slice(buf);
                Ok(buf.len())
            }
            FileDesc::DebugOut => {
                self.debug_out.extend_from_slice(buf);
                Ok(buf.len())
            }
            FileDesc::EreborDev => Err(Errno::Einval),
        }
    }

    /// Serialise the filesystem for migration: every regular file plus
    /// both debug channel buffers.
    #[must_use]
    pub fn export_state(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.seq(self.files.len());
        for (path, contents) in &self.files {
            w.str(path);
            w.bytes(contents);
        }
        w.bytes(&self.debug_in);
        w.bytes(&self.debug_out);
        w.finish()
    }

    /// Rebuild a filesystem from [`Vfs::export_state`] bytes.
    ///
    /// # Errors
    /// [`WireError`] on truncation, duplicate paths, or trailing bytes.
    pub fn import_state(bytes: &[u8]) -> Result<Vfs, WireError> {
        let mut r = WireReader::new(bytes);
        let n = r.seq(16)?;
        let mut files = BTreeMap::new();
        for _ in 0..n {
            let path = r.str()?.to_string();
            let contents = r.bytes()?.to_vec();
            if files.insert(path, contents).is_some() {
                return Err(WireError::BadValue {
                    what: "duplicate vfs path",
                });
            }
        }
        let debug_in = r.bytes()?.to_vec();
        let debug_out = r.bytes()?.to_vec();
        r.finish()?;
        Ok(Vfs {
            files,
            debug_in,
            debug_out,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_read_write_roundtrip() -> Result<(), Errno> {
        let mut vfs = Vfs::new();
        let mut fd = vfs.open("/tmp/x", true)?;
        vfs.write(&mut fd, b"hello world")?;
        let mut rd = vfs.open("/tmp/x", false)?;
        let mut buf = [0u8; 5];
        assert_eq!(vfs.read(&mut rd, &mut buf)?, 5);
        assert_eq!(&buf, b"hello");
        assert_eq!(vfs.read(&mut rd, &mut buf)?, 5);
        assert_eq!(&buf, b" worl");
        Ok(())
    }

    #[test]
    fn missing_file_enoent() {
        let mut vfs = Vfs::new();
        assert_eq!(vfs.open("/nope", false), Err(Errno::Enoent));
    }

    #[test]
    fn device_paths_classified() -> Result<(), Errno> {
        let mut vfs = Vfs::new();
        assert_eq!(vfs.open(EREBOR_DEV, false)?, FileDesc::EreborDev);
        assert_eq!(vfs.open(DEBUG_IN, false)?, FileDesc::DebugIn);
        assert_eq!(vfs.open(DEBUG_OUT, false)?, FileDesc::DebugOut);
        Ok(())
    }

    #[test]
    fn debug_channels_fifo() -> Result<(), Errno> {
        let mut vfs = Vfs::new();
        let mut din = vfs.open(DEBUG_IN, false)?;
        vfs.write(&mut din, b"prompt")?;
        let mut buf = [0u8; 3];
        assert_eq!(vfs.read(&mut din, &mut buf)?, 3);
        assert_eq!(&buf, b"pro");
        assert_eq!(vfs.read(&mut din, &mut buf)?, 3);
        assert_eq!(&buf, b"mpt");
        assert_eq!(vfs.read(&mut din, &mut buf)?, 0);
        Ok(())
    }

    #[test]
    fn sparse_write_extends() -> Result<(), Errno> {
        let mut vfs = Vfs::new();
        let mut fd = vfs.open("/f", true)?;
        if let FileDesc::File { offset, .. } = &mut fd {
            *offset = 10;
        }
        vfs.write(&mut fd, b"xy")?;
        assert_eq!(vfs.get("/f").ok_or(Errno::Enoent)?.len(), 12);
        Ok(())
    }

    #[test]
    fn state_roundtrips_byte_exact() -> Result<(), Box<dyn std::error::Error>> {
        let mut vfs = Vfs::new();
        vfs.put("/data/model.bin", vec![7; 300]);
        vfs.put("/tmp/out", b"partial".to_vec());
        vfs.debug_in.extend_from_slice(b"queued input");
        vfs.debug_out.extend_from_slice(b"emitted");
        let bytes = vfs.export_state();
        let back = Vfs::import_state(&bytes)?;
        assert_eq!(back.export_state(), bytes);
        assert_eq!(back.get("/data/model.bin").map(Vec::len), Some(300));
        assert_eq!(back.debug_in, b"queued input");
        // Truncation never yields a partial filesystem.
        for cut in 0..bytes.len() {
            assert!(Vfs::import_state(&bytes[..cut]).is_err());
        }
        Ok(())
    }
}
