//! An in-memory virtual filesystem, including the devices the Erebor
//! artifact exposes: `/dev/erebor` (the EMC driver used by the LibOS) and
//! the DebugFS-emulated I/O channel
//! (`/sys/kernel/debug/encos-IO-emulate/{in,out}`) used in the paper's
//! artifact evaluation (§A.4).

use crate::syscall::Errno;
use std::collections::BTreeMap;

/// Path of the Erebor pseudo-device.
pub const EREBOR_DEV: &str = "/dev/erebor-psudeo-io-dev";
/// DebugFS emulated input channel (artifact parity).
pub const DEBUG_IN: &str = "/sys/kernel/debug/encos-IO-emulate/in";
/// DebugFS emulated output channel (artifact parity).
pub const DEBUG_OUT: &str = "/sys/kernel/debug/encos-IO-emulate/out";

/// A file descriptor's backing object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileDesc {
    /// Standard input (reads empty).
    Stdin,
    /// Standard output (captured per task).
    Stdout,
    /// A regular in-memory file with a cursor.
    File {
        /// Path.
        path: String,
        /// Read/write offset.
        offset: u64,
    },
    /// The `/dev/erebor` EMC driver.
    EreborDev,
    /// DebugFS emulated input channel.
    DebugIn,
    /// DebugFS emulated output channel.
    DebugOut,
}

/// The filesystem: path → contents, plus the debug channel buffers.
#[derive(Debug, Default)]
pub struct Vfs {
    files: BTreeMap<String, Vec<u8>>,
    /// Bytes queued on the emulated input channel.
    pub debug_in: Vec<u8>,
    /// Bytes written to the emulated output channel.
    pub debug_out: Vec<u8>,
}

impl Vfs {
    /// An empty filesystem.
    #[must_use]
    pub fn new() -> Vfs {
        Vfs::default()
    }

    /// Create or replace a file.
    pub fn put(&mut self, path: &str, contents: Vec<u8>) {
        self.files.insert(path.to_string(), contents);
    }

    /// Read a whole file.
    #[must_use]
    pub fn get(&self, path: &str) -> Option<&Vec<u8>> {
        self.files.get(path)
    }

    /// Open: classify the path into a descriptor.
    ///
    /// # Errors
    /// [`Errno::Enoent`] for unknown regular paths.
    pub fn open(&mut self, path: &str, create: bool) -> Result<FileDesc, Errno> {
        match path {
            EREBOR_DEV => Ok(FileDesc::EreborDev),
            DEBUG_IN => Ok(FileDesc::DebugIn),
            DEBUG_OUT => Ok(FileDesc::DebugOut),
            _ => {
                if !self.files.contains_key(path) {
                    if create {
                        self.files.insert(path.to_string(), Vec::new());
                    } else {
                        return Err(Errno::Enoent);
                    }
                }
                Ok(FileDesc::File {
                    path: path.to_string(),
                    offset: 0,
                })
            }
        }
    }

    /// Read from a descriptor into `buf`; returns bytes read and advances
    /// file cursors.
    ///
    /// # Errors
    /// [`Errno::Ebadf`] for write-only descriptors.
    pub fn read(&mut self, fd: &mut FileDesc, buf: &mut [u8]) -> Result<usize, Errno> {
        match fd {
            FileDesc::Stdin => Ok(0),
            FileDesc::Stdout => Err(Errno::Ebadf),
            FileDesc::File { path, offset } => {
                let data = self.files.get(path.as_str()).ok_or(Errno::Enoent)?;
                let start = (*offset as usize).min(data.len());
                let n = buf.len().min(data.len() - start);
                buf[..n].copy_from_slice(&data[start..start + n]);
                *offset += n as u64;
                Ok(n)
            }
            FileDesc::DebugIn => {
                let n = buf.len().min(self.debug_in.len());
                buf[..n].copy_from_slice(&self.debug_in[..n]);
                self.debug_in.drain(..n);
                Ok(n)
            }
            FileDesc::DebugOut => {
                let n = buf.len().min(self.debug_out.len());
                buf[..n].copy_from_slice(&self.debug_out[..n]);
                Ok(n)
            }
            FileDesc::EreborDev => Err(Errno::Einval),
        }
    }

    /// Write `buf` through a descriptor; returns bytes written.
    ///
    /// # Errors
    /// [`Errno::Ebadf`] for read-only descriptors.
    pub fn write(&mut self, fd: &mut FileDesc, buf: &[u8]) -> Result<usize, Errno> {
        match fd {
            FileDesc::Stdin => Err(Errno::Ebadf),
            FileDesc::Stdout => Ok(buf.len()),
            FileDesc::File { path, offset } => {
                let data = self.files.entry(path.clone()).or_default();
                let start = *offset as usize;
                if data.len() < start + buf.len() {
                    data.resize(start + buf.len(), 0);
                }
                data[start..start + buf.len()].copy_from_slice(buf);
                *offset += buf.len() as u64;
                Ok(buf.len())
            }
            FileDesc::DebugIn => {
                self.debug_in.extend_from_slice(buf);
                Ok(buf.len())
            }
            FileDesc::DebugOut => {
                self.debug_out.extend_from_slice(buf);
                Ok(buf.len())
            }
            FileDesc::EreborDev => Err(Errno::Einval),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_read_write_roundtrip() {
        let mut vfs = Vfs::new();
        let mut fd = vfs.open("/tmp/x", true).unwrap();
        vfs.write(&mut fd, b"hello world").unwrap();
        let mut rd = vfs.open("/tmp/x", false).unwrap();
        let mut buf = [0u8; 5];
        assert_eq!(vfs.read(&mut rd, &mut buf).unwrap(), 5);
        assert_eq!(&buf, b"hello");
        assert_eq!(vfs.read(&mut rd, &mut buf).unwrap(), 5);
        assert_eq!(&buf, b" worl");
    }

    #[test]
    fn missing_file_enoent() {
        let mut vfs = Vfs::new();
        assert_eq!(vfs.open("/nope", false), Err(Errno::Enoent));
    }

    #[test]
    fn device_paths_classified() {
        let mut vfs = Vfs::new();
        assert_eq!(vfs.open(EREBOR_DEV, false).unwrap(), FileDesc::EreborDev);
        assert_eq!(vfs.open(DEBUG_IN, false).unwrap(), FileDesc::DebugIn);
        assert_eq!(vfs.open(DEBUG_OUT, false).unwrap(), FileDesc::DebugOut);
    }

    #[test]
    fn debug_channels_fifo() {
        let mut vfs = Vfs::new();
        let mut din = vfs.open(DEBUG_IN, false).unwrap();
        vfs.write(&mut din, b"prompt").unwrap();
        let mut buf = [0u8; 3];
        assert_eq!(vfs.read(&mut din, &mut buf).unwrap(), 3);
        assert_eq!(&buf, b"pro");
        assert_eq!(vfs.read(&mut din, &mut buf).unwrap(), 3);
        assert_eq!(&buf, b"mpt");
        assert_eq!(vfs.read(&mut din, &mut buf).unwrap(), 0);
    }

    #[test]
    fn sparse_write_extends() {
        let mut vfs = Vfs::new();
        let mut fd = vfs.open("/f", true).unwrap();
        if let FileDesc::File { offset, .. } = &mut fd {
            *offset = 10;
        }
        vfs.write(&mut fd, b"xy").unwrap();
        assert_eq!(vfs.get("/f").unwrap().len(), 12);
    }
}
