//! # erebor-kernel — the deprivileged guest kernel
//!
//! A small but functional guest operating system that plays the role of the
//! paper's instrumented Linux v6.6: it manages tasks, scheduling, virtual
//! memory, files and signals — but it is **untrusted**, owns no sensitive
//! instruction, and reaches every Table 2 operation through the monitor's
//! EMC interface. Its executable image is synthesized bytes that the
//! monitor byte-scans at stage-two boot.
//!
//! In the `Native` configuration the same kernel runs *with* its hardware
//! privileges (the paper's baseline): the [`vm`] layer then performs page
//! table updates directly, charging native costs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod image;
pub mod kernel;
pub mod syscall;
pub mod task;
pub mod vfs;
pub mod vm;

pub use kernel::{Hw, Kernel, KernelStats};
pub use syscall::{nr, Errno};
pub use task::{Pid, Task, TaskKind, TaskState};

/// Virtual addresses of the kernel's entry points inside its text image.
pub mod entry {
    use erebor_hw::layout::KERNEL_BASE;
    use erebor_hw::VirtAddr;

    /// Syscall entry (`entry_SYSCALL_64` analogue).
    pub const SYSCALL: VirtAddr = VirtAddr(KERNEL_BASE.0 + 0x100);
    /// Page-fault handler.
    pub const PF: VirtAddr = VirtAddr(KERNEL_BASE.0 + 0x200);
    /// General-protection handler.
    pub const GP: VirtAddr = VirtAddr(KERNEL_BASE.0 + 0x280);
    /// Invalid-opcode handler.
    pub const UD: VirtAddr = VirtAddr(KERNEL_BASE.0 + 0x300);
    /// `#VE` handler (GHCI path).
    pub const VE: VirtAddr = VirtAddr(KERNEL_BASE.0 + 0x380);
    /// Control-protection handler.
    pub const CP: VirtAddr = VirtAddr(KERNEL_BASE.0 + 0x3c0);
    /// APIC timer handler (scheduler tick).
    pub const TIMER: VirtAddr = VirtAddr(KERNEL_BASE.0 + 0x400);
    /// IPI handler.
    pub const IPI: VirtAddr = VirtAddr(KERNEL_BASE.0 + 0x480);
    /// External device handler.
    pub const DEVICE: VirtAddr = VirtAddr(KERNEL_BASE.0 + 0x500);
}
