//! Kernel virtual-memory operations.
//!
//! Under Erebor every page-table mutation is delegated through EMC; in the
//! `Native` baseline the (still privileged) kernel performs the same
//! operations directly, charging native costs — this is exactly the
//! MMU row of Table 4.

use crate::kernel::Hw;
use crate::syscall::Errno;
use erebor_core::emc::{EmcRequest, EmcResponse};
use erebor_core::policy::FrameKind;
use erebor_hw::paging::PteFlags;
use erebor_hw::{native, Frame, VirtAddr};

/// Create a user address space: monitor-validated under Erebor, direct
/// construction in native mode.
///
/// # Errors
/// [`Errno::Enomem`] on allocation failure.
pub fn create_address_space(hw: &mut Hw<'_>, asid: u32) -> Result<Frame, Errno> {
    if hw.monitor.cfg.mmu_protection() {
        match hw.monitor.emc(
            hw.machine,
            hw.tdx,
            hw.cpu,
            EmcRequest::CreateAddressSpace { asid },
        ) {
            Ok(EmcResponse::Root(root)) => Ok(root),
            _ => Err(Errno::Enomem),
        }
    } else {
        let kroot = hw.monitor.kernel_root;
        let root =
            native::create_address_space(hw.machine, kroot).map_err(|_| Errno::Enomem)?;
        // Bookkeep in the shared frame table so teardown works uniformly.
        hw.monitor.frames.set_kind(root, FrameKind::Ptp).ok();
        Ok(root)
    }
}

/// Map one anonymous user page (demand-paging fill). Returns the frame.
///
/// # Errors
/// [`Errno::Enomem`] / [`Errno::Eperm`] per the monitor's policy.
pub fn map_user_page(
    hw: &mut Hw<'_>,
    root: Frame,
    va: VirtAddr,
    writable: bool,
    executable: bool,
) -> Result<Frame, Errno> {
    if hw.monitor.cfg.mmu_protection() {
        match hw.monitor.emc(
            hw.machine,
            hw.tdx,
            hw.cpu,
            EmcRequest::MapUserPage {
                root,
                va,
                frame: None,
                writable,
                executable,
            },
        ) {
            Ok(EmcResponse::Mapped(f)) => Ok(f),
            Err(erebor_core::emc::EmcError::NoMemory) => Err(Errno::Enomem),
            _ => Err(Errno::Eperm),
        }
    } else {
        let flags = if executable {
            PteFlags::user_rx()
        } else if writable {
            PteFlags::user_rw()
        } else {
            PteFlags::user_ro()
        };
        let f = native::map_user_page(hw.machine, root, va, flags).map_err(|_| Errno::Enomem)?;
        hw.monitor
            .frames
            .set_kind(f, FrameKind::UserAnon { asid: 0 })
            .ok();
        hw.monitor.frames.inc_map(f);
        Ok(f)
    }
}

/// Map `pages` fresh anonymous user pages in one batched EMC (§9.1's
/// optimization) — falls back to per-page mapping when batching is off.
///
/// # Errors
/// As [`map_user_page`].
pub fn map_user_range(
    hw: &mut Hw<'_>,
    root: Frame,
    va: VirtAddr,
    pages: u64,
    writable: bool,
) -> Result<(), Errno> {
    if hw.monitor.cfg.mmu_protection() && hw.monitor.cfg.batched_mmu {
        hw.monitor
            .emc(
                hw.machine,
                hw.tdx,
                hw.cpu,
                EmcRequest::MapUserRange {
                    root,
                    va,
                    pages,
                    writable,
                },
            )
            .map(|_| ())
            .map_err(|_| Errno::Enomem)
    } else {
        for p in 0..pages {
            map_user_page(
                hw,
                root,
                va.add(p * erebor_hw::PAGE_SIZE as u64),
                writable,
                false,
            )?;
        }
        Ok(())
    }
}

/// Unmap one user page.
///
/// # Errors
/// [`Errno::Efault`] if not mapped or refused.
pub fn unmap_user_page(hw: &mut Hw<'_>, root: Frame, va: VirtAddr) -> Result<(), Errno> {
    if hw.monitor.cfg.mmu_protection() {
        hw.monitor
            .emc(
                hw.machine,
                hw.tdx,
                hw.cpu,
                EmcRequest::UnmapUserPage { root, va },
            )
            .map(|_| ())
            .map_err(|_| Errno::Efault)
    } else {
        // Local invalidation only: native callers unmapping a whole range
        // (munmap, reclaim) owe the cross-core IPI round themselves and
        // batch it via `native::flush_mm_range`, as `flush_tlb_mm_range`
        // amortizes it.
        let frame =
            native::unmap_user_page(hw.machine, hw.cpu, root, va).map_err(|_| Errno::Efault)?;
        hw.monitor.frames.dec_map(frame);
        if hw.monitor.frames.mapcount(frame) == 0 {
            native::free_user_frame(hw.machine, frame);
            hw.monitor.frames.release(frame).ok();
        }
        Ok(())
    }
}

/// Switch CR3 to a task's address space.
///
/// # Errors
/// [`Errno::Eperm`] if the monitor refuses.
pub fn switch_address_space(hw: &mut Hw<'_>, root: Frame) -> Result<(), Errno> {
    if hw.machine.cr3(hw.cpu) == root {
        return Ok(());
    }
    if hw.monitor.cfg.mmu_protection() {
        hw.monitor
            .emc(
                hw.machine,
                hw.tdx,
                hw.cpu,
                EmcRequest::SwitchAddressSpace { root },
            )
            .map(|_| ())
            .map_err(|_| Errno::Eperm)
    } else if hw.machine.sensitive_allowed(erebor_hw::cpu::Domain::Kernel) {
        hw.machine.write_cr3(hw.cpu, root).map_err(|_| Errno::Eperm)
    } else {
        // Ablation configuration with the monitor present but MMU
        // delegation disabled: model the register write at native cost,
        // including its architectural TLB flush.
        native::switch_address_space_ablated(hw.machine, hw.cpu, root);
        Ok(())
    }
}

/// Copy bytes into user memory (`copy_to_user`): monitor-emulated under
/// Erebor (the kernel has no `stac`), direct under native.
///
/// # Errors
/// [`Errno::Efault`] on permission failures.
pub fn copy_to_user(hw: &mut Hw<'_>, root: Frame, va: VirtAddr, bytes: &[u8]) -> Result<(), Errno> {
    if hw.monitor.cfg.mmu_protection() {
        hw.monitor
            .emc(
                hw.machine,
                hw.tdx,
                hw.cpu,
                EmcRequest::UserCopy {
                    dir: erebor_core::emc::CopyDir::ToUser,
                    root,
                    user_va: va,
                    bytes: bytes.to_vec(),
                },
            )
            .map(|_| ())
            .map_err(|_| Errno::Efault)
    } else {
        // Native `copy_to_user` at native cost (the raw walk-and-copy
        // lives on the hardware side of the privilege boundary).
        native::user_copy(hw.machine, root, va, bytes.len(), Some(bytes))
            .map(|_| ())
            .map_err(|_| Errno::Efault)
    }
}

/// Copy bytes out of user memory (`copy_from_user`).
///
/// # Errors
/// [`Errno::Efault`] on permission failures.
pub fn copy_from_user(
    hw: &mut Hw<'_>,
    root: Frame,
    va: VirtAddr,
    len: usize,
) -> Result<Vec<u8>, Errno> {
    if hw.monitor.cfg.mmu_protection() {
        match hw.monitor.emc(
            hw.machine,
            hw.tdx,
            hw.cpu,
            EmcRequest::UserCopy {
                dir: erebor_core::emc::CopyDir::FromUser,
                root,
                user_va: va,
                bytes: vec![0u8; len],
            },
        ) {
            Ok(EmcResponse::Data(d)) => Ok(d),
            _ => Err(Errno::Efault),
        }
    } else {
        native::user_copy(hw.machine, root, va, len, None).map_err(|_| Errno::Efault)
    }
}
