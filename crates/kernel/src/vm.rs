//! Kernel virtual-memory operations.
//!
//! Under Erebor every page-table mutation is delegated through EMC; in the
//! `Native` baseline the (still privileged) kernel performs the same
//! operations directly, charging native costs — this is exactly the
//! MMU row of Table 4.

use crate::kernel::Hw;
use crate::syscall::Errno;
use erebor_core::emc::{EmcRequest, EmcResponse};
use erebor_core::policy::FrameKind;
use erebor_hw::paging::{self, Pte, PteFlags};
use erebor_hw::{Frame, VirtAddr};

/// Create a user address space: monitor-validated under Erebor, direct
/// construction in native mode.
///
/// # Errors
/// [`Errno::Enomem`] on allocation failure.
pub fn create_address_space(hw: &mut Hw<'_>, asid: u32) -> Result<Frame, Errno> {
    if hw.monitor.cfg.mmu_protection() {
        match hw.monitor.emc(
            hw.machine,
            hw.tdx,
            hw.cpu,
            EmcRequest::CreateAddressSpace { asid },
        ) {
            Ok(EmcResponse::Root(root)) => Ok(root),
            _ => Err(Errno::Enomem),
        }
    } else {
        let root = hw.machine.mem.alloc_frame().map_err(|_| Errno::Enomem)?;
        let kroot = hw.monitor.kernel_root;
        for idx in 256..512usize {
            let src = erebor_hw::PhysAddr(kroot.base().0 + (idx * 8) as u64);
            let dst = erebor_hw::PhysAddr(root.base().0 + (idx * 8) as u64);
            let v = hw.machine.mem.read_u64(src).map_err(|_| Errno::Enomem)?;
            if v != 0 {
                hw.machine
                    .mem
                    .write_u64(dst, v)
                    .map_err(|_| Errno::Enomem)?;
            }
        }
        hw.machine.cycles.charge(256 * hw.machine.costs.mem_op);
        // Bookkeep in the shared frame table so teardown works uniformly.
        hw.monitor.frames.set_kind(root, FrameKind::Ptp).ok();
        Ok(root)
    }
}

/// Map one anonymous user page (demand-paging fill). Returns the frame.
///
/// # Errors
/// [`Errno::Enomem`] / [`Errno::Eperm`] per the monitor's policy.
pub fn map_user_page(
    hw: &mut Hw<'_>,
    root: Frame,
    va: VirtAddr,
    writable: bool,
    executable: bool,
) -> Result<Frame, Errno> {
    if hw.monitor.cfg.mmu_protection() {
        match hw.monitor.emc(
            hw.machine,
            hw.tdx,
            hw.cpu,
            EmcRequest::MapUserPage {
                root,
                va,
                frame: None,
                writable,
                executable,
            },
        ) {
            Ok(EmcResponse::Mapped(f)) => Ok(f),
            Err(erebor_core::emc::EmcError::NoMemory) => Err(Errno::Enomem),
            _ => Err(Errno::Eperm),
        }
    } else {
        let f = hw.machine.mem.alloc_frame().map_err(|_| Errno::Enomem)?;
        let flags = if executable {
            PteFlags::user_rx()
        } else if writable {
            PteFlags::user_rw()
        } else {
            PteFlags::user_ro()
        };
        let new_ptps = paging::map_raw(
            &mut hw.machine.mem,
            root,
            va,
            Pte::encode(f, flags),
            paging::intermediate_for(flags),
        )
        .map_err(|_| Errno::Enomem)?;
        hw.machine
            .cycles
            .charge(hw.machine.costs.pte_store * (1 + new_ptps.len() as u64));
        hw.monitor
            .frames
            .set_kind(f, FrameKind::UserAnon { asid: 0 })
            .ok();
        hw.monitor.frames.inc_map(f);
        Ok(f)
    }
}

/// Map `pages` fresh anonymous user pages in one batched EMC (§9.1's
/// optimization) — falls back to per-page mapping when batching is off.
///
/// # Errors
/// As [`map_user_page`].
pub fn map_user_range(
    hw: &mut Hw<'_>,
    root: Frame,
    va: VirtAddr,
    pages: u64,
    writable: bool,
) -> Result<(), Errno> {
    if hw.monitor.cfg.mmu_protection() && hw.monitor.cfg.batched_mmu {
        hw.monitor
            .emc(
                hw.machine,
                hw.tdx,
                hw.cpu,
                EmcRequest::MapUserRange {
                    root,
                    va,
                    pages,
                    writable,
                },
            )
            .map(|_| ())
            .map_err(|_| Errno::Enomem)
    } else {
        for p in 0..pages {
            map_user_page(
                hw,
                root,
                va.add(p * erebor_hw::PAGE_SIZE as u64),
                writable,
                false,
            )?;
        }
        Ok(())
    }
}

/// Unmap one user page.
///
/// # Errors
/// [`Errno::Efault`] if not mapped or refused.
pub fn unmap_user_page(hw: &mut Hw<'_>, root: Frame, va: VirtAddr) -> Result<(), Errno> {
    if hw.monitor.cfg.mmu_protection() {
        hw.monitor
            .emc(
                hw.machine,
                hw.tdx,
                hw.cpu,
                EmcRequest::UnmapUserPage { root, va },
            )
            .map(|_| ())
            .map_err(|_| Errno::Efault)
    } else {
        let leaf = paging::lookup_raw(&hw.machine.mem, root, va)
            .ok()
            .flatten()
            .ok_or(Errno::Efault)?;
        let slot = paging::leaf_slot(&hw.machine.mem, root, va)
            .ok()
            .flatten()
            .ok_or(Errno::Efault)?;
        hw.machine
            .mem
            .write_u64(slot, 0)
            .map_err(|_| Errno::Efault)?;
        hw.machine.cycles.charge(hw.machine.costs.pte_store);
        // Local invalidation only: native callers unmapping a whole range
        // (munmap, reclaim) owe the cross-core IPI round themselves and
        // batch it — one `tlb_shootdown_mm` per range, as
        // `flush_tlb_mm_range` amortizes it.
        hw.machine
            .invalidate_page(hw.cpu, va)
            .map_err(|_| Errno::Efault)?;
        hw.monitor.frames.dec_map(leaf.frame());
        if hw.monitor.frames.mapcount(leaf.frame()) == 0 {
            hw.machine.mem.free_frame(leaf.frame()).ok();
            hw.monitor.frames.release(leaf.frame()).ok();
        }
        Ok(())
    }
}

/// Switch CR3 to a task's address space.
///
/// # Errors
/// [`Errno::Eperm`] if the monitor refuses.
pub fn switch_address_space(hw: &mut Hw<'_>, root: Frame) -> Result<(), Errno> {
    if hw.machine.cpus[hw.cpu].cr3 == root {
        return Ok(());
    }
    if hw.monitor.cfg.mmu_protection() {
        hw.monitor
            .emc(
                hw.machine,
                hw.tdx,
                hw.cpu,
                EmcRequest::SwitchAddressSpace { root },
            )
            .map(|_| ())
            .map_err(|_| Errno::Eperm)
    } else if hw.machine.sensitive_allowed(erebor_hw::cpu::Domain::Kernel) {
        hw.machine.write_cr3(hw.cpu, root).map_err(|_| Errno::Eperm)
    } else {
        // Ablation configuration with the monitor present but MMU
        // delegation disabled: model the register write at native cost,
        // including its architectural TLB flush.
        hw.machine.cycles.charge(hw.machine.costs.mov_cr);
        hw.machine.cpus[hw.cpu].cr3 = root;
        hw.machine.flush_tlb(hw.cpu);
        Ok(())
    }
}

/// Copy bytes into user memory (`copy_to_user`): monitor-emulated under
/// Erebor (the kernel has no `stac`), direct under native.
///
/// # Errors
/// [`Errno::Efault`] on permission failures.
pub fn copy_to_user(hw: &mut Hw<'_>, root: Frame, va: VirtAddr, bytes: &[u8]) -> Result<(), Errno> {
    if hw.monitor.cfg.mmu_protection() {
        hw.monitor
            .emc(
                hw.machine,
                hw.tdx,
                hw.cpu,
                EmcRequest::UserCopy {
                    dir: erebor_core::emc::CopyDir::ToUser,
                    root,
                    user_va: va,
                    bytes: bytes.to_vec(),
                },
            )
            .map(|_| ())
            .map_err(|_| Errno::Efault)
    } else {
        raw_user_copy(hw, root, va, bytes.len(), Some(bytes)).map(|_| ())
    }
}

/// Native user copy (`stac`-window semantics at native cost): walks the
/// target address space and copies through physical memory. Used by the
/// privileged-kernel baseline and by ablation configs that disable the
/// monitor's MMU interposition.
fn raw_user_copy(
    hw: &mut Hw<'_>,
    root: Frame,
    va: VirtAddr,
    len: usize,
    write: Option<&[u8]>,
) -> Result<Vec<u8>, Errno> {
    let costs_stac = hw.machine.costs.stac;
    hw.machine.cycles.charge(2 * costs_stac); // stac + clac
    let mut out = vec![0u8; if write.is_some() { 0 } else { len }];
    let mut done = 0usize;
    while done < len {
        let cur = va.add(done as u64);
        let chunk = ((erebor_hw::PAGE_SIZE as u64 - cur.page_offset()) as usize).min(len - done);
        let leaf = erebor_hw::paging::lookup_raw(&hw.machine.mem, root, cur)
            .ok()
            .flatten()
            .ok_or(Errno::Efault)?;
        let pa = erebor_hw::PhysAddr(leaf.frame().base().0 + cur.page_offset());
        match write {
            Some(bytes) => {
                if !leaf.writable() {
                    return Err(Errno::Efault);
                }
                hw.machine
                    .mem
                    .write(pa, &bytes[done..done + chunk])
                    .map_err(|_| Errno::Efault)?;
            }
            None => {
                hw.machine
                    .mem
                    .read(pa, &mut out[done..done + chunk])
                    .map_err(|_| Errno::Efault)?;
            }
        }
        hw.machine.cycles.charge(
            4 * hw.machine.costs.walk_level + hw.machine.costs.mem_op * (1 + chunk as u64 / 64),
        );
        done += chunk;
    }
    Ok(out)
}

/// Copy bytes out of user memory (`copy_from_user`).
///
/// # Errors
/// [`Errno::Efault`] on permission failures.
pub fn copy_from_user(
    hw: &mut Hw<'_>,
    root: Frame,
    va: VirtAddr,
    len: usize,
) -> Result<Vec<u8>, Errno> {
    if hw.monitor.cfg.mmu_protection() {
        match hw.monitor.emc(
            hw.machine,
            hw.tdx,
            hw.cpu,
            EmcRequest::UserCopy {
                dir: erebor_core::emc::CopyDir::FromUser,
                root,
                user_va: va,
                bytes: vec![0u8; len],
            },
        ) {
            Ok(EmcResponse::Data(d)) => Ok(d),
            _ => Err(Errno::Efault),
        }
    } else {
        raw_user_copy(hw, root, va, len, None)
    }
}
