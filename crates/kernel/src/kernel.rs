//! The kernel proper: scheduler, syscall dispatch, fault handling, and the
//! `/dev/erebor` driver.
//!
//! ABI note: this simulated kernel passes syscall arguments as plain
//! values (`args[0..6]`) rather than marshalling C structs through user
//! pointers; buffer *contents* still cross the user/kernel boundary through
//! the monitor-emulated user-copy path, which is where Erebor's costs and
//! checks live.

use crate::syscall::{nr, Errno};
use crate::task::{Pid, Task, TaskKind, TaskState, Vma};
use crate::vfs::{FileDesc, Vfs};
use crate::{entry, vm};
use erebor_core::emc::EmcRequest;
use erebor_core::monitor::Monitor;
use erebor_core::sandbox::SandboxId;
use erebor_hw::cpu::Machine;
use erebor_hw::idt::vector;
use erebor_hw::regs::Msr;
use erebor_hw::{VirtAddr, PAGE_SIZE};
use erebor_tdx::TdxModule;
use std::collections::{BTreeMap, VecDeque};

/// The hardware/monitor context a kernel entry point executes against.
pub struct Hw<'a> {
    /// The machine.
    pub machine: &'a mut Machine,
    /// The TDX module + host.
    pub tdx: &'a mut TdxModule,
    /// The security monitor.
    pub monitor: &'a mut Monitor,
    /// Executing core.
    pub cpu: usize,
}

impl core::fmt::Debug for Hw<'_> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Hw").field("cpu", &self.cpu).finish_non_exhaustive()
    }
}

/// Kernel event counters (Fig. 8 / Table 6 raw material).
#[derive(Debug, Default, Clone, Copy)]
pub struct KernelStats {
    /// Syscalls dispatched.
    pub syscalls: u64,
    /// Page faults handled.
    pub page_faults: u64,
    /// Timer ticks.
    pub timer_ticks: u64,
    /// Context switches performed.
    pub ctx_switches: u64,
    /// Processes forked.
    pub forks: u64,
    /// Signals delivered to user handlers.
    pub signals_delivered: u64,
    /// `#VE` exits handled for native tasks.
    pub ve_handled: u64,
}

impl KernelStats {
    /// Fieldwise saturating difference `self - earlier`, for interval
    /// measurements between two snapshots.
    #[must_use]
    pub fn delta(&self, earlier: &KernelStats) -> KernelStats {
        KernelStats {
            syscalls: self.syscalls.saturating_sub(earlier.syscalls),
            page_faults: self.page_faults.saturating_sub(earlier.page_faults),
            timer_ticks: self.timer_ticks.saturating_sub(earlier.timer_ticks),
            ctx_switches: self.ctx_switches.saturating_sub(earlier.ctx_switches),
            forks: self.forks.saturating_sub(earlier.forks),
            signals_delivered: self.signals_delivered.saturating_sub(earlier.signals_delivered),
            ve_handled: self.ve_handled.saturating_sub(earlier.ve_handled),
        }
    }

    /// Append the counters to a wire stream (migration).
    pub fn export_to(&self, w: &mut erebor_wire::WireWriter) {
        w.u64(self.syscalls);
        w.u64(self.page_faults);
        w.u64(self.timer_ticks);
        w.u64(self.ctx_switches);
        w.u64(self.forks);
        w.u64(self.signals_delivered);
        w.u64(self.ve_handled);
    }

    /// Decode counters from a wire stream.
    ///
    /// # Errors
    /// [`erebor_wire::WireError`] on truncation.
    pub fn import_from(
        r: &mut erebor_wire::WireReader<'_>,
    ) -> Result<KernelStats, erebor_wire::WireError> {
        Ok(KernelStats {
            syscalls: r.u64()?,
            page_faults: r.u64()?,
            timer_ticks: r.u64()?,
            ctx_switches: r.u64()?,
            forks: r.u64()?,
            signals_delivered: r.u64()?,
            ve_handled: r.u64()?,
        })
    }
}

/// `ioctl` requests of the `/dev/erebor` driver (LibOS → kernel → EMC).
pub mod erebor_ioctl {
    /// Declare confined memory: `args[2]=va, args[3]=pages, args[4]=exec`.
    pub const DECLARE_CONFINED: u64 = 0x4100;
    /// Create a common region: `args[2]=pages, args[3]=logical_bytes`.
    pub const CREATE_COMMON: u64 = 0x4101;
    /// Attach a common region: `args[2]=region, args[3]=va`.
    pub const ATTACH_COMMON: u64 = 0x4102;
}

/// The guest kernel.
#[derive(Debug)]
pub struct Kernel {
    /// All tasks.
    pub tasks: BTreeMap<u32, Task>,
    /// Event counters.
    pub stats: KernelStats,
    /// The filesystem.
    pub vfs: Vfs,
    /// Captured stdout per task.
    pub stdout: BTreeMap<u32, Vec<u8>>,
    /// Swapped-out anonymous page contents, keyed by (root frame, va).
    swap: BTreeMap<(u64, u64), Vec<u8>>,
    /// Per-CPU running task (the paper's CVM has 8 vCPUs).
    current: BTreeMap<usize, Pid>,
    runqueue: VecDeque<Pid>,
    next_pid: u32,
    next_asid: u32,
    initialized: bool,
}

impl Default for Kernel {
    fn default() -> Kernel {
        Kernel::new()
    }
}

impl Kernel {
    /// A fresh, un-initialized kernel.
    #[must_use]
    pub fn new() -> Kernel {
        Kernel {
            tasks: BTreeMap::new(),
            stats: KernelStats::default(),
            vfs: Vfs::new(),
            stdout: BTreeMap::new(),
            swap: BTreeMap::new(),
            current: BTreeMap::new(),
            runqueue: VecDeque::new(),
            next_pid: 1,
            next_asid: 1,
            initialized: false,
        }
    }

    /// Kernel boot: register the syscall entry and every vector handler —
    /// through EMC under Erebor, directly when native.
    ///
    /// # Errors
    /// [`Errno::Eperm`] if registration is refused.
    pub fn init(&mut self, hw: &mut Hw<'_>) -> Result<(), Errno> {
        let vectors: [(u8, VirtAddr); 8] = [
            (vector::PF, entry::PF),
            (vector::GP, entry::GP),
            (vector::UD, entry::UD),
            (vector::VE, entry::VE),
            (vector::CP, entry::CP),
            (vector::TIMER, entry::TIMER),
            (vector::IPI, entry::IPI),
            (vector::DEVICE, entry::DEVICE),
        ];
        if hw.monitor.cfg.emc_delegation() {
            hw.monitor
                .emc(
                    hw.machine,
                    hw.tdx,
                    hw.cpu,
                    EmcRequest::WrMsr {
                        msr: Msr::Lstar,
                        value: entry::SYSCALL.0,
                    },
                )
                .map_err(|_| Errno::Eperm)?;
            for (vec, handler) in vectors {
                hw.monitor
                    .emc(
                        hw.machine,
                        hw.tdx,
                        hw.cpu,
                        EmcRequest::SetVectorHandler { vec, handler },
                    )
                    .map_err(|_| Errno::Eperm)?;
            }
        } else {
            for cpu in 0..hw.machine.cpus.len() {
                hw.machine
                    .wrmsr(cpu, Msr::Lstar, entry::SYSCALL.0)
                    .map_err(|_| Errno::Eperm)?;
            }
            for (vec, handler) in vectors {
                let va = erebor_core::boot::IDT_VA.add(u64::from(vec) * erebor_hw::idt::ENTRY_SIZE);
                hw.machine
                    .write_u64(hw.cpu, va, handler.0)
                    .map_err(|_| Errno::Eperm)?;
            }
        }
        self.initialized = true;
        Ok(())
    }

    /// Create a native task with its own address space.
    ///
    /// # Errors
    /// Allocation failures.
    pub fn spawn_native(&mut self, hw: &mut Hw<'_>) -> Result<Pid, Errno> {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        let asid = self.next_asid;
        self.next_asid += 1;
        let root = vm::create_address_space(hw, asid)?;
        self.tasks
            .insert(pid.0, Task::new(pid, TaskKind::Native, root));
        self.runqueue.push_back(pid);
        Ok(pid)
    }

    /// Create a sandbox-host task: the monitor creates the container and
    /// its address space; the kernel only schedules it.
    ///
    /// # Errors
    /// Monitor refusal / allocation failures.
    pub fn spawn_sandbox(
        &mut self,
        hw: &mut Hw<'_>,
        budget_pages: u64,
    ) -> Result<(Pid, SandboxId), Errno> {
        let id = hw
            .monitor
            .create_sandbox(hw.machine, hw.cpu, budget_pages)
            .map_err(|_| Errno::Enomem)?;
        let root = hw.monitor.sandboxes.get(&id.0).ok_or(Errno::Esrch)?.root;
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        let mut task = Task::new(pid, TaskKind::Sandbox(id), root);
        task.fds.insert(
            erebor_core::monitor::EREBOR_IO_FD,
            crate::vfs::FileDesc::EreborDev,
        );
        self.tasks.insert(pid.0, task);
        self.runqueue.push_back(pid);
        Ok((pid, id))
    }

    /// The task currently scheduled on CPU 0 (single-core drivers).
    #[must_use]
    pub fn current(&self) -> Option<Pid> {
        self.current_on(0)
    }

    /// The task currently scheduled on `cpu`.
    #[must_use]
    pub fn current_on(&self, cpu: usize) -> Option<Pid> {
        self.current.get(&cpu).copied()
    }

    /// Look up a task.
    #[must_use]
    pub fn task(&self, pid: Pid) -> Option<&Task> {
        self.tasks.get(&pid.0)
    }

    /// Mutable task lookup.
    pub fn task_mut(&mut self, pid: Pid) -> Option<&mut Task> {
        self.tasks.get_mut(&pid.0)
    }

    /// Make `pid` the running task on `hw.cpu` (address-space switch).
    ///
    /// # Errors
    /// [`Errno::Esrch`] for unknown pids.
    pub fn schedule(&mut self, hw: &mut Hw<'_>, pid: Pid) -> Result<(), Errno> {
        let root = self.tasks.get(&pid.0).ok_or(Errno::Esrch)?.root;
        let cpu = hw.cpu;
        if self.current.get(&cpu) != Some(&pid) {
            self.stats.ctx_switches = self.stats.ctx_switches.saturating_add(1);
            vm::switch_address_space(hw, root)?;
            if let Some(prev) = self.current.get(&cpu).copied() {
                if let Some(t) = self.tasks.get_mut(&prev.0) {
                    if t.state == TaskState::Running {
                        t.state = TaskState::Ready;
                    }
                }
            }
            self.current.insert(cpu, pid);
            if let Some(t) = self.tasks.get_mut(&pid.0) {
                t.state = TaskState::Running;
            }
        }
        Ok(())
    }

    /// Per-tick kernel housekeeping: timer reprogramming, RCU/kswapd-style
    /// page-table churn, vmstat updates. Under Erebor each of these MMU and
    /// MSR operations is an EMC — this is the system-wide delegation
    /// traffic behind the paper's 40–90k EMC/s (Table 6); natively the
    /// same operations cost tens of cycles.
    fn housekeeping(&mut self, hw: &mut Hw<'_>) {
        const CHURN_PAIRS: u64 = 34;
        let root = hw.monitor.kernel_root;
        for i in 0..CHURN_PAIRS {
            let va = VirtAddr(0x7000_0000_0000 + i * PAGE_SIZE as u64);
            if vm::map_user_page(hw, root, va, true, false).is_ok() {
                vm::unmap_user_page(hw, root, va).ok();
            }
        }
        // APIC timer reprogram + perf MSR update.
        if hw.monitor.cfg.emc_delegation() {
            hw.monitor
                .emc(
                    hw.machine,
                    hw.tdx,
                    hw.cpu,
                    EmcRequest::WrMsr {
                        msr: Msr::ApicTimer,
                        value: self.stats.timer_ticks,
                    },
                )
                .ok();
            hw.monitor
                .emc(
                    hw.machine,
                    hw.tdx,
                    hw.cpu,
                    EmcRequest::WrMsr {
                        msr: Msr::Fmask,
                        value: 0x4700,
                    },
                )
                .ok();
        } else {
            hw.machine
                .wrmsr(hw.cpu, Msr::ApicTimer, self.stats.timer_ticks)
                .ok();
            hw.machine.wrmsr(hw.cpu, Msr::Fmask, 0x4700).ok();
        }
    }

    /// The scheduler tick (timer interrupt body): round-robin.
    /// Returns the task to run next.
    pub fn on_timer(&mut self, hw: &mut Hw<'_>) -> Option<Pid> {
        self.stats.timer_ticks = self.stats.timer_ticks.saturating_add(1);
        self.housekeeping(hw);
        // Deliver any pending signals of the current task.
        if let Some(pid) = self.current_on(hw.cpu) {
            self.deliver_signals(pid);
        }
        let next = self.pick_next(hw.cpu);
        if let Some(pid) = next {
            self.schedule(hw, pid).ok()?;
        }
        self.current_on(hw.cpu)
    }

    fn pick_next(&mut self, cpu: usize) -> Option<Pid> {
        let n = self.runqueue.len();
        for _ in 0..n {
            let pid = self.runqueue.pop_front()?;
            self.runqueue.push_back(pid);
            let Some(t) = self.tasks.get(&pid.0) else {
                continue;
            };
            // Ready, or already running *on this cpu* (requeue).
            let runnable = t.state == TaskState::Ready
                || (t.state == TaskState::Running && self.current_on(cpu) == Some(pid));
            // Never steal a task that is running on another cpu.
            let elsewhere = self
                .current
                .iter()
                .any(|(c, p)| *c != cpu && *p == pid && t.state == TaskState::Running);
            if runnable && !elsewhere {
                return Some(pid);
            }
        }
        None
    }

    fn deliver_signals(&mut self, pid: Pid) {
        let Some(t) = self.tasks.get_mut(&pid.0) else {
            return;
        };
        let pending = std::mem::take(&mut t.pending_signals);
        for sig in pending {
            if t.sig_handlers.contains_key(&sig) {
                self.stats.signals_delivered = self.stats.signals_delivered.saturating_add(1);
                if t.state == TaskState::Blocked {
                    t.state = TaskState::Ready;
                }
            }
        }
    }

    /// Memory-pressure reclaim for native tasks: unmap the oldest
    /// materialized pages of large VMAs (kswapd analogue). Contents are
    /// dropped (anonymous pages "swap out"); re-touch faults them back in.
    pub fn reclaim_pages(&mut self, hw: &mut Hw<'_>, max_pages: u64) -> u64 {
        let mut reclaimed = 0u64;
        let pids: Vec<u32> = self.tasks.keys().copied().collect();
        for pid in pids {
            if reclaimed >= max_pages {
                break;
            }
            let (root, victims) = {
                let Some(t) = self.tasks.get_mut(&pid) else {
                    continue;
                };
                let mut victims = Vec::new();
                for vma in &mut t.vmas {
                    // Only large, cold-able regions; leave small buffers.
                    if vma.mapped.len() > 16 && reclaimed < max_pages {
                        let take = ((max_pages - reclaimed) as usize).min(vma.mapped.len() / 2);
                        victims.extend(vma.mapped.drain(..take));
                        reclaimed += take as u64;
                    }
                }
                (t.root, victims)
            };
            for page in &victims {
                let page = *page;
                // Swap out: preserve contents before dropping the frame.
                if let Some(contents) = erebor_hw::native::read_mapped_page(hw.machine, root, page)
                {
                    if contents.iter().any(|&b| b != 0) {
                        self.swap.insert((root.0, page.0), contents);
                    }
                }
                hw.machine.cycles.charge(hw.machine.costs.dma_page); // swap write-out
                vm::unmap_user_page(hw, root, page).ok();
            }
            if !hw.monitor.cfg.mmu_protection() {
                // One mm-targeted IPI round per reclaim sweep (native
                // path; delegated unmaps were shot down page-by-page by
                // the monitor).
                erebor_hw::native::flush_mm_range(hw.machine, hw.cpu, root, &victims);
            }
        }
        reclaimed
    }

    // =================================================================
    // Fault handling
    // =================================================================

    /// Page-fault handler (demand paging).
    ///
    /// # Errors
    /// [`Errno::Efault`] for accesses outside any VMA (segfault).
    pub fn handle_page_fault(
        &mut self,
        hw: &mut Hw<'_>,
        pid: Pid,
        va: VirtAddr,
        write: bool,
    ) -> Result<(), Errno> {
        self.stats.page_faults = self.stats.page_faults.saturating_add(1);
        hw.machine.cycles.charge(hw.machine.costs.pf_fixed);
        let (root, writable, executable) = {
            let t = self.tasks.get(&pid.0).ok_or(Errno::Esrch)?;
            let vma = t.vma_for(va).ok_or(Errno::Efault)?;
            if write && !vma.writable {
                return Err(Errno::Efault);
            }
            (t.root, vma.writable, vma.executable)
        };
        let page = va.page_base();
        vm::map_user_page(hw, root, page, writable, executable)?;
        // Swap in: restore preserved contents if the page was reclaimed.
        if let Some(contents) = self.swap.remove(&(root.0, page.0)) {
            hw.machine.cycles.charge(hw.machine.costs.dma_page); // swap read-in
            vm::copy_to_user(hw, root, page, &contents)?;
        }
        let t = self.tasks.get_mut(&pid.0).ok_or(Errno::Esrch)?;
        if let Some(vma) = t.vma_for_mut(va) {
            vma.mapped.push(page);
        }
        Ok(())
    }

    /// `#VE` handler for *native* tasks: performs the GHCI round trip on
    /// behalf of the guest (Fig. 1 ③–⑤). Under Erebor this is an EMC
    /// (`ConvertShared`) or is monitor-handled; native kernels tdcall
    /// directly — both paths are exercised by the Fig. 10 workloads.
    pub fn handle_ve_native(&mut self, _hw: &mut Hw<'_>) {
        self.stats.ve_handled = self.stats.ve_handled.saturating_add(1);
    }

    // =================================================================
    // Syscall dispatch
    // =================================================================

    /// Dispatch a syscall for `pid`. Returns the `rax` value (result or
    /// negated errno).
    pub fn handle_syscall(
        &mut self,
        hw: &mut Hw<'_>,
        pid: Pid,
        syscall_nr: u64,
        args: [u64; 6],
    ) -> u64 {
        debug_assert!(self.initialized, "kernel entries not registered");
        self.stats.syscalls = self.stats.syscalls.saturating_add(1);
        hw.machine.cycles.charge(hw.machine.costs.syscall_dispatch);
        match self.do_syscall(hw, pid, syscall_nr, args) {
            Ok(v) => v,
            Err(e) => e.as_ret(),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn do_syscall(
        &mut self,
        hw: &mut Hw<'_>,
        pid: Pid,
        syscall_nr: u64,
        args: [u64; 6],
    ) -> Result<u64, Errno> {
        match syscall_nr {
            nr::GETPID => Ok(u64::from(pid.0)),
            nr::SCHED_YIELD => Ok(0),
            nr::NANOSLEEP => {
                // Charge the requested nanoseconds as idle cycles (2.1 GHz).
                hw.machine.cycles.charge(args[0].saturating_mul(21) / 10);
                Ok(0)
            }
            nr::EXIT => {
                let t = self.tasks.get_mut(&pid.0).ok_or(Errno::Esrch)?;
                t.state = TaskState::Zombie;
                t.exit_status = Some(args[0] as i64);
                self.current.retain(|_, p| *p != pid);
                Ok(0)
            }
            nr::BRK => {
                let t = self.tasks.get_mut(&pid.0).ok_or(Errno::Esrch)?;
                let new = VirtAddr(args[0]);
                if new.0 == 0 {
                    return Ok(t.brk.0);
                }
                let heap = t.vmas.get_mut(0).ok_or(Errno::Einval)?;
                if new.0 < heap.start.0 {
                    return Err(Errno::Einval);
                }
                heap.end = VirtAddr(new.0.next_multiple_of(PAGE_SIZE as u64));
                t.brk = new;
                Ok(new.0)
            }
            nr::MMAP => {
                let len = args[1];
                if len == 0 {
                    return Err(Errno::Einval);
                }
                let prot = args[2];
                let t = self.tasks.get_mut(&pid.0).ok_or(Errno::Esrch)?;
                let size = len.next_multiple_of(PAGE_SIZE as u64);
                // MAP_FIXED-style placement when a hint is given (page
                // aligned, user half, no overlap); otherwise bump-allocate.
                let start = if args[0] != 0 {
                    let hint = VirtAddr(args[0]);
                    if hint.page_offset() != 0 || !erebor_hw::layout::is_user(hint) {
                        return Err(Errno::Einval);
                    }
                    let end = hint.add(size);
                    if t.vmas.iter().any(|v| hint.0 < v.end.0 && v.start.0 < end.0) {
                        return Err(Errno::Einval);
                    }
                    hint
                } else {
                    let start = t.mmap_cursor;
                    t.mmap_cursor = start.add(size + PAGE_SIZE as u64); // guard page
                    start
                };
                t.vmas.push(Vma {
                    start,
                    end: start.add(size),
                    writable: prot & 2 != 0,
                    executable: prot & 4 != 0,
                    mapped: Vec::new(),
                });
                Ok(start.0)
            }
            nr::MUNMAP => {
                let start = VirtAddr(args[0]);
                let (root, mapped, idx) = {
                    let t = self.tasks.get(&pid.0).ok_or(Errno::Esrch)?;
                    let idx = t
                        .vmas
                        .iter()
                        .position(|v| v.start == start)
                        .ok_or(Errno::Einval)?;
                    (t.root, t.vmas[idx].mapped.clone(), idx)
                };
                for page in &mapped {
                    vm::unmap_user_page(hw, root, *page).ok();
                }
                if !hw.monitor.cfg.mmu_protection() {
                    // Native path: one mm-targeted IPI round for the
                    // whole range (under delegation the monitor's
                    // per-page EMC unmap already shot each page down).
                    erebor_hw::native::flush_mm_range(hw.machine, hw.cpu, root, &mapped);
                }
                let t = self.tasks.get_mut(&pid.0).ok_or(Errno::Esrch)?;
                t.vmas.remove(idx);
                Ok(0)
            }
            nr::MPROTECT => {
                let start = VirtAddr(args[0]);
                let writable = args[2] & 2 != 0;
                let (root, mapped) = {
                    let t = self.tasks.get_mut(&pid.0).ok_or(Errno::Esrch)?;
                    let vma = t.vma_for_mut(start).ok_or(Errno::Einval)?;
                    vma.writable = writable;
                    (
                        t.root,
                        t.vma_for(start).ok_or(Errno::Einval)?.mapped.clone(),
                    )
                };
                for page in mapped {
                    if hw.monitor.cfg.emc_delegation() {
                        hw.monitor
                            .emc(
                                hw.machine,
                                hw.tdx,
                                hw.cpu,
                                EmcRequest::ProtectUserPage {
                                    root,
                                    va: page,
                                    writable,
                                },
                            )
                            .map_err(|_| Errno::Eperm)?;
                    }
                }
                Ok(0)
            }
            nr::OPEN => {
                // args: [path_ptr, path_len, flags] — see module ABI note.
                let path_bytes = self.read_user(hw, pid, VirtAddr(args[0]), args[1] as usize)?;
                let path = String::from_utf8(path_bytes).map_err(|_| Errno::Einval)?;
                let create = args[2] & 0x40 != 0; // O_CREAT
                let desc = self.vfs.open(&path, create)?;
                let t = self.tasks.get_mut(&pid.0).ok_or(Errno::Esrch)?;
                let fd = t.next_fd();
                t.fds.insert(fd, desc);
                Ok(fd)
            }
            nr::CLOSE => {
                let t = self.tasks.get_mut(&pid.0).ok_or(Errno::Esrch)?;
                t.fds.remove(&args[0]).ok_or(Errno::Ebadf)?;
                Ok(0)
            }
            nr::LSEEK => {
                let t = self.tasks.get_mut(&pid.0).ok_or(Errno::Esrch)?;
                match t.fds.get_mut(&args[0]) {
                    Some(FileDesc::File { offset, .. }) => {
                        *offset = args[1];
                        Ok(args[1])
                    }
                    Some(_) => Err(Errno::Einval),
                    None => Err(Errno::Ebadf),
                }
            }
            nr::READ => {
                let fd_num = args[0];
                let mut desc = {
                    let t = self.tasks.get(&pid.0).ok_or(Errno::Esrch)?;
                    t.fds.get(&fd_num).ok_or(Errno::Ebadf)?.clone()
                };
                let len = args[2] as usize;
                let mut tmp = vec![0u8; len];
                let n = self.vfs.read(&mut desc, &mut tmp)?;
                self.write_user(hw, pid, VirtAddr(args[1]), &tmp[..n])?;
                let t = self.tasks.get_mut(&pid.0).ok_or(Errno::Esrch)?;
                t.fds.insert(fd_num, desc);
                Ok(n as u64)
            }
            nr::WRITE => {
                let fd_num = args[0];
                let mut desc = {
                    let t = self.tasks.get(&pid.0).ok_or(Errno::Esrch)?;
                    t.fds.get(&fd_num).ok_or(Errno::Ebadf)?.clone()
                };
                let data = self.read_user(hw, pid, VirtAddr(args[1]), args[2] as usize)?;
                if matches!(desc, FileDesc::Stdout) {
                    self.stdout
                        .entry(pid.0)
                        .or_default()
                        .extend_from_slice(&data);
                }
                let n = self.vfs.write(&mut desc, &data)?;
                let t = self.tasks.get_mut(&pid.0).ok_or(Errno::Esrch)?;
                t.fds.insert(fd_num, desc);
                Ok(n as u64)
            }
            nr::IOCTL => self.do_ioctl(hw, pid, args),
            nr::RT_SIGACTION => {
                let t = self.tasks.get_mut(&pid.0).ok_or(Errno::Esrch)?;
                t.sig_handlers.insert(args[0], VirtAddr(args[1]));
                Ok(0)
            }
            nr::KILL => {
                let target = Pid(args[0] as u32);
                let sig = args[1];
                let t = self.tasks.get_mut(&target.0).ok_or(Errno::Esrch)?;
                t.pending_signals.push(sig);
                // Immediate delivery if a handler is installed (lmbench's
                // signal-catch path).
                self.deliver_signals(target);
                Ok(0)
            }
            nr::FUTEX => {
                const FUTEX_WAIT: u64 = 0;
                const FUTEX_WAKE: u64 = 1;
                match args[1] {
                    FUTEX_WAIT => {
                        let t = self.tasks.get_mut(&pid.0).ok_or(Errno::Esrch)?;
                        t.state = TaskState::Blocked;
                        Ok(0)
                    }
                    FUTEX_WAKE => {
                        let mut woken = 0u64;
                        for t in self.tasks.values_mut() {
                            if t.state == TaskState::Blocked && woken < args[2] {
                                t.state = TaskState::Ready;
                                woken += 1;
                            }
                        }
                        Ok(woken)
                    }
                    _ => Err(Errno::Enosys),
                }
            }
            nr::FORK => self.do_fork(hw, pid),
            nr::CLONE => {
                // Thread-style clone: shares the address space.
                let (root, kind) = {
                    let t = self.tasks.get(&pid.0).ok_or(Errno::Esrch)?;
                    (t.root, t.kind)
                };
                let child = Pid(self.next_pid);
                self.next_pid += 1;
                self.tasks.insert(child.0, Task::new(child, kind, root));
                self.runqueue.push_back(child);
                Ok(u64::from(child.0))
            }
            _ => Err(Errno::Enosys),
        }
    }

    fn do_ioctl(&mut self, hw: &mut Hw<'_>, pid: Pid, args: [u64; 6]) -> Result<u64, Errno> {
        let desc = {
            let t = self.tasks.get(&pid.0).ok_or(Errno::Esrch)?;
            t.fds.get(&args[0]).ok_or(Errno::Ebadf)?.clone()
        };
        match desc {
            FileDesc::EreborDev => {
                let (sandbox, _root) = {
                    let t = self.tasks.get(&pid.0).ok_or(Errno::Esrch)?;
                    (t.sandbox().ok_or(Errno::Eperm)?, t.root)
                };
                match args[1] {
                    erebor_core::monitor::IOCTL_INPUT | erebor_core::monitor::IOCTL_OUTPUT => {
                        // Ablation without exit interposition: the driver
                        // forwards the data channel to the monitor.
                        match hw.monitor.sandbox_io(hw.machine, hw.tdx, hw.cpu, sandbox) {
                            erebor_core::sandbox::ExitDecision::Handled { rax } => Ok(rax),
                            _ => Err(Errno::Eperm),
                        }
                    }
                    erebor_ioctl::DECLARE_CONFINED => {
                        hw.monitor
                            .emc(
                                hw.machine,
                                hw.tdx,
                                hw.cpu,
                                EmcRequest::DeclareConfined {
                                    sandbox: sandbox.0,
                                    va: VirtAddr(args[2]),
                                    pages: args[3],
                                    executable: args[4] != 0,
                                },
                            )
                            .map_err(|_| Errno::Eperm)?;
                        Ok(0)
                    }
                    erebor_ioctl::CREATE_COMMON => {
                        match hw.monitor.emc(
                            hw.machine,
                            hw.tdx,
                            hw.cpu,
                            EmcRequest::CreateCommon {
                                pages: args[2],
                                logical_bytes: args[3],
                            },
                        ) {
                            Ok(erebor_core::emc::EmcResponse::Region(id)) => Ok(u64::from(id)),
                            _ => Err(Errno::Eperm),
                        }
                    }
                    erebor_ioctl::ATTACH_COMMON => {
                        hw.monitor
                            .emc(
                                hw.machine,
                                hw.tdx,
                                hw.cpu,
                                EmcRequest::AttachCommon {
                                    sandbox: sandbox.0,
                                    region: args[2] as u32,
                                    va: VirtAddr(args[3]),
                                },
                            )
                            .map_err(|_| Errno::Eperm)?;
                        Ok(0)
                    }
                    _ => Err(Errno::Einval),
                }
            }
            _ => Err(Errno::Einval),
        }
    }

    fn do_fork(&mut self, hw: &mut Hw<'_>, pid: Pid) -> Result<u64, Errno> {
        self.stats.forks = self.stats.forks.saturating_add(1);
        let asid = self.next_asid;
        self.next_asid += 1;
        let child_root = vm::create_address_space(hw, asid)?;
        let (parent_root, vmas, kind) = {
            let t = self.tasks.get(&pid.0).ok_or(Errno::Esrch)?;
            (t.root, t.vmas.clone(), t.kind)
        };
        // Eagerly copy every materialized page (the expensive MMU-heavy
        // path the paper's fork benchmark measures). With batched MMU
        // updates (§9.1) contiguous runs are mapped in one EMC.
        for vma in &vmas {
            if hw.monitor.cfg.batched_mmu {
                let mut sorted = vma.mapped.clone();
                sorted.sort_unstable_by_key(|v| v.0);
                sorted.dedup();
                let mut i = 0;
                while i < sorted.len() {
                    let mut run = 1;
                    while i + run < sorted.len()
                        && sorted[i + run].0 == sorted[i].0 + (run * PAGE_SIZE) as u64
                    {
                        run += 1;
                    }
                    vm::map_user_range(hw, child_root, sorted[i], run as u64, vma.writable)?;
                    i += run;
                }
            } else {
                for page in &vma.mapped {
                    vm::map_user_page(hw, child_root, *page, vma.writable, vma.executable)?;
                }
            }
            for page in &vma.mapped {
                let data = vm::copy_from_user(hw, parent_root, *page, PAGE_SIZE)?;
                vm::copy_to_user(hw, child_root, *page, &data)?;
            }
        }
        let child = Pid(self.next_pid);
        self.next_pid += 1;
        let mut task = Task::new(child, kind, child_root);
        task.vmas = vmas;
        self.tasks.insert(child.0, task);
        self.runqueue.push_back(child);
        Ok(u64::from(child.0))
    }

    // =================================================================
    // User-copy helpers (route through the monitor under Erebor)
    // =================================================================

    /// Read a user buffer on a task's behalf (faulting pages in first).
    ///
    /// # Errors
    /// [`Errno::Efault`] on unmapped/forbidden ranges.
    pub fn read_user(
        &mut self,
        hw: &mut Hw<'_>,
        pid: Pid,
        va: VirtAddr,
        len: usize,
    ) -> Result<Vec<u8>, Errno> {
        let root = self.tasks.get(&pid.0).ok_or(Errno::Esrch)?.root;
        self.ensure_mapped(hw, pid, va, len, false)?;
        vm::copy_from_user(hw, root, va, len)
    }

    /// Write a user buffer on a task's behalf (faulting pages in first).
    ///
    /// # Errors
    /// [`Errno::Efault`] on unmapped/forbidden ranges.
    pub fn write_user(
        &mut self,
        hw: &mut Hw<'_>,
        pid: Pid,
        va: VirtAddr,
        bytes: &[u8],
    ) -> Result<(), Errno> {
        let root = self.tasks.get(&pid.0).ok_or(Errno::Esrch)?.root;
        self.ensure_mapped(hw, pid, va, bytes.len(), true)?;
        vm::copy_to_user(hw, root, va, bytes)
    }

    /// Fault in any unmapped pages of a user range before a copy (the
    /// kernel's `fixup` path).
    fn ensure_mapped(
        &mut self,
        hw: &mut Hw<'_>,
        pid: Pid,
        va: VirtAddr,
        len: usize,
        write: bool,
    ) -> Result<(), Errno> {
        if len == 0 {
            return Ok(());
        }
        let root = self.tasks.get(&pid.0).ok_or(Errno::Esrch)?.root;
        let mut page = va.page_base();
        let end = va.add(len as u64 - 1).page_base();
        loop {
            if !erebor_hw::native::is_mapped(hw.machine, root, page) {
                self.handle_page_fault(hw, pid, page, write)?;
            }
            if page == end {
                break;
            }
            page = page.add(PAGE_SIZE as u64);
        }
        Ok(())
    }

    // =================================================================
    // Live migration
    // =================================================================

    /// Serialise the whole kernel: every task, the filesystem, captured
    /// stdout, swapped-out page contents, and the scheduler state.
    #[must_use]
    pub fn export_state(&self) -> Vec<u8> {
        let mut w = erebor_wire::WireWriter::new();
        w.seq(self.tasks.len());
        for task in self.tasks.values() {
            w.bytes(&task.export_state());
        }
        self.stats.export_to(&mut w);
        w.bytes(&self.vfs.export_state());
        w.seq(self.stdout.len());
        for (pid, out) in &self.stdout {
            w.u32(*pid);
            w.bytes(out);
        }
        w.seq(self.swap.len());
        for (&(root, va), contents) in &self.swap {
            w.u64(root);
            w.u64(va);
            w.bytes(contents);
        }
        w.seq(self.current.len());
        for (&cpu, &pid) in &self.current {
            w.usize(cpu);
            w.u32(pid.0);
        }
        w.seq(self.runqueue.len());
        for pid in &self.runqueue {
            w.u32(pid.0);
        }
        w.u32(self.next_pid);
        w.u32(self.next_asid);
        w.bool(self.initialized);
        w.finish()
    }

    /// Rebuild a kernel from [`Kernel::export_state`] bytes. Everything
    /// is validated before assembly — a torn stream yields an error, not
    /// a half-imported scheduler.
    ///
    /// # Errors
    /// [`erebor_wire::WireError`] on truncation, duplicate pids, a
    /// runqueue or CPU assignment naming an unknown pid, or trailing
    /// bytes.
    pub fn import_state(bytes: &[u8]) -> Result<Kernel, erebor_wire::WireError> {
        use erebor_wire::WireError;
        let mut r = erebor_wire::WireReader::new(bytes);
        let n = r.seq(4)?;
        let mut tasks = BTreeMap::new();
        for _ in 0..n {
            let task = Task::import_state(r.bytes()?)?;
            if tasks.insert(task.pid.0, task).is_some() {
                return Err(WireError::BadValue {
                    what: "duplicate pid",
                });
            }
        }
        let stats = KernelStats::import_from(&mut r)?;
        let vfs = Vfs::import_state(r.bytes()?)?;
        let n = r.seq(8)?;
        let mut stdout = BTreeMap::new();
        for _ in 0..n {
            let pid = r.u32()?;
            let out = r.bytes()?.to_vec();
            stdout.insert(pid, out);
        }
        let n = r.seq(20)?;
        let mut swap = BTreeMap::new();
        for _ in 0..n {
            let root = r.u64()?;
            let va = r.u64()?;
            let contents = r.bytes()?.to_vec();
            swap.insert((root, va), contents);
        }
        let n = r.seq(12)?;
        let mut current = BTreeMap::new();
        for _ in 0..n {
            let cpu = r.usize()?;
            let pid = Pid(r.u32()?);
            if !tasks.contains_key(&pid.0) {
                return Err(WireError::BadValue {
                    what: "current pid unknown",
                });
            }
            current.insert(cpu, pid);
        }
        let n = r.seq(4)?;
        let mut runqueue = VecDeque::with_capacity(n);
        for _ in 0..n {
            let pid = Pid(r.u32()?);
            if !tasks.contains_key(&pid.0) {
                return Err(WireError::BadValue {
                    what: "runqueue pid unknown",
                });
            }
            runqueue.push_back(pid);
        }
        let next_pid = r.u32()?;
        let next_asid = r.u32()?;
        let initialized = r.bool()?;
        r.finish()?;
        if tasks.keys().any(|&pid| pid >= next_pid) {
            return Err(WireError::BadValue {
                what: "next pid not past live pids",
            });
        }
        Ok(Kernel {
            tasks,
            stats,
            vfs,
            stdout,
            swap,
            current,
            runqueue,
            next_pid,
            next_asid,
            initialized,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use erebor_core::boot::{boot_stage1, BootConfig, Cvm};
    use erebor_core::config::{ExecConfig, Mode};
    use erebor_hw::image::Image;
    use erebor_hw::layout::KERNEL_BASE;

    type TestResult = Result<(), Box<dyn std::error::Error>>;

    fn booted(mode: Mode) -> Result<(Cvm, Kernel), Box<dyn std::error::Error>> {
        let cfg = BootConfig {
            cores: 2,
            dram_bytes: 48 * 1024 * 1024,
            config: ExecConfig::new(mode),
            seed: 11,
            paravisor: false,
        };
        let kernel_img = Image::builder("k")
            .benign_text(".text", KERNEL_BASE, 64 * 1024, 5)
            .entry(KERNEL_BASE)
            .build();
        let mut cvm = boot_stage1(cfg)?;
        cvm.load_kernel(&kernel_img)?;
        cvm.enter_kernel()?;
        let kernel = Kernel::new();
        Ok((cvm, kernel))
    }

    fn hw(cvm: &mut Cvm) -> Hw<'_> {
        Hw {
            machine: &mut cvm.machine,
            tdx: &mut cvm.tdx,
            monitor: &mut cvm.monitor,
            cpu: 0,
        }
    }

    #[test]
    fn init_registers_entries_via_emc() -> TestResult {
        let (mut cvm, mut kernel) = booted(Mode::Full)?;
        kernel.init(&mut hw(&mut cvm))?;
        assert_eq!(cvm.monitor.kernel_syscall_entry(), Some(entry::SYSCALL));
        assert_eq!(
            cvm.monitor.kernel_vector_handler(vector::PF),
            Some(entry::PF)
        );
        // The hardware LSTAR still points at the monitor's interposer.
        assert_eq!(
            cvm.machine.cpus[0].msr(Msr::Lstar),
            cvm.monitor.syscall_interposer.0
        );
        assert!(cvm.monitor.stats.emc_calls >= 9);
        Ok(())
    }

    #[test]
    fn init_native_writes_hardware_directly() -> TestResult {
        let (mut cvm, mut kernel) = booted(Mode::Native)?;
        kernel.init(&mut hw(&mut cvm))?;
        assert_eq!(cvm.machine.cpus[0].msr(Msr::Lstar), entry::SYSCALL.0);
        assert_eq!(cvm.monitor.stats.emc_calls, 0);
        Ok(())
    }

    #[test]
    fn spawn_and_schedule_tasks() -> TestResult {
        let (mut cvm, mut kernel) = booted(Mode::Full)?;
        kernel.init(&mut hw(&mut cvm))?;
        let a = kernel.spawn_native(&mut hw(&mut cvm))?;
        let b = kernel.spawn_native(&mut hw(&mut cvm))?;
        assert_ne!(a, b);
        kernel.schedule(&mut hw(&mut cvm), a)?;
        assert_eq!(kernel.current(), Some(a));
        let next = kernel.on_timer(&mut hw(&mut cvm)).ok_or(Errno::Esrch)?;
        assert!(next == a || next == b);
        assert!(kernel.stats.ctx_switches >= 1);
        Ok(())
    }

    #[test]
    fn mmap_pagefault_write_read_roundtrip() -> TestResult {
        let (mut cvm, mut kernel) = booted(Mode::Full)?;
        kernel.init(&mut hw(&mut cvm))?;
        let pid = kernel.spawn_native(&mut hw(&mut cvm))?;
        kernel.schedule(&mut hw(&mut cvm), pid)?;
        let addr = kernel.handle_syscall(&mut hw(&mut cvm), pid, nr::MMAP, [0, 8192, 3, 0, 0, 0]);
        assert!((addr as i64) > 0);
        // Demand-fault the pages via a user copy.
        let pf_before = kernel.stats.page_faults;
        kernel.write_user(
            &mut cvm_hw(&mut cvm),
            pid,
            VirtAddr(addr),
            b"hello across pages",
        )?;
        assert!(kernel.stats.page_faults > pf_before);
        let back = kernel.read_user(&mut cvm_hw(&mut cvm), pid, VirtAddr(addr), 18)?;
        assert_eq!(&back, b"hello across pages");
        Ok(())
    }

    fn cvm_hw(cvm: &mut Cvm) -> Hw<'_> {
        Hw {
            machine: &mut cvm.machine,
            tdx: &mut cvm.tdx,
            monitor: &mut cvm.monitor,
            cpu: 0,
        }
    }

    #[test]
    fn segfault_outside_vma() -> TestResult {
        let (mut cvm, mut kernel) = booted(Mode::Full)?;
        kernel.init(&mut hw(&mut cvm))?;
        let pid = kernel.spawn_native(&mut hw(&mut cvm))?;
        let r = kernel.handle_page_fault(&mut cvm_hw(&mut cvm), pid, VirtAddr(0x7f00_dead_0000), true);
        assert_eq!(r, Err(Errno::Efault));
        Ok(())
    }

    #[test]
    fn vfs_syscalls_through_user_copies() -> TestResult {
        let (mut cvm, mut kernel) = booted(Mode::Full)?;
        kernel.init(&mut hw(&mut cvm))?;
        let pid = kernel.spawn_native(&mut hw(&mut cvm))?;
        kernel.schedule(&mut hw(&mut cvm), pid)?;
        kernel.vfs.put("/data/input.txt", b"file contents".to_vec());
        // Stage the path string in user memory.
        let buf =
            kernel.handle_syscall(&mut cvm_hw(&mut cvm), pid, nr::MMAP, [0, 4096, 3, 0, 0, 0]);
        kernel.write_user(&mut cvm_hw(&mut cvm), pid, VirtAddr(buf), b"/data/input.txt")?;
        let fd = kernel.handle_syscall(&mut cvm_hw(&mut cvm), pid, nr::OPEN, [buf, 15, 0, 0, 0, 0]);
        assert!((fd as i64) >= 3, "open returned {fd}");
        let data_buf = buf + 1024;
        let n = kernel.handle_syscall(
            &mut cvm_hw(&mut cvm),
            pid,
            nr::READ,
            [fd, data_buf, 13, 0, 0, 0],
        );
        assert_eq!(n, 13);
        let back = kernel.read_user(&mut cvm_hw(&mut cvm), pid, VirtAddr(data_buf), 13)?;
        assert_eq!(&back, b"file contents");
        Ok(())
    }

    #[test]
    fn fork_copies_address_space() -> TestResult {
        let (mut cvm, mut kernel) = booted(Mode::Full)?;
        kernel.init(&mut hw(&mut cvm))?;
        let pid = kernel.spawn_native(&mut hw(&mut cvm))?;
        kernel.schedule(&mut hw(&mut cvm), pid)?;
        let addr =
            kernel.handle_syscall(&mut cvm_hw(&mut cvm), pid, nr::MMAP, [0, 4096, 3, 0, 0, 0]);
        kernel.write_user(&mut cvm_hw(&mut cvm), pid, VirtAddr(addr), b"parent data")?;
        let child = kernel.handle_syscall(&mut cvm_hw(&mut cvm), pid, nr::FORK, [0; 6]);
        assert!((child as i64) > 0);
        let child_pid = Pid(child as u32);
        let back = kernel.read_user(&mut cvm_hw(&mut cvm), child_pid, VirtAddr(addr), 11)?;
        assert_eq!(&back, b"parent data");
        // Writes in the child do not affect the parent (separate spaces).
        kernel.write_user(&mut cvm_hw(&mut cvm), child_pid, VirtAddr(addr), b"child  data")?;
        let parent = kernel.read_user(&mut cvm_hw(&mut cvm), pid, VirtAddr(addr), 11)?;
        assert_eq!(&parent, b"parent data");
        assert_eq!(kernel.stats.forks, 1);
        Ok(())
    }

    #[test]
    fn signals_registered_and_delivered() -> TestResult {
        let (mut cvm, mut kernel) = booted(Mode::Full)?;
        kernel.init(&mut hw(&mut cvm))?;
        let pid = kernel.spawn_native(&mut hw(&mut cvm))?;
        kernel.schedule(&mut hw(&mut cvm), pid)?;
        kernel.handle_syscall(
            &mut cvm_hw(&mut cvm),
            pid,
            nr::RT_SIGACTION,
            [10, 0x40_2000, 0, 0, 0, 0],
        );
        kernel.handle_syscall(
            &mut cvm_hw(&mut cvm),
            pid,
            nr::KILL,
            [u64::from(pid.0), 10, 0, 0, 0, 0],
        );
        assert_eq!(kernel.stats.signals_delivered, 1);
        Ok(())
    }

    #[test]
    fn unknown_syscall_is_enosys() -> TestResult {
        let (mut cvm, mut kernel) = booted(Mode::Full)?;
        kernel.init(&mut hw(&mut cvm))?;
        let pid = kernel.spawn_native(&mut hw(&mut cvm))?;
        let r = kernel.handle_syscall(&mut cvm_hw(&mut cvm), pid, 9999, [0; 6]);
        assert_eq!(r as i64, -38);
        Ok(())
    }

    #[test]
    fn futex_wait_wake() -> TestResult {
        let (mut cvm, mut kernel) = booted(Mode::Full)?;
        kernel.init(&mut hw(&mut cvm))?;
        let pid = kernel.spawn_native(&mut hw(&mut cvm))?;
        kernel.handle_syscall(
            &mut cvm_hw(&mut cvm),
            pid,
            nr::FUTEX,
            [0x1000, 0, 0, 0, 0, 0],
        );
        assert_eq!(kernel.task(pid).map(|t| t.state), Some(TaskState::Blocked));
        kernel.handle_syscall(
            &mut cvm_hw(&mut cvm),
            pid,
            nr::FUTEX,
            [0x1000, 1, 1, 0, 0, 0],
        );
        assert_eq!(kernel.task(pid).map(|t| t.state), Some(TaskState::Ready));
        Ok(())
    }

    #[test]
    fn kernel_state_roundtrips_byte_exact() -> TestResult {
        let (mut cvm, mut kernel) = booted(Mode::Full)?;
        kernel.init(&mut hw(&mut cvm))?;
        let pid = kernel.spawn_native(&mut hw(&mut cvm))?;
        kernel.schedule(&mut hw(&mut cvm), pid)?;
        let addr =
            kernel.handle_syscall(&mut cvm_hw(&mut cvm), pid, nr::MMAP, [0, 8192, 3, 0, 0, 0]);
        kernel.write_user(&mut cvm_hw(&mut cvm), pid, VirtAddr(addr), b"resident data")?;
        kernel.vfs.put("/data/f", b"contents".to_vec());
        kernel.handle_syscall(&mut cvm_hw(&mut cvm), pid, nr::WRITE, [1, addr, 8, 0, 0, 0]);
        let bytes = kernel.export_state();
        let back = Kernel::import_state(&bytes)?;
        assert_eq!(back.export_state(), bytes, "fixed point");
        assert_eq!(back.current(), Some(pid));
        assert_eq!(back.stats.syscalls, kernel.stats.syscalls);
        // Truncation sweep: no prefix imports (step keeps it fast).
        for cut in (0..bytes.len()).step_by(5).chain([bytes.len() - 1]) {
            assert!(Kernel::import_state(&bytes[..cut]).is_err());
        }
        Ok(())
    }

    #[test]
    fn kernel_import_rejects_dangling_scheduler_refs() -> TestResult {
        let (mut cvm, mut kernel) = booted(Mode::Full)?;
        kernel.init(&mut hw(&mut cvm))?;
        let pid = kernel.spawn_native(&mut hw(&mut cvm))?;
        kernel.schedule(&mut hw(&mut cvm), pid)?;
        // Forge a stream whose runqueue names a pid with no task.
        kernel.runqueue.push_back(Pid(999));
        let bytes = kernel.export_state();
        assert!(matches!(
            Kernel::import_state(&bytes),
            Err(erebor_wire::WireError::BadValue { .. })
        ));
        Ok(())
    }
}
