//! Syscall numbers (Linux x86-64 ABI) and error codes.

/// Syscall numbers the kernel implements (Linux x86-64 values).
pub mod nr {
    /// `read(fd, buf, len)`.
    pub const READ: u64 = 0;
    /// `write(fd, buf, len)`.
    pub const WRITE: u64 = 1;
    /// `open(path, flags)`.
    pub const OPEN: u64 = 2;
    /// `close(fd)`.
    pub const CLOSE: u64 = 3;
    /// `lseek(fd, off, whence)`.
    pub const LSEEK: u64 = 8;
    /// `mmap(addr, len, prot, flags, fd, off)`.
    pub const MMAP: u64 = 9;
    /// `mprotect(addr, len, prot)`.
    pub const MPROTECT: u64 = 10;
    /// `munmap(addr, len)`.
    pub const MUNMAP: u64 = 11;
    /// `brk(addr)`.
    pub const BRK: u64 = 12;
    /// `rt_sigaction(sig, handler)`.
    pub const RT_SIGACTION: u64 = 13;
    /// `ioctl(fd, req, arg)`.
    pub const IOCTL: u64 = 16;
    /// `sched_yield()`.
    pub const SCHED_YIELD: u64 = 24;
    /// `nanosleep(ns)`.
    pub const NANOSLEEP: u64 = 35;
    /// `getpid()`.
    pub const GETPID: u64 = 39;
    /// `clone(flags, stack)`.
    pub const CLONE: u64 = 56;
    /// `fork()`.
    pub const FORK: u64 = 57;
    /// `exit(status)`.
    pub const EXIT: u64 = 60;
    /// `kill(pid, sig)`.
    pub const KILL: u64 = 62;
    /// `futex(addr, op, val)`.
    pub const FUTEX: u64 = 202;
}

/// Kernel error codes (negated Linux errno values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Errno {
    /// No such file or directory.
    Enoent,
    /// Bad file descriptor.
    Ebadf,
    /// Out of memory.
    Enomem,
    /// Bad address.
    Efault,
    /// Invalid argument.
    Einval,
    /// Function not implemented.
    Enosys,
    /// Operation not permitted.
    Eperm,
    /// No such process.
    Esrch,
    /// Try again (futex wait).
    Eagain,
}

impl Errno {
    /// The Linux numeric value.
    #[must_use]
    pub fn code(self) -> i64 {
        match self {
            Errno::Enoent => 2,
            Errno::Esrch => 3,
            Errno::Ebadf => 9,
            Errno::Eagain => 11,
            Errno::Enomem => 12,
            Errno::Efault => 14,
            Errno::Einval => 22,
            Errno::Enosys => 38,
            Errno::Eperm => 1,
        }
    }

    /// The value returned in `rax` (negated errno, Linux convention).
    #[must_use]
    pub fn as_ret(self) -> u64 {
        (-self.code()) as u64
    }
}

impl core::fmt::Display for Errno {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{self:?}({})", self.code())
    }
}

impl std::error::Error for Errno {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errno_linux_values() {
        assert_eq!(Errno::Enoent.code(), 2);
        assert_eq!(Errno::Enomem.code(), 12);
        assert_eq!(Errno::Enoent.as_ret() as i64, -2);
    }
}
