//! The synthetic kernel image builder.
//!
//! Produces the byte image of the instrumented guest kernel that the
//! monitor verifies at stage-two boot (§5.1): executable sections free of
//! sensitive instructions (all such operations were replaced by EMCs at
//! "build time"), plus data sections. Negative-test builders inject
//! sensitive encodings to exercise the verifier.

use erebor_hw::image::{Image, SectionKind};
use erebor_hw::insn::{encode, SensitiveClass};
use erebor_hw::layout::KERNEL_BASE;
use erebor_hw::VirtAddr;

/// Default text size (64 KiB covers every `entry::*` offset).
pub const TEXT_SIZE: usize = 64 * 1024;

/// Build the benign (properly instrumented) kernel image.
#[must_use]
pub fn benign_kernel(seed: u64) -> Image {
    Image::builder("linux-6.6-erebor")
        .benign_text(".text", KERNEL_BASE, TEXT_SIZE, seed)
        .section(
            ".rodata",
            VirtAddr(KERNEL_BASE.0 + 0x0100_0000),
            SectionKind::Rodata,
            vec![0xaa; 4096],
        )
        .section(
            ".data",
            VirtAddr(KERNEL_BASE.0 + 0x0200_0000),
            SectionKind::Data,
            vec![0; 8192],
        )
        .entry(KERNEL_BASE)
        .build()
}

/// Build a *malicious* kernel image hiding one sensitive instruction of
/// `class` at `offset` in its text (for verifier tests; paper claim C1).
#[must_use]
pub fn malicious_kernel(seed: u64, class: SensitiveClass, offset: usize) -> Image {
    let benign = benign_kernel(seed);
    let mut text = benign.sections[0].bytes.clone();
    let enc = encode(class);
    assert!(offset + enc.len() <= text.len(), "offset out of range");
    text[offset..offset + enc.len()].copy_from_slice(&enc);
    Image::builder("evil-kernel")
        .section(".text", KERNEL_BASE, SectionKind::Text, text)
        .entry(KERNEL_BASE)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_kernel_scans_clean() {
        assert!(benign_kernel(3).scan_sensitive().is_empty());
    }

    #[test]
    fn malicious_kernel_scans_dirty() {
        for class in SensitiveClass::ALL {
            let img = malicious_kernel(3, class, 0x5000);
            let findings = img.scan_sensitive();
            assert!(
                findings.iter().any(|(_, f)| f.class == class),
                "{class:?} not found"
            );
        }
    }

    #[test]
    fn entry_offsets_inside_text() {
        let img = benign_kernel(1);
        let text_end = KERNEL_BASE.0 + img.sections[0].bytes.len() as u64;
        for e in [
            crate::entry::SYSCALL,
            crate::entry::PF,
            crate::entry::VE,
            crate::entry::TIMER,
            crate::entry::DEVICE,
        ] {
            assert!(e.0 >= KERNEL_BASE.0 && e.0 < text_end, "{e} outside text");
        }
    }
}
