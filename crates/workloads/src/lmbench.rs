//! LMBench-style microbenchmarks (Fig. 8, artifact E1).
//!
//! Each benchmark measures the simulated per-operation latency of one
//! system-event class for a *native* (non-sandboxed) process. Under
//! Erebor, the monitor's system-wide interposition (syscall entry, IDT,
//! user copies, MMU delegation) is what these benchmarks feel.

use erebor_hw::PAGE_SIZE;
use erebor_kernel::syscall::nr;
use erebor_libos::api::{Sys, SysError};

/// One benchmark's result.
#[derive(Debug, Clone, Copy)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: &'static str,
    /// Simulated cycles per operation.
    pub cycles_per_op: f64,
    /// Operations performed.
    pub ops: u64,
}

fn measure(
    name: &'static str,
    sys: &mut dyn Sys,
    ops: u64,
    mut f: impl FnMut(&mut dyn Sys, u64) -> Result<(), SysError>,
) -> Result<BenchResult, SysError> {
    let start = sys.cycles();
    for i in 0..ops {
        f(sys, i)?;
    }
    let cycles = sys.cycles() - start;
    Ok(BenchResult {
        name,
        cycles_per_op: cycles as f64 / ops as f64,
        ops,
    })
}

/// `lat_syscall null`: getpid in a loop.
///
/// # Errors
/// Platform errors.
pub fn bench_null(sys: &mut dyn Sys, ops: u64) -> Result<BenchResult, SysError> {
    measure("null", sys, ops, |s, _| {
        s.syscall(nr::GETPID, [0; 6]).map(|_| ())
    })
}

/// `lat_syscall read`: 1-byte reads of an open file (includes the
/// monitor-emulated user copy).
///
/// # Errors
/// Platform errors.
pub fn bench_read(sys: &mut dyn Sys, ops: u64) -> Result<BenchResult, SysError> {
    let buf = sys.syscall(nr::MMAP, [0, 4096, 3, 0, 0, 0])?;
    sys.write_mem(buf, b"/bench/data")?;
    let fd = sys.syscall(nr::OPEN, [buf, 11, 0x40, 0, 0, 0])?;
    sys.syscall(nr::WRITE, [fd, buf, 64, 0, 0, 0])?;
    sys.syscall(nr::LSEEK, [fd, 0, 0, 0, 0, 0])?;
    let data = buf + 2048;
    measure("read", sys, ops, |s, i| {
        if i % 32 == 0 {
            s.syscall(nr::LSEEK, [fd, 0, 0, 0, 0, 0])?;
        }
        s.syscall(nr::READ, [fd, data, 1, 0, 0, 0]).map(|_| ())
    })
}

/// `lat_syscall write`: 1-byte writes to /dev/null-like stdout.
///
/// # Errors
/// Platform errors.
pub fn bench_write(sys: &mut dyn Sys, ops: u64) -> Result<BenchResult, SysError> {
    let buf = sys.syscall(nr::MMAP, [0, 4096, 3, 0, 0, 0])?;
    sys.write_mem(buf, b"x")?;
    measure("write", sys, ops, |s, _| {
        s.syscall(nr::WRITE, [1, buf, 1, 0, 0, 0]).map(|_| ())
    })
}

/// `lat_sig install`: sigaction registration.
///
/// # Errors
/// Platform errors.
pub fn bench_signal_install(sys: &mut dyn Sys, ops: u64) -> Result<BenchResult, SysError> {
    measure("sig-install", sys, ops, |s, i| {
        s.syscall(nr::RT_SIGACTION, [10 + (i % 3), 0x40_3000, 0, 0, 0, 0])
            .map(|_| ())
    })
}

/// `lat_sig catch`: self-signal delivery.
///
/// # Errors
/// Platform errors.
pub fn bench_signal_catch(sys: &mut dyn Sys, ops: u64) -> Result<BenchResult, SysError> {
    let pid = sys.syscall(nr::GETPID, [0; 6])?;
    sys.syscall(nr::RT_SIGACTION, [10, 0x40_3000, 0, 0, 0, 0])?;
    measure("sig-catch", sys, ops, |s, _| {
        s.syscall(nr::KILL, [pid, 10, 0, 0, 0, 0]).map(|_| ())
    })
}

/// `lat_proc fork`: process creation + teardown (the MMU-heavy path).
///
/// # Errors
/// Platform errors.
pub fn bench_fork(sys: &mut dyn Sys, ops: u64) -> Result<BenchResult, SysError> {
    // A few mapped pages so fork has something to copy.
    let buf = sys.syscall(nr::MMAP, [0, 8 * PAGE_SIZE as u64, 3, 0, 0, 0])?;
    for p in 0..8u64 {
        sys.write_mem(buf + p * PAGE_SIZE as u64, b"fork payload")?;
    }
    measure("fork", sys, ops, |s, _| {
        let child = s.syscall(nr::FORK, [0; 6])?;
        let _ = child;
        Ok(())
    })
}

/// `lat_mmap`: map + touch + unmap a region.
///
/// # Errors
/// Platform errors.
pub fn bench_mmap(sys: &mut dyn Sys, ops: u64) -> Result<BenchResult, SysError> {
    measure("mmap", sys, ops, |s, _| {
        let va = s.syscall(nr::MMAP, [0, 4 * PAGE_SIZE as u64, 3, 0, 0, 0])?;
        s.touch(va, true)?;
        s.syscall(nr::MUNMAP, [va, 4 * PAGE_SIZE as u64, 0, 0, 0, 0])?;
        Ok(())
    })
}

/// `lat_pagefault`: first-touch faults across a fresh mapping.
///
/// # Errors
/// Platform errors.
pub fn bench_pagefault(sys: &mut dyn Sys, ops: u64) -> Result<BenchResult, SysError> {
    let pages_per_round = 64u64;
    let rounds = ops.div_ceil(pages_per_round);
    let start = sys.cycles();
    let mut faults = 0u64;
    for _ in 0..rounds {
        let va = sys.syscall(
            nr::MMAP,
            [0, pages_per_round * PAGE_SIZE as u64, 3, 0, 0, 0],
        )?;
        for p in 0..pages_per_round {
            sys.touch(va + p * PAGE_SIZE as u64, true)?;
            faults += 1;
        }
        sys.syscall(
            nr::MUNMAP,
            [va, pages_per_round * PAGE_SIZE as u64, 0, 0, 0, 0],
        )?;
    }
    let cycles = sys.cycles() - start;
    Ok(BenchResult {
        name: "pagefault",
        cycles_per_op: cycles as f64 / faults as f64,
        ops: faults,
    })
}

/// The full Fig. 8 suite, in figure order.
///
/// # Errors
/// Platform errors.
pub fn run_suite(sys: &mut dyn Sys, ops: u64) -> Result<Vec<BenchResult>, SysError> {
    Ok(vec![
        bench_null(sys, ops)?,
        bench_read(sys, ops)?,
        bench_write(sys, ops)?,
        bench_signal_install(sys, ops)?,
        bench_signal_catch(sys, ops)?,
        bench_mmap(sys, ops / 4 + 1)?,
        bench_pagefault(sys, ops)?,
        bench_fork(sys, (ops / 16).max(4))?,
    ])
}
