//! DrugBank-style private information retrieval (Table 5 row 3): an
//! in-memory hashmap database in common memory, queried at high rates.
//! Real open-addressing lookups drive the shared-page access pattern.

use crate::env::{Env, Workload, WorkloadParams};
use erebor_libos::api::SysError;

/// Number of drug records in the simulated database.
const RECORDS: u64 = 65_536;
/// Hash buckets per shared page (record directory density).
const BUCKETS_PER_PAGE: u64 = 512;
/// Compute units per query (parse + hash + compare at paper scale:
/// 2.2M queries in 12.89 s → ~12.3k cycles wall per query on 8 threads).
const UNITS_PER_QUERY: u64 = 98_000;

/// The information-retrieval service.
#[derive(Debug, Default)]
pub struct Retrieval {
    queries_done: u64,
}

fn hash(q: u64) -> u64 {
    let mut x = q.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^ (x >> 33)
}

impl Workload for Retrieval {
    fn name(&self) -> &'static str {
        "drugbank"
    }

    fn params(&self) -> WorkloadParams {
        WorkloadParams {
            private_pages: 128,
            shared_pages: 128,
            logical_private: 814 << 20, // Table 6: 814 MB confined
            logical_shared: 400 << 20,  // Table 6: 400 MB common DB
            threads: 8,
        }
    }

    fn serve(&mut self, env: &mut dyn Env, request: &[u8]) -> Result<Vec<u8>, SysError> {
        // Request: "q=<count>;<seed>" — a batch of queries.
        let text = String::from_utf8_lossy(request);
        let (count, seed) = match text.strip_prefix("q=") {
            Some(rest) => {
                let (n, s) = rest.split_once(';').unwrap_or(("100", "0"));
                (
                    n.parse::<u64>().unwrap_or(100).clamp(1, 5_000_000),
                    s.parse::<u64>().unwrap_or(0),
                )
            }
            None => (100, 0),
        };
        let mut hits = 0u64;
        for q in 0..count {
            let key = hash(seed.wrapping_add(self.queries_done + q)) % (2 * RECORDS);
            // Open-addressing probe: directory page then 1-2 record pages.
            let bucket = hash(key) % (RECORDS * 2);
            env.touch_shared(bucket / BUCKETS_PER_PAGE)?;
            if key < RECORDS {
                hits += 1;
                env.touch_shared(RECORDS / BUCKETS_PER_PAGE + key % 64)?;
            }
            env.compute(UNITS_PER_QUERY)?;
            if q % 256 == 0 {
                env.sync(1)?;
            }
            if q % 1024 == 0 {
                env.cpuid()?;
            }
            // Result accumulation in confined memory.
            if q % 32 == 0 {
                env.touch_private(q / 32)?;
            }
        }
        self.queries_done += count;
        Ok(format!("queries={count} hits={hits}").into_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::tests_support::MockEnv;

    #[test]
    fn hit_rate_near_half() {
        let mut w = Retrieval::default();
        let mut e = MockEnv::default();
        let out = String::from_utf8(w.serve(&mut e, b"q=2000;7").unwrap()).unwrap();
        let hits: u64 = out.split("hits=").nth(1).unwrap().parse().unwrap();
        // Keys uniform over 2×RECORDS, half exist.
        assert!((800..1200).contains(&hits), "hits={hits}");
    }

    #[test]
    fn batch_is_deterministic() {
        let mut w1 = Retrieval::default();
        let mut w2 = Retrieval::default();
        let mut e1 = MockEnv::default();
        let mut e2 = MockEnv::default();
        assert_eq!(
            w1.serve(&mut e1, b"q=500;1").unwrap(),
            w2.serve(&mut e2, b"q=500;1").unwrap()
        );
    }

    #[test]
    fn continuation_differs() {
        // Serving twice advances the query stream (stateful service).
        let mut w = Retrieval::default();
        let mut e = MockEnv::default();
        let a = w.serve(&mut e, b"q=100;1").unwrap();
        let b = w.serve(&mut e, b"q=100;1").unwrap();
        // Same count, possibly different hits.
        assert!(!a.is_empty() && !b.is_empty());
        assert_eq!(w.queries_done, 200);
    }
}
