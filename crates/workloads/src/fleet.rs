//! Fleet-scale serving harness: a seeded, deterministic request-driven
//! load generator for many-sandbox campaigns (DESIGN.md §11).
//!
//! The driver does three things, all without touching the platform crate
//! (the interpreter loop lives in `benches/fleet.rs` and the fleet test
//! suites, which own a `Platform`):
//!
//! 1. **Schedule generation** — [`FleetDriver::schedule`] expands a
//!    [`FleetConfig`] into a flat op list (deploys, client connects,
//!    requests, churn kills/redeploys). Same config → byte-identical
//!    schedule, so two interpreter runs are comparable op-for-op.
//! 2. **Workload construction** — [`FleetClass::workload`] builds the
//!    per-slot service program: Nginx/OpenSSH-shaped [`FleetServer`]s
//!    carrying a configurable confined footprint, plus the existing
//!    [`crate::retrieval::Retrieval`] and [`crate::llm::LlmInference`]
//!    programs for the data-heavy share of the mix.
//! 3. **Latency accounting** — [`LatencyRecorder`] turns per-request
//!    monitor-gate cycle deltas into p50/p99/p999 figures.
//!
//! Schedule invariants the interpreter may rely on:
//! * Shared-region classes (retrieval, LLM) occupy the lowest slots and
//!   deploy before everything else, so the LLM instance — whose manifest
//!   declares the largest shared window — creates the common region, and
//!   every later attacher's wrapped reads stay inside it.
//! * Churn victims are always non-client Nginx/OpenSSH slots: their
//!   manifests declare no common region, so redeploying them after the
//!   first client record has sealed the shared region never triggers a
//!   write-after-seal kill.

use crate::env::{Env, Workload, WorkloadParams};
use crate::llm::LlmInference;
use crate::retrieval::Retrieval;
use erebor_libos::api::SysError;

/// Fixed per-request server work: accept, parse, headers, teardown
/// (mirrors the native servers.rs cost model).
const REQUEST_FIXED_CYCLES: u64 = 40_000;
/// Cycles per encrypted byte (OpenSSH-style ChaCha20 + MAC).
const ENC_CYCLES_PER_BYTE: u64 = 4;
/// Cycles per copied byte (memcpy + TCP segmentation).
const COPY_CYCLES_PER_BYTE: u64 = 3;
/// OpenSSH transfer chunk (cipher-block pipeline buffers).
const SSH_CHUNK: u64 = 16 * 1024;
/// Nginx sendfile chunk (larger zero-copy spans per syscall).
const NGINX_CHUNK: u64 = 64 * 1024;
/// A fleet server consults the emulated cpuid this often (per request).
const CPUID_EVERY: u64 = 16;
/// File sizes the load generator requests, picked per-request by seed.
const FILE_SIZES: [u64; 3] = [4 * 1024, 16 * 1024, 64 * 1024];

/// splitmix64: the schedule's only source of randomness. Deterministic,
/// seed-stable across platforms; the same generator the chaos suites use.
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The class of service program occupying one fleet slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetClass {
    /// Static-file serving: large sendfile chunks, no encryption.
    Nginx,
    /// Encrypted transfer: smaller chunks, per-byte cipher cost.
    Openssh,
    /// Vector retrieval over the shared database ([`Retrieval`]).
    Retrieval,
    /// Token generation streaming shared weights ([`LlmInference`]).
    Llm,
}

impl FleetClass {
    /// Whether this class's manifest attaches the shared common region.
    #[must_use]
    pub fn uses_shared_region(self) -> bool {
        matches!(self, FleetClass::Retrieval | FleetClass::Llm)
    }

    /// Build the slot's workload. `private_pages` pads the confined
    /// footprint of the Nginx/OpenSSH servers (the fleet's allocator
    /// stressor); the retrieval/LLM programs keep their own shapes.
    #[must_use]
    pub fn workload(self, private_pages: u64) -> Box<dyn Workload> {
        match self {
            FleetClass::Nginx => Box::new(FleetServer::new(self, private_pages)),
            FleetClass::Openssh => Box::new(FleetServer::new(self, private_pages)),
            FleetClass::Retrieval => Box::new(Retrieval::default()),
            FleetClass::Llm => Box::new(LlmInference::default()),
        }
    }
}

/// An Nginx/OpenSSH-shaped sandboxed service: per-request fixed cost plus
/// per-chunk copy (and, for OpenSSH, encryption) cycles, a rotating
/// private-page working set, and a periodic cpuid probe. The request is
/// `f=<bytes>` — the reply echoes the byte count served.
#[derive(Debug)]
pub struct FleetServer {
    class: FleetClass,
    private_pages: u64,
    requests: u64,
}

impl FleetServer {
    /// A server of `class` with a `private_pages` confined footprint.
    ///
    /// # Panics
    /// If `class` is not one of the server shapes.
    #[must_use]
    pub fn new(class: FleetClass, private_pages: u64) -> FleetServer {
        assert!(
            matches!(class, FleetClass::Nginx | FleetClass::Openssh),
            "FleetServer models the Nginx/OpenSSH classes"
        );
        FleetServer {
            class,
            private_pages: private_pages.max(1),
            requests: 0,
        }
    }
}

impl Workload for FleetServer {
    fn name(&self) -> &'static str {
        match self.class {
            FleetClass::Openssh => "fleet-openssh",
            _ => "fleet-nginx",
        }
    }

    fn params(&self) -> WorkloadParams {
        WorkloadParams {
            private_pages: self.private_pages,
            logical_private: self.private_pages * erebor_hw::PAGE_SIZE as u64,
            shared_pages: 0,
            logical_shared: 0,
            threads: 1,
        }
    }

    fn serve(&mut self, env: &mut dyn Env, request: &[u8]) -> Result<Vec<u8>, SysError> {
        let text = String::from_utf8_lossy(request);
        let bytes = text
            .strip_prefix("f=")
            .and_then(|n| n.parse::<u64>().ok())
            .unwrap_or(FILE_SIZES[0]);
        let (chunk, per_byte) = match self.class {
            FleetClass::Openssh => (SSH_CHUNK, ENC_CYCLES_PER_BYTE + COPY_CYCLES_PER_BYTE),
            _ => (NGINX_CHUNK, COPY_CYCLES_PER_BYTE),
        };
        env.compute(REQUEST_FIXED_CYCLES)?;
        let mut sent = 0u64;
        while sent < bytes {
            let n = chunk.min(bytes - sent);
            env.compute(n * per_byte)?;
            // Each chunk stages through a different private buffer page.
            env.touch_private((self.requests + sent / chunk) % self.private_pages)?;
            sent += n;
        }
        self.requests += 1;
        if self.requests.is_multiple_of(CPUID_EVERY) {
            env.cpuid()?;
        }
        Ok(format!("served={bytes}").into_bytes())
    }
}

/// One step of a fleet campaign, interpreted against a platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetOp {
    /// Deploy `class` into slot `slot`.
    Deploy {
        /// Slot index, `0..sandboxes`.
        slot: usize,
        /// Program class.
        class: FleetClass,
    },
    /// Attest and connect a client to slot `slot`.
    Connect {
        /// Slot index, `0..clients`.
        slot: usize,
    },
    /// One request/response round trip on slot `slot`'s client.
    Request {
        /// Slot index, `0..clients`.
        slot: usize,
        /// Request bytes for the slot's program.
        payload: Vec<u8>,
    },
    /// Kill slot `slot`'s sandbox and redeploy `class` into it.
    Churn {
        /// Victim slot, always `clients..sandboxes`.
        slot: usize,
        /// Replacement class (never a shared-region class).
        class: FleetClass,
    },
}

/// Campaign shape. [`FleetConfig::full`] is the persisted-benchmark
/// configuration; [`FleetConfig::smoke`] the CI-sized one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Schedule seed.
    pub seed: u64,
    /// Concurrent sandboxes booted.
    pub sandboxes: usize,
    /// Slots with connected clients (requests route among these).
    pub clients: usize,
    /// Total request round trips.
    pub requests: usize,
    /// Kill+redeploy cycles interleaved with the request stream.
    pub churn: usize,
    /// Confined footprint (pages) of each Nginx/OpenSSH server.
    pub private_pages: u64,
    /// Per-sandbox confined budget passed to deploy.
    pub budget_pages: u64,
    /// Slots running [`LlmInference`].
    pub llm_slots: usize,
    /// Slots running [`Retrieval`].
    pub retrieval_slots: usize,
}

impl FleetConfig {
    /// The full campaign behind `BENCH_fleet.json`: 768 sandboxes,
    /// 100k requests, 128 churn cycles.
    #[must_use]
    pub fn full() -> FleetConfig {
        FleetConfig {
            seed: 0xf1ee_7001,
            sandboxes: 768,
            clients: 64,
            requests: 100_000,
            churn: 128,
            private_pages: 480,
            budget_pages: 4096,
            llm_slots: 1,
            retrieval_slots: 6,
        }
    }

    /// CI-sized smoke campaign: same shape, two orders of magnitude
    /// smaller.
    #[must_use]
    pub fn smoke() -> FleetConfig {
        FleetConfig {
            seed: 0xf1ee_7001,
            sandboxes: 64,
            clients: 16,
            requests: 2_000,
            churn: 16,
            private_pages: 96,
            budget_pages: 4096,
            llm_slots: 1,
            retrieval_slots: 2,
        }
    }

    /// The class occupying `slot` at boot: shared-region classes first
    /// (LLM lowest, so its manifest creates the common region at its
    /// largest declared size), then alternating Nginx/OpenSSH.
    #[must_use]
    pub fn class_of(&self, slot: usize) -> FleetClass {
        if slot < self.llm_slots {
            FleetClass::Llm
        } else if slot < self.llm_slots + self.retrieval_slots {
            FleetClass::Retrieval
        } else if slot.is_multiple_of(2) {
            FleetClass::Nginx
        } else {
            FleetClass::Openssh
        }
    }

    fn validate(&self) {
        assert!(self.sandboxes >= 1, "need at least one sandbox");
        assert!(
            self.clients >= 1 && self.clients < self.sandboxes,
            "need clients in 1..sandboxes so churn has victims"
        );
        assert!(
            self.llm_slots + self.retrieval_slots <= self.clients,
            "shared-region slots must all be client slots (never churned)"
        );
    }
}

/// Expands a [`FleetConfig`] into its deterministic op schedule.
#[derive(Debug)]
pub struct FleetDriver {
    /// The campaign shape.
    pub cfg: FleetConfig,
}

impl FleetDriver {
    /// A driver for `cfg`.
    ///
    /// # Panics
    /// On inconsistent configs (no churn victims, shared-region slots
    /// outside the client range).
    #[must_use]
    pub fn new(cfg: FleetConfig) -> FleetDriver {
        cfg.validate();
        FleetDriver { cfg }
    }

    /// The full op schedule: deploys, connects, then the request stream
    /// with churn interleaved at even intervals. Pure function of the
    /// config — two calls return identical vectors.
    #[must_use]
    pub fn schedule(&self) -> Vec<FleetOp> {
        let cfg = &self.cfg;
        let mut rng = cfg.seed;
        let mut ops =
            Vec::with_capacity(cfg.sandboxes + cfg.clients + cfg.requests + cfg.churn);
        for slot in 0..cfg.sandboxes {
            ops.push(FleetOp::Deploy {
                slot,
                class: cfg.class_of(slot),
            });
        }
        for slot in 0..cfg.clients {
            ops.push(FleetOp::Connect { slot });
        }
        let churn_every = cfg
            .requests
            .checked_div(cfg.churn)
            .unwrap_or(usize::MAX)
            .max(1);
        for i in 0..cfg.requests {
            let slot = self.pick_request_slot(&mut rng);
            ops.push(FleetOp::Request {
                slot,
                payload: self.payload_for(cfg.class_of(slot), &mut rng),
            });
            if (i + 1) % churn_every == 0 && cfg.churn > 0 {
                // Victims are non-client slots: by construction all
                // Nginx/OpenSSH, so redeploy never writes a sealed
                // common region. Alternate the replacement class.
                let victims = cfg.sandboxes - cfg.clients;
                let slot = cfg.clients + (splitmix64(&mut rng) as usize % victims);
                let class = if splitmix64(&mut rng).is_multiple_of(2) {
                    FleetClass::Nginx
                } else {
                    FleetClass::Openssh
                };
                ops.push(FleetOp::Churn { slot, class });
            }
        }
        ops
    }

    /// Weighted client pick: the LLM slot sees roughly one request in
    /// 256 and each retrieval slot one in ~64; the Nginx/OpenSSH client
    /// slots split the rest uniformly.
    fn pick_request_slot(&self, rng: &mut u64) -> usize {
        let cfg = &self.cfg;
        let roll = splitmix64(rng);
        if cfg.llm_slots > 0 && roll.is_multiple_of(256) {
            (splitmix64(rng) as usize) % cfg.llm_slots
        } else if cfg.retrieval_slots > 0 && roll % 16 == 1 {
            cfg.llm_slots + (splitmix64(rng) as usize) % cfg.retrieval_slots
        } else {
            let shared = cfg.llm_slots + cfg.retrieval_slots;
            shared + (splitmix64(rng) as usize) % (cfg.clients - shared)
        }
    }

    fn payload_for(&self, class: FleetClass, rng: &mut u64) -> Vec<u8> {
        match class {
            FleetClass::Llm => b"gen=1;the quick brown fox".to_vec(),
            FleetClass::Retrieval => {
                format!("q=2;{}", splitmix64(rng) % 1000).into_bytes()
            }
            _ => {
                let size = FILE_SIZES[splitmix64(rng) as usize % FILE_SIZES.len()];
                format!("f={size}").into_bytes()
            }
        }
    }
}

/// Accumulates per-request latency samples (monitor-gate cycle deltas)
/// and reports percentiles.
#[derive(Debug, Default)]
pub struct LatencyRecorder {
    samples: Vec<u64>,
}

impl LatencyRecorder {
    /// An empty recorder.
    #[must_use]
    pub fn new() -> LatencyRecorder {
        LatencyRecorder::default()
    }

    /// Record one sample.
    pub fn push(&mut self, sample: u64) {
        self.samples.push(sample);
    }

    /// Samples recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `q`-quantile (nearest-rank on the sorted samples); 0 when
    /// empty. `q` is clamped to `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let q = q.clamp(0.0, 1.0);
        // Deterministic nearest-rank: ceil(q·n) − 1.
        let idx = ((sorted.len() as f64 * q).ceil() as usize).saturating_sub(1);
        sorted[idx.min(sorted.len() - 1)]
    }

    /// Mean sample, 0 when empty.
    #[must_use]
    pub fn mean(&self) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let sum: u128 = self.samples.iter().map(|&s| u128::from(s)).sum();
        (sum / self.samples.len() as u128) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic() {
        let d = FleetDriver::new(FleetConfig::smoke());
        assert_eq!(d.schedule(), d.schedule());
    }

    #[test]
    fn schedule_shape_matches_config() {
        let cfg = FleetConfig::smoke();
        let ops = FleetDriver::new(cfg).schedule();
        let deploys = ops
            .iter()
            .filter(|o| matches!(o, FleetOp::Deploy { .. }))
            .count();
        let connects = ops
            .iter()
            .filter(|o| matches!(o, FleetOp::Connect { .. }))
            .count();
        let requests = ops
            .iter()
            .filter(|o| matches!(o, FleetOp::Request { .. }))
            .count();
        let churns = ops
            .iter()
            .filter(|o| matches!(o, FleetOp::Churn { .. }))
            .count();
        assert_eq!(deploys, cfg.sandboxes);
        assert_eq!(connects, cfg.clients);
        assert_eq!(requests, cfg.requests);
        assert_eq!(churns, cfg.churn);
    }

    #[test]
    fn churn_never_targets_clients_or_shared_regions() {
        let cfg = FleetConfig::smoke();
        for op in FleetDriver::new(cfg).schedule() {
            if let FleetOp::Churn { slot, class } = op {
                assert!(slot >= cfg.clients, "churned a client slot {slot}");
                assert!(!class.uses_shared_region());
                assert!(!cfg.class_of(slot).uses_shared_region());
            }
        }
    }

    #[test]
    fn shared_classes_occupy_lowest_slots_llm_first() {
        let cfg = FleetConfig::full();
        assert_eq!(cfg.class_of(0), FleetClass::Llm);
        for slot in cfg.llm_slots..cfg.llm_slots + cfg.retrieval_slots {
            assert_eq!(cfg.class_of(slot), FleetClass::Retrieval);
        }
        for slot in cfg.llm_slots + cfg.retrieval_slots..cfg.sandboxes {
            assert!(!cfg.class_of(slot).uses_shared_region());
        }
    }

    #[test]
    fn requests_route_to_clients_only() {
        let cfg = FleetConfig::smoke();
        for op in FleetDriver::new(cfg).schedule() {
            if let FleetOp::Request { slot, .. } = op {
                assert!(slot < cfg.clients);
            }
        }
    }

    #[test]
    fn full_config_meets_issue_floors() {
        let cfg = FleetConfig::full();
        assert!(cfg.sandboxes >= 256);
        assert!(cfg.requests >= 100_000);
    }

    #[test]
    fn recorder_percentiles() {
        let mut r = LatencyRecorder::new();
        for v in 1..=1000u64 {
            r.push(v);
        }
        assert_eq!(r.quantile(0.5), 500);
        assert_eq!(r.quantile(0.99), 990);
        assert_eq!(r.quantile(0.999), 999);
        assert_eq!(r.quantile(1.0), 1000);
        assert_eq!(r.mean(), 500);
        assert!(!r.is_empty());
        assert_eq!(r.len(), 1000);
    }

    #[test]
    fn recorder_empty_is_zero() {
        let r = LatencyRecorder::new();
        assert_eq!(r.quantile(0.999), 0);
        assert_eq!(r.mean(), 0);
    }

    #[test]
    fn fleet_server_params_carry_footprint() {
        let s = FleetServer::new(FleetClass::Nginx, 480);
        assert_eq!(s.params().private_pages, 480);
        assert_eq!(s.params().shared_pages, 0);
        assert_eq!(s.name(), "fleet-nginx");
        assert_eq!(FleetServer::new(FleetClass::Openssh, 1).name(), "fleet-openssh");
    }

    #[test]
    fn splitmix_reference_values() {
        // Known-good splitmix64 outputs for seed 0 (reference vector).
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xe220_a839_7b1d_cdaf);
        assert_eq!(splitmix64(&mut s), 0x6e78_9e6a_a1b9_65f4);
    }
}
