//! The workload execution environment abstraction.
//!
//! A [`Workload`] sees memory as *private* pages (confined memory in a
//! sandbox; anonymous mmap natively) and *shared* pages (a common region
//! in a sandbox; private replicated memory natively — which is exactly the
//! memory-saving comparison of §9.2). It performs computation, thread
//! synchronization, `cpuid`, and data I/O through the environment, so one
//! workload definition measures every configuration of Fig. 9.

use erebor_hw::PAGE_SIZE;
use erebor_libos::api::{Sys, SysError};
use erebor_libos::manifest::Manifest;
use erebor_libos::os::{LibOs, ServiceProgram};
use erebor_libos::thread::{SPINLOCK_UNCONTENDED, SPIN_CONTENTION_PER_THREAD};

/// Sizing and concurrency parameters of a workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadParams {
    /// Private (confined) pages used.
    pub private_pages: u64,
    /// Shared (common) pages in the simulated window.
    pub shared_pages: u64,
    /// Declared logical private bytes (Table 6 "Conf.").
    pub logical_private: u64,
    /// Declared logical shared bytes (Table 6 "Com."; 0 = none).
    pub logical_shared: u64,
    /// Worker threads.
    pub threads: usize,
}

/// A workload kernel.
pub trait Workload {
    /// Name for tables.
    fn name(&self) -> &'static str;

    /// Sizing parameters.
    fn params(&self) -> WorkloadParams;

    /// Pre-data initialization (populate shared state).
    ///
    /// # Errors
    /// Platform errors.
    fn init(&mut self, env: &mut dyn Env) -> Result<(), SysError> {
        let _ = env;
        Ok(())
    }

    /// Process one request; returns the response bytes.
    ///
    /// # Errors
    /// Platform errors.
    fn serve(&mut self, env: &mut dyn Env, request: &[u8]) -> Result<Vec<u8>, SysError>;
}

impl Workload for Box<dyn Workload> {
    fn name(&self) -> &'static str {
        self.as_ref().name()
    }
    fn params(&self) -> WorkloadParams {
        self.as_ref().params()
    }
    fn init(&mut self, env: &mut dyn Env) -> Result<(), SysError> {
        self.as_mut().init(env)
    }
    fn serve(&mut self, env: &mut dyn Env, request: &[u8]) -> Result<Vec<u8>, SysError> {
        self.as_mut().serve(env, request)
    }
}

/// The environment a workload runs against.
pub trait Env {
    /// Parallel compute: `units` of work divided across the thread pool.
    ///
    /// # Errors
    /// Platform errors / kill.
    fn compute(&mut self, units: u64) -> Result<(), SysError>;

    /// `n` thread-synchronization events.
    ///
    /// # Errors
    /// Platform errors / kill.
    fn sync(&mut self, n: u64) -> Result<(), SysError>;

    /// Touch private page `idx` (write).
    ///
    /// # Errors
    /// Platform errors / kill.
    fn touch_private(&mut self, idx: u64) -> Result<(), SysError>;

    /// Touch shared page `idx` (read). First touches demand-page.
    ///
    /// # Errors
    /// Platform errors / kill.
    fn touch_shared(&mut self, idx: u64) -> Result<(), SysError>;

    /// Execute `cpuid` (a `#VE` under TDX).
    ///
    /// # Errors
    /// Platform errors / kill.
    fn cpuid(&mut self) -> Result<u32, SysError>;

    /// Number of worker threads.
    fn threads(&self) -> usize;

    /// Current cycle counter.
    fn cycles(&self) -> u64;
}

// ======================================================================
// Sandboxed environment (LibOS-backed)
// ======================================================================

/// Name of the shared common region a sandboxed workload attaches.
pub const SHARED_REGION: &str = "shared";

/// [`Env`] inside an EREBOR-SANDBOX.
pub struct SandboxEnv<'a> {
    /// The LibOS.
    pub os: &'a mut LibOs,
    /// The platform handle.
    pub sys: &'a mut dyn Sys,
    private_base: u64,
    private_pages: u64,
}

impl core::fmt::Debug for SandboxEnv<'_> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SandboxEnv")
            .field("private_base", &self.private_base)
            .field("private_pages", &self.private_pages)
            .finish_non_exhaustive()
    }
}

impl<'a> SandboxEnv<'a> {
    /// Wrap a LibOS + platform handle. `private_base` is a confined
    /// allocation covering the workload's private pages.
    #[must_use]
    pub fn new(
        os: &'a mut LibOs,
        sys: &'a mut dyn Sys,
        private_base: u64,
        private_pages: u64,
    ) -> SandboxEnv<'a> {
        SandboxEnv {
            os,
            sys,
            private_base,
            private_pages,
        }
    }
}

impl Env for SandboxEnv<'_> {
    fn compute(&mut self, units: u64) -> Result<(), SysError> {
        self.os.pool.parallel(self.sys, units, 0)
    }

    fn sync(&mut self, n: u64) -> Result<(), SysError> {
        self.os.pool.synchronize(self.sys, n)
    }

    fn touch_private(&mut self, idx: u64) -> Result<(), SysError> {
        let va = self.private_base + (idx % self.private_pages.max(1)) * PAGE_SIZE as u64;
        self.sys.touch(va, true)
    }

    fn touch_shared(&mut self, idx: u64) -> Result<(), SysError> {
        self.os
            .read_common_page(self.sys, SHARED_REGION, idx)
            .map(|_| ())
            .map_err(|e| match e {
                erebor_libos::os::LibOsError::Sys(s) => s,
                _ => SysError::Fault,
            })
    }

    fn cpuid(&mut self) -> Result<u32, SysError> {
        self.sys.cpuid(0x1)
    }

    fn threads(&self) -> usize {
        self.os.pool.workers()
    }

    fn cycles(&self) -> u64 {
        self.sys.cycles()
    }
}

// ======================================================================
// Native environment (plain process)
// ======================================================================

/// Persistent memory layout of a native workload process.
#[derive(Debug, Clone, Copy)]
pub struct NativeState {
    /// Private window base.
    pub private_base: u64,
    /// Private pages.
    pub private_pages: u64,
    /// "Shared" window base (process-private — natively each instance
    /// replicates it, the §9.2 memory comparison).
    pub shared_base: u64,
    /// Shared pages.
    pub shared_pages: u64,
    /// Worker threads.
    pub threads: usize,
    sync_counter: u64,
}

/// Fraction of native sync operations that hit the futex slow path.
const NATIVE_FUTEX_EVERY: u64 = 16;

impl NativeState {
    /// Set up the process: mmap the private and "shared" windows.
    ///
    /// # Errors
    /// Platform errors.
    pub fn setup(sys: &mut dyn Sys, params: WorkloadParams) -> Result<NativeState, SysError> {
        let private_base = sys.syscall(
            erebor_kernel::syscall::nr::MMAP,
            [
                0,
                params.private_pages.max(1) * PAGE_SIZE as u64,
                3,
                0,
                0,
                0,
            ],
        )?;
        let shared_base = sys.syscall(
            erebor_kernel::syscall::nr::MMAP,
            [0, params.shared_pages.max(1) * PAGE_SIZE as u64, 3, 0, 0, 0],
        )?;
        Ok(NativeState {
            private_base,
            private_pages: params.private_pages.max(1),
            shared_base,
            shared_pages: params.shared_pages.max(1),
            threads: params.threads,
            sync_counter: 0,
        })
    }

    /// Warm start (the paper pre-initializes containers, §9.2): touch every
    /// page of both windows once, mirroring the sandbox loader's eager
    /// confined mapping and common population.
    ///
    /// # Errors
    /// Platform errors.
    pub fn warm(&self, sys: &mut dyn Sys) -> Result<(), SysError> {
        for p in 0..self.private_pages {
            sys.touch(self.private_base + p * PAGE_SIZE as u64, true)?;
        }
        for p in 0..self.shared_pages {
            sys.touch(self.shared_base + p * PAGE_SIZE as u64, true)?;
            // Parse/deserialize work per page of the shared instance
            // (mirrors the sandbox loader's population).
            sys.compute(3_500)?;
        }
        Ok(())
    }
}

/// [`Env`] for a native (non-sandboxed) process: no LibOS, futex-based
/// synchronization, kernel demand paging.
pub struct NativeEnv<'a> {
    /// Platform handle.
    pub sys: &'a mut dyn Sys,
    /// The process's memory layout.
    pub state: &'a mut NativeState,
}

impl core::fmt::Debug for NativeEnv<'_> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("NativeEnv").finish_non_exhaustive()
    }
}

impl<'a> NativeEnv<'a> {
    /// Bind a handle to a prepared process.
    #[must_use]
    pub fn new(sys: &'a mut dyn Sys, state: &'a mut NativeState) -> NativeEnv<'a> {
        NativeEnv { sys, state }
    }
}

impl Env for NativeEnv<'_> {
    fn compute(&mut self, units: u64) -> Result<(), SysError> {
        self.sys.compute((units / self.state.threads as u64).max(1))
    }

    fn sync(&mut self, n: u64) -> Result<(), SysError> {
        // Native pthreads: mostly userspace fast path, a futex syscall on
        // contention; sleeping waiters burn far fewer cycles than the
        // LibOS's exit-free spinlocks.
        let contention = (self.state.threads as u64 - 1) * SPIN_CONTENTION_PER_THREAD / 4;
        self.sys.compute(n * (SPINLOCK_UNCONTENDED + contention))?;
        self.state.sync_counter += n;
        while self.state.sync_counter >= NATIVE_FUTEX_EVERY {
            self.state.sync_counter -= NATIVE_FUTEX_EVERY;
            self.sys.syscall(
                erebor_kernel::syscall::nr::FUTEX,
                [self.state.private_base, 1, 1, 0, 0, 0],
            )?;
        }
        Ok(())
    }

    fn touch_private(&mut self, idx: u64) -> Result<(), SysError> {
        let va = self.state.private_base + (idx % self.state.private_pages) * PAGE_SIZE as u64;
        self.sys.touch(va, true)
    }

    fn touch_shared(&mut self, idx: u64) -> Result<(), SysError> {
        let va = self.state.shared_base + (idx % self.state.shared_pages) * PAGE_SIZE as u64;
        self.sys.touch(va, false)
    }

    fn cpuid(&mut self) -> Result<u32, SysError> {
        self.sys.cpuid(0x1)
    }

    fn threads(&self) -> usize {
        self.state.threads
    }

    fn cycles(&self) -> u64 {
        self.sys.cycles()
    }
}

// ======================================================================
// ServiceProgram adapter
// ======================================================================

/// Adapts any [`Workload`] into a sandbox-deployable [`ServiceProgram`].
pub struct SandboxedWorkload<W: Workload> {
    /// The wrapped workload.
    pub inner: W,
}

impl<W: Workload> core::fmt::Debug for SandboxedWorkload<W> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SandboxedWorkload")
            .field("name", &self.inner.name())
            .finish_non_exhaustive()
    }
}

impl<W: Workload> SandboxedWorkload<W> {
    /// Wrap a workload.
    #[must_use]
    pub fn new(inner: W) -> SandboxedWorkload<W> {
        SandboxedWorkload { inner }
    }
}

impl<W: Workload> ServiceProgram for SandboxedWorkload<W> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn manifest(&self) -> Manifest {
        let p = self.inner.params();
        let mut m = Manifest::new(self.inner.name(), p.private_pages)
            .threads(p.threads)
            .logical_confined(p.logical_private);
        if p.shared_pages > 0 {
            m = m.common(SHARED_REGION, p.shared_pages, p.logical_shared);
        }
        m
    }

    fn init(&mut self, os: &mut LibOs, sys: &mut dyn Sys) -> Result<(), SysError> {
        let p = self.inner.params();
        if p.shared_pages > 0 {
            // First instance populates the shared region (model load).
            os.populate_common(sys, SHARED_REGION)
                .map_err(|e| match e {
                    erebor_libos::os::LibOsError::Sys(s) => s,
                    _ => SysError::Fault,
                })?;
        }
        let base = os.heap_base();
        let mut env = SandboxEnv::new(os, sys, base, p.private_pages);
        self.inner.init(&mut env)
    }

    fn serve(
        &mut self,
        os: &mut LibOs,
        sys: &mut dyn Sys,
        request: &[u8],
    ) -> Result<Vec<u8>, SysError> {
        let p = self.inner.params();
        let base = os.heap_base();
        let mut env = SandboxEnv::new(os, sys, base, p.private_pages);
        self.inner.serve(&mut env, request)
    }
}

/// Test-support environment that counts events without a platform.
#[cfg(test)]
pub mod tests_support {
    use super::{Env, SysError};

    /// Counting mock environment.
    #[derive(Debug, Default)]
    pub struct MockEnv {
        /// Compute units charged.
        pub compute_units: u64,
        /// Sync events.
        pub syncs: u64,
        /// Private-page touches.
        pub private_touches: u64,
        /// Shared-page touches.
        pub shared_touches: u64,
        /// cpuid executions.
        pub cpuids: u64,
        /// Simulated cycles (1 per compute unit).
        pub cycles: u64,
    }

    impl Env for MockEnv {
        fn compute(&mut self, units: u64) -> Result<(), SysError> {
            self.compute_units += units;
            self.cycles += units;
            Ok(())
        }
        fn sync(&mut self, n: u64) -> Result<(), SysError> {
            self.syncs += n;
            Ok(())
        }
        fn touch_private(&mut self, _idx: u64) -> Result<(), SysError> {
            self.private_touches += 1;
            Ok(())
        }
        fn touch_shared(&mut self, _idx: u64) -> Result<(), SysError> {
            self.shared_touches += 1;
            Ok(())
        }
        fn cpuid(&mut self) -> Result<u32, SysError> {
            self.cpuids += 1;
            Ok(0)
        }
        fn threads(&self) -> usize {
            8
        }
        fn cycles(&self) -> u64 {
            self.cycles
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Probe;
    impl Workload for Probe {
        fn name(&self) -> &'static str {
            "probe"
        }
        fn params(&self) -> WorkloadParams {
            WorkloadParams {
                private_pages: 4,
                shared_pages: 8,
                logical_private: 1 << 20,
                logical_shared: 2 << 20,
                threads: 2,
            }
        }
        fn serve(&mut self, _env: &mut dyn Env, req: &[u8]) -> Result<Vec<u8>, SysError> {
            Ok(req.to_vec())
        }
    }

    #[test]
    fn manifest_from_params() {
        let w = SandboxedWorkload::new(Probe);
        let m = w.manifest();
        assert_eq!(m.heap_pages, 4);
        assert_eq!(m.max_threads, 2);
        assert_eq!(m.commons.len(), 1);
        assert_eq!(m.commons[0].pages, 8);
    }
}
