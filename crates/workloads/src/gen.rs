//! Deterministic workload-trace generators (the client side of §9's
//! experiments): request mixes, Zipfian query keys, and file-size
//! distributions for the Fig. 10 sweeps.

use erebor_testkit::rng::TestRng;

/// A seeded generator of client request traces.
#[derive(Debug)]
pub struct TraceGen {
    rng: TestRng,
}

impl TraceGen {
    /// Create from a seed (same seed → same trace).
    #[must_use]
    pub fn new(seed: u64) -> TraceGen {
        TraceGen {
            rng: TestRng::seed_from_u64(seed),
        }
    }

    /// A Zipf-like rank in `1..=n` with skew `s ≈ 1` (hot keys dominate,
    /// like real retrieval traffic). Uses inverse-CDF sampling over the
    /// harmonic weights.
    pub fn zipf(&mut self, n: u64, s: f64) -> u64 {
        debug_assert!(n >= 1);
        let h: f64 = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).sum();
        let mut u = self.rng.range_f64(0.0, h);
        for k in 1..=n {
            let w = 1.0 / (k as f64).powf(s);
            if u < w {
                return k;
            }
            u -= w;
        }
        n
    }

    /// A batch of retrieval queries: "q=<count>;<seed>" with a fresh
    /// sub-seed so batches differ but reproducibly.
    pub fn retrieval_batch(&mut self, count: u64) -> Vec<u8> {
        let sub: u32 = self.rng.next_u32();
        format!("q={count};{sub}").into_bytes()
    }

    /// An LLM prompt of `words` pseudo-words plus a generation budget.
    pub fn llm_prompt(&mut self, words: usize, gen_tokens: u64) -> Vec<u8> {
        const LEXICON: [&str; 12] = [
            "report",
            "patient",
            "ledger",
            "invoice",
            "translate",
            "summarize",
            "network",
            "account",
            "confidential",
            "analysis",
            "record",
            "please",
        ];
        let mut out = format!("gen={gen_tokens};");
        for i in 0..words {
            if i > 0 {
                out.push(' ');
            }
            let idx = self.rng.below(LEXICON.len() as u64) as usize;
            out.push_str(LEXICON[idx]);
        }
        out.into_bytes()
    }

    /// A file size for the Fig. 10 sweep, drawn from a web-like heavy-tail
    /// mix between 1 KiB and `max`.
    pub fn file_size(&mut self, max: u64) -> u64 {
        let exp = self
            .rng
            .range_u64_inclusive(10, u64::from(max.ilog2())) as u32;
        let jitter = self.rng.range_f64(0.5, 1.5);
        (((1u64 << exp) as f64) * jitter) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_trace() {
        let mut a = TraceGen::new(7);
        let mut b = TraceGen::new(7);
        for _ in 0..16 {
            assert_eq!(a.zipf(100, 1.0), b.zipf(100, 1.0));
        }
        assert_eq!(a.llm_prompt(6, 8), b.llm_prompt(6, 8));
        assert_eq!(a.retrieval_batch(10), b.retrieval_batch(10));
    }

    #[test]
    fn zipf_is_head_heavy() {
        let mut g = TraceGen::new(1);
        let n = 1000u64;
        let samples: Vec<u64> = (0..4000).map(|_| g.zipf(n, 1.0)).collect();
        let head = samples.iter().filter(|&&k| k <= n / 10).count();
        assert!(
            head * 2 > samples.len(),
            "top decile should dominate, got {head}/{}",
            samples.len()
        );
        assert!(samples.iter().all(|&k| (1..=n).contains(&k)));
    }

    #[test]
    fn file_sizes_in_range() {
        let mut g = TraceGen::new(3);
        for _ in 0..100 {
            let s = g.file_size(16 << 20);
            assert!((512..=24 << 20).contains(&s), "{s}");
        }
    }

    #[test]
    fn prompts_are_wellformed() {
        let mut g = TraceGen::new(5);
        let p = String::from_utf8(g.llm_prompt(4, 12)).unwrap();
        assert!(p.starts_with("gen=12;"));
        assert_eq!(p.split(';').nth(1).unwrap().split(' ').count(), 4);
    }
}
