//! YOLO-style image processing (Table 5 row 2): real 3×3 convolution and
//! threshold segmentation over synthetic images, with the NCNN model
//! weights in common memory and per-image buffers in confined memory.

use crate::env::{Env, Workload, WorkloadParams};
use erebor_libos::api::SysError;

/// Image edge length (pixels).
const IMG: usize = 64;
/// Compute units charged per pixel across the conv stack (NCNN at paper
/// scale: ~196 ms wall per image on the 8-core CVM).
const UNITS_PER_PIXEL: u64 = 800_000;
/// Convolution layers in the simulated detector.
const CONV_LAYERS: usize = 4;

/// The image-segmentation service.
#[derive(Debug, Default)]
pub struct ImageProc {
    images_done: u64,
}

fn conv3x3(src: &[i32], dst: &mut [i32], kernel: &[i32; 9]) {
    for y in 1..IMG - 1 {
        for x in 1..IMG - 1 {
            let mut acc = 0i64;
            for ky in 0..3 {
                for kx in 0..3 {
                    let px = src[(y + ky - 1) * IMG + (x + kx - 1)];
                    acc += i64::from(px) * i64::from(kernel[ky * 3 + kx]);
                }
            }
            dst[y * IMG + x] = (acc / 9) as i32;
        }
    }
}

impl Workload for ImageProc {
    fn name(&self) -> &'static str {
        "yolo"
    }

    fn params(&self) -> WorkloadParams {
        WorkloadParams {
            private_pages: 256,
            shared_pages: 64,
            logical_private: 757 << 20, // Table 6: 757 MB confined
            logical_shared: 132 << 20,  // Table 6: 132 MB common
            threads: 8,
        }
    }

    fn serve(&mut self, env: &mut dyn Env, request: &[u8]) -> Result<Vec<u8>, SysError> {
        // Request encodes a seed plus image count: "n=<count>;<seed>".
        let text = String::from_utf8_lossy(request);
        let (count, seed) = match text.strip_prefix("n=") {
            Some(rest) => {
                let (n, s) = rest.split_once(';').unwrap_or(("1", "0"));
                (
                    n.parse::<u64>().unwrap_or(1).clamp(1, 1000),
                    s.parse::<u64>().unwrap_or(0),
                )
            }
            None => (1, 0),
        };
        let mut segments_total = 0u64;
        for img_i in 0..count {
            // Synthesize the input image (client data, confined).
            let mut a: Vec<i32> = (0..IMG * IMG)
                .map(|i| {
                    ((seed.wrapping_add(img_i).wrapping_mul(0x2545_f491_4f6c_dd1d) ^ i as u64)
                        % 256) as i32
                })
                .collect();
            let mut b = vec![0i32; IMG * IMG];
            env.touch_private(img_i % 256)?;
            for layer in 0..CONV_LAYERS {
                // Stream the layer's weights from the common model: NCNN
                // walks the full weight window per pass, so reclaim of the
                // unpinned common pages keeps producing runtime faults.
                for blk in 0..16u64 {
                    env.touch_shared((self.images_done + img_i) * 31 + layer as u64 * 16 + blk)?;
                }
                let kernel: [i32; 9] = core::array::from_fn(|k| ((layer * 9 + k) as i32 % 5) - 2);
                conv3x3(&a, &mut b, &kernel);
                std::mem::swap(&mut a, &mut b);
                env.compute((IMG * IMG) as u64 * UNITS_PER_PIXEL / CONV_LAYERS as u64)?;
                env.sync(24)?; // row-block barriers per layer
            }
            // Threshold segmentation: count connected bright pixels.
            let segments = a.iter().filter(|&&p| p > 64).count() as u64;
            segments_total += segments;
            for _ in 0..4 {
                env.cpuid()?; // per-stage host-clock reads
            }
        }
        self.images_done += count;
        Ok(format!("images={count} segments={segments_total}").into_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::tests_support::MockEnv;

    #[test]
    fn deterministic_segmentation() {
        let mut w1 = ImageProc::default();
        let mut w2 = ImageProc::default();
        let mut e1 = MockEnv::default();
        let mut e2 = MockEnv::default();
        let r1 = w1.serve(&mut e1, b"n=3;42").unwrap();
        let r2 = w2.serve(&mut e2, b"n=3;42").unwrap();
        assert_eq!(r1, r2);
        assert!(String::from_utf8(r1).unwrap().contains("images=3"));
    }

    #[test]
    fn conv_is_real_computation() {
        // A centre-only averaging pass attenuates values by the /9
        // normalization; structure must propagate to neighbours.
        let mut src = vec![0i32; IMG * IMG];
        src[IMG * 32 + 32] = 900;
        let mut dst = vec![0i32; IMG * IMG];
        let blur = [1i32; 9];
        conv3x3(&src, &mut dst, &blur);
        assert_eq!(dst[IMG * 32 + 32], 100, "centre averaged");
        assert_eq!(dst[IMG * 32 + 33], 100, "spread to neighbour");
        assert_eq!(dst[IMG * 30 + 32], 0, "no spread beyond radius");
    }

    #[test]
    fn event_mix() {
        let mut w = ImageProc::default();
        let mut e = MockEnv::default();
        w.serve(&mut e, b"n=8;0").unwrap();
        assert!(e.shared_touches >= 8 * CONV_LAYERS as u64);
        assert!(e.compute_units > 0);
        assert!(e.cpuids >= 1);
    }
}
