//! llama.cpp-style LLM inference (Table 5 row 1).
//!
//! A tiny transformer-flavoured token loop: per generated token it streams
//! model weights (shared-page touches — the paper's common-memory page
//! faults), runs real fixed-point matrix-vector products per "layer",
//! synchronizes its 8 worker threads (the paper notes llama.cpp's frequent
//! task synchronization, §9.2), updates the confined KV cache, and
//! periodically executes `cpuid` (timing calibration → `#VE`).
//!
//! Sizing mirrors Table 5/6: common llama2-7b model ≈ 4 GiB logical,
//! confined KV cache + runtime ≈ 501 MB logical.

use crate::env::{Env, Workload, WorkloadParams};
use erebor_libos::api::SysError;

/// Model dimensions of the simulated network.
const DIM: usize = 64;
/// Transformer layers.
const LAYERS: usize = 8;
/// Weight pages streamed per layer per token.
const PAGES_PER_LAYER: u64 = 12;
/// Hot window of the model region the token loop cycles through (pages).
/// Smaller than the full window so the kernel's reclaim of unpinned common
/// pages keeps forcing re-faults — llama has the highest #PF rate of
/// Table 6.
const HOT_WINDOW: u64 = 512;
/// Compute units per layer per token (matvec work at paper scale: a
/// llama2-7b token costs ~24 ms wall on the 8-core CVM → ~50M cycles,
/// spread over the layers).
const UNITS_PER_LAYER: u64 = 40_000_000;
/// Generate a `cpuid` every layer (timing calibration / perf counters).
const CPUID_EVERY_LAYERS: u64 = 1;

/// The LLM inference service.
#[derive(Debug)]
pub struct LlmInference {
    /// Hidden state (real arithmetic state).
    state: [i64; DIM],
    tokens_served: u64,
}

impl Default for LlmInference {
    fn default() -> LlmInference {
        LlmInference {
            state: [1; DIM],
            tokens_served: 0,
        }
    }
}

/// Vocabulary used for deterministic generation.
const VOCAB: [&str; 16] = [
    "the", "model", "data", "cloud", "secure", "sandbox", "private", "token", "infer", "layer",
    "cache", "guest", "kernel", "memory", "channel", "proof",
];

impl LlmInference {
    /// One real "layer": a mixing pass over the hidden state (fixed-point).
    fn layer_pass(&mut self, layer: usize, token_seed: u64) {
        let mut next = [0i64; DIM];
        for (i, n) in next.iter_mut().enumerate() {
            let w = (token_seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add((layer * DIM + i) as u64)
                >> 17) as i64
                % 17
                - 8;
            let prev = self.state[i];
            let neighbour = self.state[(i + layer + 1) % DIM];
            *n = (prev.wrapping_mul(w) + neighbour) % 65_537;
        }
        self.state = next;
    }

    fn pick_token(&self) -> &'static str {
        let h = self
            .state
            .iter()
            .fold(0u64, |acc, &v| acc.wrapping_mul(31).wrapping_add(v as u64));
        VOCAB[(h % VOCAB.len() as u64) as usize]
    }
}

impl Workload for LlmInference {
    fn name(&self) -> &'static str {
        "llama.cpp"
    }

    fn params(&self) -> WorkloadParams {
        WorkloadParams {
            private_pages: 512,         // simulated KV-cache window
            shared_pages: 1024,         // simulated model window
            logical_private: 501 << 20, // 501 MB (Table 6)
            logical_shared: 4096 << 20, // 4096 MB (Table 6)
            threads: 8,
        }
    }

    fn serve(&mut self, env: &mut dyn Env, request: &[u8]) -> Result<Vec<u8>, SysError> {
        // Request: prompt text; first byte count of tokens to generate is
        // encoded as "gen=N;" prefix if present.
        let text = String::from_utf8_lossy(request);
        let (n_gen, prompt) = match text.strip_prefix("gen=") {
            Some(rest) => {
                let (n, p) = rest.split_once(';').unwrap_or(("16", rest));
                (n.parse::<u64>().unwrap_or(16).clamp(1, 256), p.to_string())
            }
            None => (16, text.to_string()),
        };
        // Prompt ingestion: one pass per prompt token.
        for (i, _word) in prompt.split_whitespace().enumerate() {
            self.layer_pass(i % LAYERS, i as u64);
            env.compute(UNITS_PER_LAYER / 4)?;
            env.touch_shared(i as u64 * PAGES_PER_LAYER)?;
        }
        // Token generation loop.
        let mut out = String::new();
        for t in 0..n_gen {
            let token_seed = self.tokens_served + t;
            for layer in 0..LAYERS {
                // Stream this layer's weights from the common region: a
                // cyclic scan over the whole window, so the kernel's
                // reclaim of unpinned common pages keeps producing faults
                // (Table 6's llama #PF rate is the highest of the five).
                for p in 0..PAGES_PER_LAYER {
                    let seq = (token_seed * LAYERS as u64 + layer as u64) * PAGES_PER_LAYER + p;
                    env.touch_shared((seq * 7) % HOT_WINDOW)?;
                }
                self.layer_pass(layer, token_seed);
                env.compute(UNITS_PER_LAYER)?;
                env.sync(8)?; // per-layer fork/join barriers (heavy, §9.2)
                if (t * LAYERS as u64 + layer as u64).is_multiple_of(CPUID_EVERY_LAYERS) {
                    env.cpuid()?;
                }
            }
            // KV-cache append (confined memory).
            env.touch_private(token_seed % 512)?;
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(self.pick_token());
        }
        self.tokens_served += n_gen;
        Ok(out.into_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::tests_support::MockEnv;

    #[test]
    fn generates_deterministic_tokens() {
        let mut a = LlmInference::default();
        let mut b = LlmInference::default();
        let mut env = MockEnv::default();
        let out_a = a.serve(&mut env, b"gen=8;hello world").unwrap();
        let mut env2 = MockEnv::default();
        let out_b = b.serve(&mut env2, b"gen=8;hello world").unwrap();
        assert_eq!(out_a, out_b);
        let text = String::from_utf8(out_a).unwrap();
        assert_eq!(text.split(' ').count(), 8);
    }

    #[test]
    fn event_mix_matches_design() {
        let mut w = LlmInference::default();
        let mut env = MockEnv::default();
        w.serve(&mut env, b"gen=16;prompt").unwrap();
        assert!(
            env.shared_touches >= 16 * 8 * PAGES_PER_LAYER,
            "weight streaming"
        );
        assert!(env.cpuids >= 16, "periodic #VE");
        assert!(env.syncs >= 16 * 8 * 8, "per-layer synchronization");
        assert!(env.private_touches >= 16, "KV appends");
    }

    #[test]
    fn paper_scale_logical_sizes() {
        let p = LlmInference::default().params();
        assert_eq!(p.logical_shared >> 20, 4096);
        assert_eq!(p.logical_private >> 20, 501);
        assert_eq!(p.threads, 8);
    }
}
