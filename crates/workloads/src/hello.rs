//! The artifact's Helloworld demo sandbox (§A.4, experiment E2): a minimal
//! program that takes no meaningful input and answers `0x4141…41` ("AA…A").

use erebor_libos::api::{Sys, SysError};
use erebor_libos::manifest::Manifest;
use erebor_libos::os::{LibOs, ServiceProgram};

/// The Helloworld demo program.
#[derive(Debug, Default)]
pub struct HelloWorld {
    /// How many `A` bytes to emit.
    pub len: usize,
}

impl ServiceProgram for HelloWorld {
    fn name(&self) -> &str {
        "helloworld"
    }

    fn manifest(&self) -> Manifest {
        Manifest::new("helloworld", 8)
    }

    fn serve(
        &mut self,
        _os: &mut LibOs,
        sys: &mut dyn Sys,
        _request: &[u8],
    ) -> Result<Vec<u8>, SysError> {
        sys.compute(1000)?;
        let len = if self.len == 0 { 10 } else { self.len };
        Ok(vec![b'A'; len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_is_tiny() {
        let h = HelloWorld::default();
        assert_eq!(h.manifest().heap_pages, 8);
        assert!(h.manifest().commons.is_empty());
    }
}
