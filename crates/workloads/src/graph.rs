//! GraphChi-style graph processing (Table 5 row 4): real PageRank over a
//! synthetic power-law graph held in confined memory (the paper's
//! Twitch-gamers input has 6.8 M edges; we run a scaled edge count and
//! declare paper-scale logical memory).

use crate::env::{Env, Workload, WorkloadParams};
use erebor_libos::api::SysError;

/// Vertices in the simulated graph.
const VERTICES: usize = 4096;
/// Edges (scaled stand-in for 6.8 M).
const EDGES: usize = 65_536;
/// Compute units per edge per iteration (at paper scale the shard I/O and
/// rank arithmetic dominate; ~98M cycles wall per scaled iteration).
const UNITS_PER_EDGE: u64 = 12_000;

/// The PageRank service.
#[derive(Debug, Default)]
pub struct GraphRank;

fn edge(i: usize, seed: u64) -> (usize, usize) {
    // Power-law-ish: destination biased to low vertex ids.
    let h = (i as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(seed);
    let src = (h % VERTICES as u64) as usize;
    let d = ((h >> 24) % VERTICES as u64) as usize;
    let dst = d * d / VERTICES; // quadratic bias
    (src, dst.min(VERTICES - 1))
}

impl Workload for GraphRank {
    fn name(&self) -> &'static str {
        "graphchi"
    }

    fn params(&self) -> WorkloadParams {
        WorkloadParams {
            private_pages: 512,
            shared_pages: 0,             // Table 6: no common memory for graphchi
            logical_private: 1340 << 20, // 1340 MB confined
            logical_shared: 0,
            threads: 8,
        }
    }

    fn serve(&mut self, env: &mut dyn Env, request: &[u8]) -> Result<Vec<u8>, SysError> {
        // Request: "iters=<n>;<seed>".
        let text = String::from_utf8_lossy(request);
        let (iters, seed) = match text.strip_prefix("iters=") {
            Some(rest) => {
                let (n, s) = rest.split_once(';').unwrap_or(("5", "0"));
                (
                    n.parse::<u64>().unwrap_or(5).clamp(1, 64),
                    s.parse::<u64>().unwrap_or(0),
                )
            }
            None => (5, 0),
        };
        // Degree table.
        let mut out_deg = vec![0u32; VERTICES];
        for i in 0..EDGES {
            let (src, _) = edge(i, seed);
            out_deg[src] += 1;
        }
        let mut rank = vec![1.0f64 / VERTICES as f64; VERTICES];
        for it in 0..iters {
            let mut next = vec![0.15 / VERTICES as f64; VERTICES];
            for i in 0..EDGES {
                let (src, dst) = edge(i, seed);
                if out_deg[src] > 0 {
                    next[dst] += 0.85 * rank[src] / f64::from(out_deg[src]);
                }
                // GraphChi shards: memory traffic over the confined window.
                if i % 512 == 0 {
                    env.touch_private((it * 131 + i as u64 / 512) % 512)?;
                }
            }
            rank = next;
            env.compute(EDGES as u64 * UNITS_PER_EDGE)?;
            env.sync(8 * env.threads() as u64)?; // per-shard barriers
            for _ in 0..8 {
                env.cpuid()?; // per-shard interval timing
            }
        }
        let total: f64 = rank.iter().sum();
        let top = rank
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(v, r)| (v, *r))
            .unwrap_or((0, 0.0));
        Ok(format!("sum={total:.4} top={} rank={:.6}", top.0, top.1).into_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::tests_support::MockEnv;

    #[test]
    fn pagerank_mass_conserved() {
        let mut w = GraphRank;
        let mut e = MockEnv::default();
        let out = String::from_utf8(w.serve(&mut e, b"iters=10;3").unwrap()).unwrap();
        let sum: f64 = out
            .split("sum=")
            .nth(1)
            .unwrap()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        // With the dangling-mass approximation, total stays below 1 but
        // well above the teleport floor.
        assert!(sum > 0.14 && sum <= 1.01, "sum={sum}");
    }

    #[test]
    fn bias_concentrates_rank_on_low_vertices() {
        let mut w = GraphRank;
        let mut e = MockEnv::default();
        let out = String::from_utf8(w.serve(&mut e, b"iters=10;3").unwrap()).unwrap();
        let top: usize = out
            .split("top=")
            .nth(1)
            .unwrap()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(
            top < VERTICES / 4,
            "quadratic bias favours low ids, got {top}"
        );
    }

    #[test]
    fn per_iteration_events() {
        let mut w = GraphRank;
        let mut e = MockEnv::default();
        w.serve(&mut e, b"iters=4;0").unwrap();
        assert_eq!(e.cpuids, 4 * 8, "8 shard timings per iteration");
        assert!(e.syncs >= 4 * 8);
        assert!(e.private_touches > 0);
        assert_eq!(e.shared_touches, 0, "graphchi uses no common memory");
    }
}
