//! Unicorn-style intrusion detection (Table 5 row 5): streaming provenance
//! log analysis with a real graph-sketch histogram, state in confined
//! memory.

use crate::env::{Env, Workload, WorkloadParams};
use erebor_libos::api::SysError;

/// Sketch width (histogram buckets).
const SKETCH: usize = 2048;
/// Compute units per parsed log event (paper scale: sketch relabeling and
/// histogram comparison dominate).
const UNITS_PER_EVENT: u64 = 400_000;

/// The intrusion-detection service.
#[derive(Debug)]
pub struct Ids {
    sketch: Vec<u32>,
    events_done: u64,
}

impl Default for Ids {
    fn default() -> Ids {
        Ids {
            sketch: vec![0; SKETCH],
            events_done: 0,
        }
    }
}

/// Generate a deterministic parsed provenance log (the paper uses a 20 MB
/// parsed log file).
#[must_use]
pub fn synthetic_log(events: u64, seed: u64, anomalous: bool) -> Vec<u8> {
    let mut out = String::with_capacity(events as usize * 24);
    for i in 0..events {
        let h = (i ^ seed).wrapping_mul(0x2545_f491_4f6c_dd1d);
        let (src, op, dst) = if anomalous && i % 97 == 0 {
            // Rare proc→kernel-object writes: the anomaly signature.
            (h % 5, 9, 0)
        } else {
            (h % 64, h >> 32 & 0x7, h >> 40 & 0x3f)
        };
        out.push_str(&format!("{src:02x} {op} {dst:02x}\n"));
    }
    out.into_bytes()
}

impl Workload for Ids {
    fn name(&self) -> &'static str {
        "unicorn"
    }

    fn params(&self) -> WorkloadParams {
        WorkloadParams {
            private_pages: 512,
            shared_pages: 0,
            logical_private: 1254 << 20, // Table 6: 1254 MB confined
            logical_shared: 0,
            threads: 8,
        }
    }

    fn serve(&mut self, env: &mut dyn Env, request: &[u8]) -> Result<Vec<u8>, SysError> {
        let mut events = 0u64;
        let mut anomalies = 0u64;
        for line in request.split(|&b| b == b'\n') {
            if line.is_empty() {
                continue;
            }
            events += 1;
            // Real parsing.
            let fields: Vec<&[u8]> = line.split(|&b| b == b' ').collect();
            if fields.len() != 3 {
                continue;
            }
            let parse_hex = |f: &[u8]| -> u64 {
                f.iter().fold(0u64, |acc, &c| {
                    acc * 16
                        + u64::from(match c {
                            b'0'..=b'9' => c - b'0',
                            b'a'..=b'f' => c - b'a' + 10,
                            _ => 0,
                        })
                })
            };
            let (src, op, dst) = (
                parse_hex(fields[0]),
                parse_hex(fields[1]),
                parse_hex(fields[2]),
            );
            // Sketch update (WL-kernel-style relabeling hash).
            let label = src
                .wrapping_mul(31)
                .wrapping_add(op)
                .wrapping_mul(31)
                .wrapping_add(dst);
            let bucket = (label.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize % SKETCH;
            self.sketch[bucket] += 1;
            if op == 9 && dst == 0 {
                anomalies += 1;
            }
            env.compute(UNITS_PER_EVENT)?;
            if events.is_multiple_of(64) {
                env.touch_private(bucket as u64 / 4)?;
                env.sync(1)?;
            }
            if events.is_multiple_of(512) {
                env.cpuid()?;
            }
        }
        self.events_done += events;
        let max_bucket = self.sketch.iter().copied().max().unwrap_or(0);
        Ok(format!("events={events} anomalies={anomalies} hot={max_bucket}").into_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::tests_support::MockEnv;

    #[test]
    fn detects_injected_anomalies() {
        let mut w = Ids::default();
        let mut e = MockEnv::default();
        let log = synthetic_log(2000, 5, true);
        let out = String::from_utf8(w.serve(&mut e, &log).unwrap()).unwrap();
        let anomalies: u64 = out
            .split("anomalies=")
            .nth(1)
            .unwrap()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(anomalies >= 20, "expected ≥20 anomalies, got {anomalies}");
    }

    #[test]
    fn benign_log_is_clean() {
        let mut w = Ids::default();
        let mut e = MockEnv::default();
        let log = synthetic_log(2000, 5, false);
        let out = String::from_utf8(w.serve(&mut e, &log).unwrap()).unwrap();
        assert!(out.contains("anomalies=0"), "{out}");
    }

    #[test]
    fn sketch_accumulates_across_requests() {
        let mut w = Ids::default();
        let mut e = MockEnv::default();
        w.serve(&mut e, &synthetic_log(100, 1, false)).unwrap();
        w.serve(&mut e, &synthetic_log(100, 2, false)).unwrap();
        assert_eq!(w.events_done, 200);
    }
}
