//! Background I/O-intensive programs (Fig. 10): OpenSSH-style encrypted
//! file transfer and Nginx-style static file serving. These run as
//! *native* processes (they manage VMs and serve as proxies, §9.3), so
//! they feel Erebor's system-wide interposition only.

use erebor_crypto::chacha20;
use erebor_hw::PAGE_SIZE;
use erebor_kernel::syscall::nr;
use erebor_libos::api::{Sys, SysError};

/// OpenSSH transfer chunk (scp's cipher-block pipeline buffers).
const SSH_CHUNK: u64 = 16 * 1024;
/// Nginx sendfile chunk (larger zero-copy spans per syscall).
const NGINX_CHUNK: u64 = 64 * 1024;
/// Staging window size (covers the largest chunk).
const CHUNK: u64 = NGINX_CHUNK;
/// Cycles charged per encrypted byte (ChaCha20 + MAC at paper scale).
const ENC_CYCLES_PER_BYTE: u64 = 4;
/// Cycles charged per copied byte (memcpy + TCP segmentation).
const COPY_CYCLES_PER_BYTE: u64 = 3;
/// Fixed per-request work: connection accept, request parse, headers,
/// teardown (the TCP-stack cost every real server pays per request).
const REQUEST_FIXED_CYCLES: u64 = 40_000;

/// Result of serving a batch of file requests.
#[derive(Debug, Clone, Copy)]
pub struct TransferResult {
    /// File size served.
    pub file_size: u64,
    /// Requests served.
    pub requests: u64,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Throughput in simulated bytes/cycle.
    pub bytes_per_cycle: f64,
}

/// Prepare the server's file tree: one file of `size` bytes.
///
/// # Errors
/// Platform errors.
pub fn stage_file(sys: &mut dyn Sys, size: u64) -> Result<u64, SysError> {
    let buf = sys.syscall(nr::MMAP, [0, 2 * CHUNK + PAGE_SIZE as u64, 3, 0, 0, 0])?;
    sys.write_mem(buf, b"/srv/payload.bin")?;
    let fd = sys.syscall(nr::OPEN, [buf, 16, 0x40, 0, 0, 0])?;
    // Write the file in chunks.
    let data = buf + PAGE_SIZE as u64;
    sys.write_mem(data, &vec![0xabu8; CHUNK.min(size) as usize])?;
    let mut written = 0u64;
    while written < size {
        let n = CHUNK.min(size - written);
        sys.syscall(nr::WRITE, [fd, data, n, 0, 0, 0])?;
        written += n;
    }
    sys.syscall(nr::CLOSE, [fd, 0, 0, 0, 0, 0])?;
    Ok(buf)
}

fn serve_file(
    sys: &mut dyn Sys,
    buf: u64,
    file_size: u64,
    requests: u64,
    encrypt: bool,
    chunk: u64,
) -> Result<TransferResult, SysError> {
    let data = buf + PAGE_SIZE as u64;
    let sock = data + CHUNK;
    let key = [7u8; 32];
    let nonce = [3u8; 12];
    let start = sys.cycles();
    for req in 0..requests {
        sys.compute(REQUEST_FIXED_CYCLES)?;
        let fd = sys.syscall(nr::OPEN, [buf, 16, 0, 0, 0, 0])?;
        let mut sent = 0u64;
        let mut counter = 0u32;
        while sent < file_size {
            let n = sys.syscall(nr::READ, [fd, data, chunk.min(file_size - sent), 0, 0, 0])?;
            if n == 0 {
                // Stateless sim files keep a cursor per open; rewind once.
                sys.syscall(nr::LSEEK, [fd, 0, 0, 0, 0, 0])?;
                continue;
            }
            if encrypt {
                // Real cipher work on a sample of the buffer, cycle charge
                // for the full chunk.
                let mut sample = [0u8; 256];
                sys.read_mem(data, &mut sample)?;
                chacha20::xor_stream(&key, &nonce, counter, &mut sample);
                counter = counter.wrapping_add(1);
                sys.write_mem(sock, &sample)?;
                sys.compute(n * ENC_CYCLES_PER_BYTE)?;
            }
            sys.compute(n * COPY_CYCLES_PER_BYTE)?;
            // "send" over the emulated network channel.
            sys.syscall(nr::WRITE, [1, sock, n.min(256), 0, 0, 0])?;
            sent += n;
        }
        sys.syscall(nr::CLOSE, [fd, 0, 0, 0, 0, 0])?;
        if req % 8 == 0 {
            sys.cpuid(1)?; // periodic virtio/net #VE-class event
        }
    }
    let cycles = sys.cycles() - start;
    Ok(TransferResult {
        file_size,
        requests,
        cycles,
        bytes_per_cycle: (file_size * requests) as f64 / cycles as f64,
    })
}

/// OpenSSH-style encrypted transfer of `requests` copies of a `file_size`
/// file.
///
/// # Errors
/// Platform errors.
pub fn openssh(
    sys: &mut dyn Sys,
    file_size: u64,
    requests: u64,
) -> Result<TransferResult, SysError> {
    let buf = stage_file(sys, file_size)?;
    serve_file(sys, buf, file_size, requests, true, SSH_CHUNK)
}

/// Nginx-style static serving of `requests` for a `file_size` file.
///
/// # Errors
/// Platform errors.
pub fn nginx(sys: &mut dyn Sys, file_size: u64, requests: u64) -> Result<TransferResult, SysError> {
    let buf = stage_file(sys, file_size)?;
    serve_file(sys, buf, file_size, requests, false, NGINX_CHUNK)
}

/// The Fig. 10 file-size sweep (1 KiB – 16 MiB, powers of 4).
#[must_use]
pub fn fig10_sizes() -> Vec<u64> {
    vec![
        1 << 10,
        4 << 10,
        16 << 10,
        64 << 10,
        256 << 10,
        1 << 20,
        4 << 20,
        16 << 20,
    ]
}
