//! # erebor-workloads — the evaluation workloads
//!
//! Faithful workload *kernels* for the paper's evaluation (§9, Table 5):
//! each reproduces the system-event pattern (page faults, timers, #VE,
//! syscalls, synchronization) and the computation style of the original
//! application, scaled to simulator-friendly sizes. Logical memory sizes
//! are declared at paper scale for Table 6 reporting.
//!
//! * [`llm`] — llama.cpp-style LLM inference (common model, confined KV)
//! * [`imgproc`] — YOLO-style image segmentation (real convolutions)
//! * [`retrieval`] — DrugBank-style in-memory information retrieval
//! * [`graph`] — GraphChi-style PageRank (real iteration)
//! * [`ids`] — Unicorn-style provenance-sketch intrusion detection
//! * [`hello`] — the artifact's Helloworld demo sandbox (E2)
//! * [`lmbench`] — the LMBench-style microbenchmarks of Fig. 8
//! * [`servers`] — OpenSSH/Nginx-style background programs of Fig. 10
//!
//! Workloads run against the [`env::Env`] abstraction, which has a
//! sandboxed implementation (LibOS-backed) and a native one (plain
//! syscalls + mmap) so the same workload measures every Fig. 9
//! configuration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod env;
pub mod fleet;
pub mod gen;
pub mod graph;
pub mod hello;
pub mod ids;
pub mod imgproc;
pub mod llm;
pub mod lmbench;
pub mod retrieval;
pub mod servers;

pub use env::{
    Env, NativeEnv, NativeState, SandboxEnv, SandboxedWorkload, Workload, WorkloadParams,
};
