//! `erebor-wire`: a tiny deterministic byte codec for migration records.
//!
//! Live migration (DESIGN.md §13) serializes every architectural structure
//! — sEPT, pinned MSRs, monitor state, the EMC ledger, frame tags, the
//! domain pool — into sealed records. The codec therefore has three hard
//! requirements the general-purpose serializers can't promise:
//!
//! * **Determinism**: the same state encodes to the same bytes, always
//!   (field order is the code order; integers are fixed-width
//!   little-endian; collections are length-prefixed and iterated in
//!   their canonical order).
//! * **No panics**: a malformed or hostile peer hands us arbitrary
//!   bytes; every decode path returns a typed [`WireError`] instead of
//!   panicking the monitor.
//! * **No dependencies**: the crate sits at the very bottom of the
//!   workspace (even below `erebor-hw`) so every layer can describe its
//!   own state without cycles.
//!
//! [`WireWriter`] appends; [`WireReader`] consumes with bounds checks and
//! an end-of-input check ([`WireReader::finish`]) so trailing garbage —
//! a classic state-confusion vector in migration streams — is rejected,
//! not silently ignored.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

/// Decoding failure. Every variant names what was being decoded so a
/// migration abort can be audited from the error alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before a field was complete.
    Truncated {
        /// Bytes the field needed.
        need: usize,
        /// Bytes that remained.
        have: usize,
    },
    /// An enum tag or type byte had no defined meaning.
    BadTag {
        /// The structure being decoded.
        what: &'static str,
        /// The offending tag value.
        tag: u64,
    },
    /// A declared length exceeded the decoder's hard cap (a hostile
    /// length prefix must not drive allocation).
    TooLong {
        /// Declared length.
        len: u64,
        /// The cap it exceeded.
        max: u64,
    },
    /// A decoded value violated a structural invariant.
    BadValue {
        /// The structure being decoded.
        what: &'static str,
    },
    /// Input remained after the last expected field.
    TrailingBytes {
        /// Number of unconsumed bytes.
        extra: usize,
    },
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated { need, have } => {
                write!(f, "truncated input: needed {need} bytes, had {have}")
            }
            WireError::BadTag { what, tag } => write!(f, "bad tag {tag} decoding {what}"),
            WireError::TooLong { len, max } => {
                write!(f, "declared length {len} exceeds cap {max}")
            }
            WireError::BadValue { what } => write!(f, "invalid value decoding {what}"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after final field")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Hard cap on any single length-prefixed field (64 MiB). Larger values
/// are rejected before allocation; legitimate migration records are far
/// smaller (a page record is ~4 KiB).
pub const MAX_FIELD_LEN: u64 = 64 * 1024 * 1024;

/// Append-only encoder. Infallible: encoding valid in-memory state
/// cannot fail, so the writer has no error paths at all.
#[derive(Debug, Default, Clone)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> WireWriter {
        WireWriter::default()
    }

    /// Consume the writer, yielding the encoded bytes.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes encoded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Append a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i64`, little-endian two's complement.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as `u64` (the simulated machine never exceeds it).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Append raw bytes with no length prefix (fixed-width fields).
    pub fn raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Append a collection length prefix (callers then encode each item).
    pub fn seq(&mut self, len: usize) {
        self.u64(len as u64);
    }
}

/// Bounds-checked decoder over a byte slice.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over `buf`, positioned at the start.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consume `n` raw bytes.
    ///
    /// # Errors
    /// [`WireError::Truncated`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                need: n,
                have: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Decode one byte.
    ///
    /// # Errors
    /// [`WireError::Truncated`] at end of input.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Decode a bool; any byte other than 0/1 is rejected.
    ///
    /// # Errors
    /// [`WireError::Truncated`] / [`WireError::BadValue`].
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::BadValue { what: "bool" }),
        }
    }

    /// Decode a little-endian `u16`.
    ///
    /// # Errors
    /// [`WireError::Truncated`].
    pub fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Decode a little-endian `u32`.
    ///
    /// # Errors
    /// [`WireError::Truncated`].
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Decode a little-endian `u64`.
    ///
    /// # Errors
    /// [`WireError::Truncated`].
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Decode a little-endian `i64`.
    ///
    /// # Errors
    /// [`WireError::Truncated`].
    pub fn i64(&mut self) -> Result<i64, WireError> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Decode a `usize` encoded as `u64`, rejecting values that don't
    /// fit the host's `usize`.
    ///
    /// # Errors
    /// [`WireError::Truncated`] / [`WireError::BadValue`].
    pub fn usize(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.u64()?).map_err(|_| WireError::BadValue { what: "usize" })
    }

    /// Decode a length-prefixed byte string (capped at
    /// [`MAX_FIELD_LEN`]).
    ///
    /// # Errors
    /// [`WireError::Truncated`] / [`WireError::TooLong`].
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u64()?;
        if len > MAX_FIELD_LEN {
            return Err(WireError::TooLong {
                len,
                max: MAX_FIELD_LEN,
            });
        }
        self.take(len as usize)
    }

    /// Decode a length-prefixed UTF-8 string.
    ///
    /// # Errors
    /// [`WireError::Truncated`] / [`WireError::TooLong`] /
    /// [`WireError::BadValue`] on invalid UTF-8.
    pub fn str(&mut self) -> Result<&'a str, WireError> {
        core::str::from_utf8(self.bytes()?).map_err(|_| WireError::BadValue { what: "utf-8" })
    }

    /// Decode a collection length prefix, bounding it by the bytes that
    /// actually remain divided by `min_item_bytes` (every item costs at
    /// least one byte) so a hostile prefix cannot drive allocation.
    ///
    /// # Errors
    /// [`WireError::Truncated`] / [`WireError::TooLong`].
    pub fn seq(&mut self, min_item_bytes: usize) -> Result<usize, WireError> {
        let len = self.u64()?;
        let cap = (self.remaining() / min_item_bytes.max(1)) as u64;
        if len > cap {
            return Err(WireError::TooLong { len, max: cap });
        }
        Ok(len as usize)
    }

    /// Decode a fixed-size array of `N` bytes.
    ///
    /// # Errors
    /// [`WireError::Truncated`].
    pub fn array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let b = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(b);
        Ok(out)
    }

    /// Assert the input is fully consumed.
    ///
    /// # Errors
    /// [`WireError::TrailingBytes`] if bytes remain.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes {
                extra: self.remaining(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() -> Result<(), WireError> {
        let mut w = WireWriter::new();
        w.u8(7);
        w.bool(true);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.i64(-42);
        w.usize(12345);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8()?, 7);
        assert!(r.bool()?);
        assert_eq!(r.u16()?, 0xBEEF);
        assert_eq!(r.u32()?, 0xDEAD_BEEF);
        assert_eq!(r.u64()?, u64::MAX);
        assert_eq!(r.i64()?, -42);
        assert_eq!(r.usize()?, 12345);
        r.finish()
    }

    #[test]
    fn roundtrip_bytes_and_str() -> Result<(), WireError> {
        let mut w = WireWriter::new();
        w.bytes(b"hello");
        w.str("wörld");
        w.bytes(b"");
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.bytes()?, b"hello");
        assert_eq!(r.str()?, "wörld");
        assert_eq!(r.bytes()?, b"");
        r.finish()
    }

    #[test]
    fn truncation_rejected_at_every_boundary() {
        let mut w = WireWriter::new();
        w.u64(99);
        w.bytes(b"abc");
        let buf = w.finish();
        for cut in 0..buf.len() {
            let mut r = WireReader::new(&buf[..cut]);
            let got = r.u64().and_then(|_| r.bytes().map(<[u8]>::to_vec));
            assert!(got.is_err(), "cut at {cut} must fail");
        }
        // The full buffer decodes.
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u64().expect("full"), 99);
        assert_eq!(r.bytes().expect("full"), b"abc");
        assert!(r.finish().is_ok());
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        let mut w = WireWriter::new();
        w.u64(u64::MAX); // absurd declared length
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert!(matches!(r.bytes(), Err(WireError::TooLong { .. })));
        let mut r2 = WireReader::new(&buf);
        assert!(matches!(r2.seq(1), Err(WireError::TooLong { .. })));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut w = WireWriter::new();
        w.u8(1);
        w.u8(2);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8().expect("first"), 1);
        assert!(matches!(
            r.finish(),
            Err(WireError::TrailingBytes { extra: 1 })
        ));
    }

    #[test]
    fn bool_rejects_non_binary() {
        let buf = [2u8];
        let mut r = WireReader::new(&buf);
        assert!(matches!(r.bool(), Err(WireError::BadValue { .. })));
    }

    #[test]
    fn display_names_every_variant() {
        let errs: [WireError; 5] = [
            WireError::Truncated { need: 8, have: 3 },
            WireError::BadTag { what: "x", tag: 9 },
            WireError::TooLong { len: 10, max: 1 },
            WireError::BadValue { what: "bool" },
            WireError::TrailingBytes { extra: 4 },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
