//! Multi-tenant private information retrieval: several clients, each with
//! its own EREBOR-SANDBOX, all sharing one read-only drug database in
//! common memory (the paper's cost-efficiency story, §6.1 + §9.2).
//!
//! Run with: `cargo run --release --example multi_tenant_pir`

use erebor::{Mode, Platform};
use erebor_workloads::gen::TraceGen;
use erebor_workloads::retrieval::Retrieval;
use erebor_workloads::SandboxedWorkload;

const TENANTS: usize = 4;

fn main() {
    let mut platform = Platform::boot(Mode::Full).expect("boot");

    println!("deploying {TENANTS} PIR sandboxes sharing one common database...");
    let mut services = Vec::new();
    for i in 0..TENANTS {
        let svc = platform
            .deploy(
                Box::new(SandboxedWorkload::new(Retrieval::default())),
                1 << 20,
            )
            .expect("deploy");
        println!("  tenant {i}: sandbox {:?}", svc.sandbox);
        services.push(svc);
    }
    // All instances attached the same region.
    assert_eq!(platform.cvm.monitor.common_regions.len(), 1);
    let region = &platform.cvm.monitor.common_regions[&1];
    println!(
        "one {}-MB (logical) database region, attached to {} sandboxes",
        region.logical_bytes >> 20,
        region.attached.len()
    );

    println!("\neach client attests and queries privately:");
    let mut clients = Vec::new();
    for (i, svc) in services.iter().enumerate() {
        let c = platform
            .connect_client(svc, [i as u8 + 1; 32])
            .expect("attest");
        clients.push(c);
    }
    let mut traffic = TraceGen::new(0xc11e);
    for (i, (svc, client)) in services.iter_mut().zip(clients.iter_mut()).enumerate() {
        let query = traffic.retrieval_batch(500);
        let reply = platform.serve_request(svc, client, &query).expect("query");
        println!("  tenant {i}: {}", String::from_utf8_lossy(&reply));
        // No tenant's query string is visible to the host/proxy/kernel.
        assert!(!platform.cvm.tdx.host.observed_contains(&query));
    }

    // Memory accounting: the whole point of common memory.
    let per_instance = services[0].os.manifest.logical_confined_bytes >> 20;
    let shared = platform.cvm.monitor.common_regions[&1].logical_bytes >> 20;
    let with_sharing = TENANTS as u64 * per_instance + shared;
    let replicated = TENANTS as u64 * (per_instance + shared);
    println!("\nmemory (logical): {with_sharing} MB shared vs {replicated} MB replicated");
    println!(
        "saving: {:.1}%  (paper reports up to 89.1%)",
        (1.0 - with_sharing as f64 / replicated as f64) * 100.0
    );

    // Isolation spot-check: tenant 0's confined frames are invisible to
    // the kernel and unmappable elsewhere.
    platform.enter_kernel_mode();
    let (_, frame) = platform.cvm.monitor.sandboxes[&services[0].sandbox.0].confined[0];
    assert!(platform
        .cvm
        .machine
        .read_u64(0, erebor_hw::layout::direct_map(frame.base()))
        .is_err());
    println!("\ncross-tenant isolation verified; all queries served privately.");
}
