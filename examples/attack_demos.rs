//! Attack demonstrations: the threat model's vectors (AV1–AV3, §3.2) plus
//! the boot-time attacks of §8, each attempted and blocked live.
//!
//! Run with: `cargo run --release --example attack_demos`

use erebor::{Mode, Platform};
use erebor_core::boot::{boot_stage1, BootConfig};
use erebor_core::config::ExecConfig;
use erebor_core::emc::EmcRequest;
use erebor_hw::insn::SensitiveClass;
use erebor_hw::layout::direct_map;
use erebor_hw::regs::Msr;
use erebor_kernel::image::malicious_kernel;
use erebor_workloads::hello::HelloWorld;

const SECRET: &[u8] = b"API-KEY-7f3a99c2";

fn blocked(name: &str, what: &str) {
    println!("  [BLOCKED] {name}: {what}");
}

fn main() {
    println!("=== Boot-time attacks (C1) ===");
    {
        let cfg = BootConfig {
            cores: 2,
            dram_bytes: 48 << 20,
            config: ExecConfig::new(Mode::Full),
            seed: 3,
            paravisor: false,
        };
        for class in SensitiveClass::ALL {
            let mut cvm = boot_stage1(cfg).expect("stage1");
            let err = cvm
                .load_kernel(&malicious_kernel(1, class, 0x4000))
                .unwrap_err();
            blocked(&format!("kernel hiding {class:?}"), &err.to_string());
        }
    }

    println!("\n=== Runtime setup: sandbox holding a client secret ===");
    let mut p = Platform::boot(Mode::Full).expect("boot");
    let mut svc = p
        .deploy(Box::new(HelloWorld::default()), 4096)
        .expect("deploy");
    let mut client = p.connect_client(&svc, [0x31; 32]).expect("attest");
    p.client_send(&svc, &mut client, SECRET).expect("send");
    let pid = svc.pid;
    svc.os.input(&mut p.proc(pid)).expect("input");
    println!("  secret installed into confined memory");

    println!("\n=== AV1: OS data retrieval ===");
    p.enter_kernel_mode();
    let (_, frame) = p.cvm.monitor.sandboxes[&svc.sandbox.0].confined[0];
    let err = p
        .cvm
        .machine
        .read_u64(0, direct_map(frame.base()))
        .unwrap_err();
    blocked("kernel direct-map read of confined page", &err.to_string());

    let err = p
        .cvm
        .monitor
        .emc(
            &mut p.cvm.machine,
            &mut p.cvm.tdx,
            0,
            EmcRequest::ConvertShared {
                frame,
                shared: true,
            },
        )
        .unwrap_err();
    blocked("kernel MapGPA of confined page for DMA", &err.to_string());

    let err = p.cvm.host_dma_write(frame, b"probe").unwrap_err();
    blocked("device DMA into confined page", &err.to_string());

    println!("\n=== AV1: privilege-escalation attempts by the kernel ===");
    let err = p.cvm.machine.wrmsr(0, Msr::Pkrs, 0).unwrap_err();
    blocked(
        "kernel wrmsr(IA32_PKRS) to lift protection keys",
        &err.to_string(),
    );
    let err = p.cvm.machine.write_cr4(0, 0).unwrap_err();
    blocked("kernel mov cr4 to clear SMEP/SMAP/PKS", &err.to_string());
    let slot =
        erebor_hw::paging::pte_slot(p.cvm.monitor.kernel_root, erebor_hw::VirtAddr(0x40_0000), 4);
    let err = p
        .cvm
        .machine
        .write_u64(0, direct_map(slot), 0xdead)
        .unwrap_err();
    blocked(
        "kernel direct PTE write (Nested-Kernel bypass)",
        &err.to_string(),
    );
    let pad = p.cvm.monitor.gate.entry;
    let err = p.cvm.machine.indirect_branch(0, pad.add(0x80)).unwrap_err();
    blocked(
        "indirect jump past the EMC entry gate (CET-IBT)",
        &err.to_string(),
    );

    println!("\n=== AV2: malicious program direct leakage ===");
    {
        use erebor_libos::api::Sys;
        let err = p
            .proc(pid)
            .syscall(
                erebor_kernel::syscall::nr::WRITE,
                [1, 0x5000_0000, 16, 0, 0, 0],
            )
            .unwrap_err();
        blocked(
            "sandbox write(2) after data install — sandbox killed",
            &format!("{err}"),
        );
        let state = p.cvm.monitor.sandboxes[&svc.sandbox.0].state;
        println!("  sandbox state: {state:?}; confined memory scrubbed and released");
    }

    println!("\n=== AV3: covert channels ===");
    println!(
        "  user-mode interrupts: IA32_UINTR_TT.valid = {}",
        p.cvm.machine.cpus[0].msr(Msr::UintrTt) & 1
    );
    println!(
        "  output padding: all replies leave as {}-byte sealed records",
        p.cvm.monitor.cfg.output_pad_quantum + 16
    );

    let leaked = p.cvm.tdx.host.observed_contains(SECRET);
    println!("\nhost/proxy ever observed the secret: {leaked}");
    assert!(!leaked);
    println!("\nAll attack vectors blocked.");
}
