//! Quickstart: the artifact's Helloworld flow (experiment E2).
//!
//! Boots an Erebor-protected CVM, deploys a minimal service into an
//! EREBOR-SANDBOX, attests the monitor from a remote client, sends a
//! request over the encrypted channel, and prints the `0x41..41` reply —
//! while showing that the untrusted proxy saw only ciphertext.
//!
//! Run with: `cargo run --release --example quickstart`

use erebor::{Mode, Platform};
use erebor_workloads::hello::HelloWorld;

fn main() {
    println!("== stage 1/2 boot: firmware + monitor measured, kernel byte-scanned ==");
    let mut platform = Platform::boot(Mode::Full).expect("boot");
    println!("booted; MRTD = {}", hex(&platform.cvm.tdx.attest.mrtd()));

    println!("\n== deploy: LibOS loader declares confined memory via /dev/erebor ==");
    let mut svc = platform
        .deploy(Box::new(HelloWorld { len: 10 }), 4096)
        .expect("deploy");
    println!(
        "sandbox {:?} in {:?}, {} confined pages pinned",
        svc.sandbox,
        platform.cvm.monitor.sandboxes[&svc.sandbox.0].state,
        platform.cvm.monitor.sandboxes[&svc.sandbox.0].confined_pages()
    );

    println!("\n== remote attestation: client verifies the CPU-signed quote ==");
    let mut client = platform.connect_client(&svc, [7u8; 32]).expect("attest");
    println!("secure channel established (X25519 + ChaCha20-Poly1305)");

    println!("\n== request/response through the untrusted proxy ==");
    let reply = platform
        .serve_request(&mut svc, &mut client, b"hello erebor")
        .expect("request");
    println!("client received: {:?}", String::from_utf8_lossy(&reply));
    assert_eq!(reply, b"AAAAAAAAAA");

    let leaked = platform.cvm.tdx.host.observed_contains(b"hello erebor")
        || platform.cvm.tdx.host.observed_contains(&reply);
    println!("\nproxy/host observed plaintext: {leaked}");
    assert!(!leaked, "the proxy must only ever see ciphertext");
    println!(
        "sandbox exits interposed so far: {}",
        platform.cvm.monitor.stats.sandbox_total_exits()
    );
    println!("\nOK — E2 reproduced: output 0x{}...", hex(&reply[..5]));
}

fn hex(b: &[u8]) -> String {
    b.iter().map(|x| format!("{x:02x}")).collect()
}
