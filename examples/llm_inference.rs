//! LLM inference in EREBOR-SANDBOX (the paper's flagship scenario and
//! artifact experiment E3).
//!
//! The llama.cpp-style service shares its (logically 4 GiB) model in
//! read-only common memory; the client's prompt travels encrypted through
//! the untrusted proxy; generated text returns padded and sealed.
//!
//! Run with: `cargo run --release --example llm_inference`

use erebor::{Mode, Platform};
use erebor_workloads::llm::LlmInference;
use erebor_workloads::SandboxedWorkload;

fn main() {
    let mut platform = Platform::boot(Mode::Full).expect("boot");

    println!("deploying llama.cpp service (common model window, confined KV cache)...");
    let mut svc = platform
        .deploy(
            Box::new(SandboxedWorkload::new(LlmInference::default())),
            1 << 20,
        )
        .expect("deploy");
    let region = &platform.cvm.monitor.common_regions[&1];
    println!(
        "common region: {} physical pages standing in for {} MB of model weights",
        region.frames.len(),
        region.logical_bytes >> 20
    );

    let mut client = platform.connect_client(&svc, [0x11; 32]).expect("attest");

    let prompt = b"gen=16;translate this medical report to french";
    println!(
        "\nclient prompt (secret): {:?}",
        String::from_utf8_lossy(&prompt[7..])
    );
    let before = platform.snapshot();
    let reply = platform
        .serve_request(&mut svc, &mut client, prompt)
        .expect("inference");
    let d = platform.snapshot().delta(&before);

    println!("generated: {:?}", String::from_utf8_lossy(&reply));
    println!("\nexecution statistics (Table 6 style):");
    println!("  simulated time     : {:.3} s", d.seconds());
    println!(
        "  #PF exits          : {} ({:.0}/s)",
        d.monitor.sandbox_pf_exits,
        d.monitor.sandbox_pf_exits as f64 / d.seconds()
    );
    println!(
        "  #Timer exits       : {} ({:.0}/s)",
        d.monitor.sandbox_timer_exits,
        d.monitor.sandbox_timer_exits as f64 / d.seconds()
    );
    println!(
        "  #VE exits          : {} ({:.0}/s)",
        d.monitor.sandbox_ve_exits,
        d.monitor.sandbox_ve_exits as f64 / d.seconds()
    );
    println!(
        "  EMCs               : {} ({:.0}/s)",
        d.monitor.emc_calls,
        d.monitor.emc_calls as f64 / d.seconds()
    );

    // The model is sealed read-only once client data arrived.
    let sealed = platform.cvm.monitor.common_regions[&1].sealed;
    println!("  common region sealed read-only: {sealed}");
    assert!(sealed);

    // Neither the prompt nor the reply leaked.
    assert!(!platform.cvm.tdx.host.observed_contains(&prompt[7..]));
    assert!(!platform.cvm.tdx.host.observed_contains(&reply));
    println!("\nOK — E3 reproduced: prompt and result stayed inside the sandbox boundary");
}
