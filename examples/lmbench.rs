//! LMBench-style system microbenchmarks (artifact experiment E1, Fig. 8):
//! runs the suite under the native CVM and under Erebor and prints the
//! per-operation latencies and ratios.
//!
//! Run with: `cargo run --release --example lmbench`

use erebor::{Mode, Platform};
use erebor_workloads::lmbench;

fn run_suite(mode: Mode, ops: u64) -> Vec<lmbench::BenchResult> {
    let mut p = Platform::boot(mode).expect("boot");
    // Isolate per-op latency: no timer or reclaim noise.
    p.cvm.monitor.cfg.timer_quantum_cycles = u64::MAX / 4;
    p.reclaim_period_ticks = 0;
    let pid = p.spawn_native().expect("spawn");
    let mut h = p.proc(pid);
    lmbench::run_suite(&mut h, ops).expect("suite")
}

fn main() {
    println!("running LMBench suite natively and under Erebor (512 ops/bench)...\n");
    let native = run_suite(Mode::Native, 512);
    let erebor = run_suite(Mode::Full, 512);
    println!(
        "{:<12} {:>12} {:>12} {:>8}",
        "benchmark", "native", "erebor", "ratio"
    );
    println!("{}", "-".repeat(48));
    for (n, e) in native.iter().zip(erebor.iter()) {
        println!(
            "{:<12} {:>9.0} cyc {:>9.0} cyc {:>7.2}x",
            n.name,
            n.cycles_per_op,
            e.cycles_per_op,
            e.cycles_per_op / n.cycles_per_op
        );
    }
    println!("\npaper Fig. 8: overheads up to 3.8x, pagefault worst; costs amortize");
    println!("during real execution (Fig. 9 shows 4.5-13.2% end-to-end).");
}
